//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset this workspace uses:
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one warm-up call, then `sample_size`
//! timed samples (each sized to take roughly `target_time / sample_size`),
//! reporting min / median / mean per-iteration time on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the bench binary was invoked with `--quick` (smoke mode):
/// sample counts are capped and the measurement budget shrunk so a full
/// bench target finishes in CI-friendly time. Benchmarks can also consult
/// this to trim their own workloads.
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Sample-count cap applied in `--quick` mode.
const QUICK_SAMPLES: usize = 3;

/// Identifies one parameterized benchmark: `BenchmarkId::new("fit", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark timing driver handed to the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    target_time: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: size a sample so the whole measurement
        // lands near the target time.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.target_time.as_nanos() / self.sample_count.max(1) as u128;
        self.iters_per_sample = ((per_sample / once.as_nanos().max(1)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<50} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    target_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (capped in
    /// [`is_quick`] mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        if is_quick() {
            self.sample_count = self.sample_count.min(QUICK_SAMPLES);
        }
        self
    }

    /// Sets the total measurement time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_count,
            target_time: self.target_time,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting no-op, mirrors the real API).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_count: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = is_quick();
        Criterion {
            sample_count: if quick { QUICK_SAMPLES } else { 20 },
            target_time: Duration::from_millis(
                std::env::var("CRITERION_TARGET_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(if quick { 100 } else { 500 }),
            ),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Sets the default measurement budget for subsequent groups.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            name,
            sample_count: self.sample_count,
            target_time: self.target_time,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declares a benchmark group: plain form `criterion_group!(name, fn...)`
/// or configured form with `config = ...` / `targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("fit", 3).to_string(), "fit/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
