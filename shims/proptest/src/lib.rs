//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing exactly the API subset this workspace uses:
//!
//! * the [`proptest!`] macro with `name in strategy` bindings;
//! * [`Strategy`] for numeric ranges, tuples, `prop_map`;
//! * `prop::collection::vec`, `prop::bool::ANY`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! its inputs via the panic message instead. Case count defaults to 64 and
//! is overridable through `PROPTEST_CASES`.

/// Deterministic generator state for one test case (xorshift64* stream
/// seeded per case by SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed (zero is remapped internally).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so consecutive case indices decorrelate.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z },
        }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        let span = hi - lo;
        if span == 0 {
            // hi - lo wrapped: the full-domain range [0, u64::MAX) + 1.
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Generates values of `Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (no shrinking to preserve).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value (no shrinking).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; panics after 1000 rejections.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: 1000 consecutive rejections ({})", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                match (hi as u64).checked_add(1) {
                    Some(one_past) => rng.range_u64(lo as u64, one_past) as $t,
                    // hi == u64::MAX: rejection-sample the full domain.
                    None => loop {
                        let v = rng.next_u64();
                        if v >= lo as u64 {
                            return v as $t;
                        }
                    },
                }
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.range_u64(0, span) as i128) as $t
            }
        }
    )*};
}

signed_int_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Length specification for [`vec`]: a fixed size or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len =
                    rng.range_u64(self.size.lo as u64, self.size.hi_inclusive as u64 + 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Strategy for a fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.bool()
            }
        }

        /// `prop::bool::ANY`: uniform true/false.
        pub const ANY: Any = Any;
    }
}

/// Outcome of one generated case: rejection (assume failed) or failure.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestRng,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                $(let $arg = $strat;)*
                let mut rejected = 0usize;
                let mut case = 0u64;
                let mut accepted = 0usize;
                while accepted < cases {
                    let mut rng = $crate::TestRng::new(case);
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 1000,
                                "proptest {}: too many prop_assume! rejections",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                case - 1,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// `prop_assume!(cond)`: silently skips the case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1.5f64..2.5, n in 3usize..7, b in prop::bool::ANY) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            let _coin: bool = b;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn map_and_tuple(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }

        #[test]
        fn assume_rejects(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn inclusive_full_domain(x in 0u64..=u64::MAX) {
            // The full-domain range must not panic on span overflow; fold
            // the value into an assertion that uses it.
            prop_assert_eq!(x.wrapping_add(0), x);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = 0.0f64..1.0;
        let a = s.generate(&mut TestRng::new(7));
        let b = s.generate(&mut TestRng::new(7));
        assert_eq!(a, b);
    }
}
