//! The tentpole determinism property of the trace subsystem: a trace
//! recorded from a live run — **under any shard count** — replays
//! byte-identically, for both closed-loop workloads.
//!
//! Three independent reproductions are checked against each recorded
//! run:
//!
//! 1. the record the runner returned while recording (the sink must not
//!    perturb the loop);
//! 2. the verified [`ReplayRunner`] reconstruction (fresh AI + filter
//!    re-driven from the trace);
//! 3. a standard [`LoopRunner`] driven over a [`RecordedPopulation`]
//!    (the trace standing in for the population block).
//!
//! Equality is bit-level: the serialized JSON forms are compared too, so
//! NaN-safe byte identity is what is asserted, not mere `PartialEq`.

use eqimpact::core::closed_loop::LoopBuilder;
use eqimpact::core::recorder::{LoopRecord, RecordPolicy};
use eqimpact::core::scenario::Scale;
use eqimpact::credit::sim as credit_sim;
use eqimpact::credit::{AdrFilter, CreditTracer, ScorecardLender};
use eqimpact::hiring::sim as hiring_sim;
use eqimpact::hiring::{AdaptiveScreener, HiringTracer, TrackRecordFilter};
use eqimpact::stats::SimRng;
use eqimpact::trace::scenario::TraceReplayer;
use eqimpact::trace::{
    RecordedPopulation, TraceHeader, TraceReader, TraceStepSink, FORMAT_VERSION,
};
use proptest::prelude::*;

/// The shard counts the acceptance criterion names.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn credit_header(config: &credit_sim::CreditConfig, trial: usize) -> TraceHeader {
    TraceHeader {
        version: FORMAT_VERSION,
        scenario: "credit".to_string(),
        variant: "scorecard".to_string(),
        trial,
        scale: Scale::Quick,
        seed: config.seed,
        shards: config.shards,
        delay: config.delay,
        policy: config.policy,
        checkpoints: false,
    }
}

fn hiring_header(config: &hiring_sim::HiringConfig, trial: usize) -> TraceHeader {
    TraceHeader {
        version: FORMAT_VERSION,
        scenario: "hiring".to_string(),
        variant: "adaptive".to_string(),
        trial,
        scale: Scale::Quick,
        seed: config.seed,
        shards: config.shards,
        delay: config.delay,
        policy: config.policy,
        checkpoints: false,
    }
}

/// Asserts `replayed` is byte-identical to `original`, including the
/// serialized JSON form (bit-exact floats through the JSON layer).
fn assert_byte_identical(original: &LoopRecord, replayed: &LoopRecord, what: &str) {
    assert_eq!(original, replayed, "{what}: records differ");
    assert_eq!(
        original.to_json().render(),
        replayed.to_json().render(),
        "{what}: serialized forms differ"
    );
}

fn check_credit(users: usize, steps: usize, seed: u64, shards: usize) {
    let config = credit_sim::CreditConfig {
        users,
        steps,
        trials: 1,
        seed,
        lender: credit_sim::LenderKind::Scorecard,
        delay: 1,
        shards,
        policy: RecordPolicy::Full,
    };
    // Record under `shards`; the unsunk run must match the sunk one.
    let mut sink = TraceStepSink::new(Vec::new(), &credit_header(&config, 0)).unwrap();
    let recorded = credit_sim::run_trial_sunk(&config, 0, &mut sink);
    let bytes = sink.finish().unwrap();
    let plain = credit_sim::run_trial(&config, 0);
    assert_byte_identical(
        &plain.record,
        &recorded.record,
        "credit: sink perturbed the run",
    );

    // Verified replay (fresh lender + filter).
    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
    let summary = CreditTracer.replay(reader).unwrap();
    assert_byte_identical(
        &recorded.record,
        &summary.record,
        &format!("credit replay (shards {shards})"),
    );

    // The trace as a drop-in population block under the standard runner.
    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input).unwrap();
    let population = RecordedPopulation::new(reader).unwrap();
    let mut runner = LoopBuilder::new(ScorecardLender::paper_default(), population)
        .filter(AdrFilter::new())
        .delay(config.delay)
        .record(config.policy)
        .build();
    let rerun = runner.run(steps, &mut SimRng::new(0xDEAD));
    assert_byte_identical(
        &recorded.record,
        &rerun,
        &format!("credit RecordedPopulation (shards {shards})"),
    );
}

fn check_hiring(applicants: usize, rounds: usize, seed: u64, shards: usize) {
    let config = hiring_sim::HiringConfig {
        applicants,
        rounds,
        trials: 1,
        seed,
        screener: hiring_sim::ScreenerKind::Adaptive,
        delay: 1,
        shards,
        policy: RecordPolicy::Full,
    };
    let mut sink = TraceStepSink::new(Vec::new(), &hiring_header(&config, 0)).unwrap();
    let recorded = hiring_sim::run_trial_sunk(&config, 0, &mut sink);
    let bytes = sink.finish().unwrap();
    let plain = hiring_sim::run_trial(&config, 0);
    assert_byte_identical(
        &plain.record,
        &recorded.record,
        "hiring: sink perturbed the run",
    );

    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
    let summary = HiringTracer.replay(reader).unwrap();
    assert_byte_identical(
        &recorded.record,
        &summary.record,
        &format!("hiring replay (shards {shards})"),
    );

    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input).unwrap();
    let population = RecordedPopulation::new(reader).unwrap();
    let mut runner = LoopBuilder::new(AdaptiveScreener::default_config(), population)
        .filter(TrackRecordFilter::new())
        .delay(config.delay)
        .record(config.policy)
        .build();
    let rerun = runner.run(rounds, &mut SimRng::new(0xBEEF));
    assert_byte_identical(
        &recorded.record,
        &rerun,
        &format!("hiring RecordedPopulation (shards {shards})"),
    );
}

#[test]
fn credit_replay_is_byte_identical_across_shard_counts() {
    for shards in SHARD_COUNTS {
        check_credit(90, 8, 41, shards);
    }
}

#[test]
fn hiring_replay_is_byte_identical_across_shard_counts() {
    for shards in SHARD_COUNTS {
        check_hiring(90, 8, 23, shards);
    }
}

proptest! {
    // Each case runs 4 full loops (sunk + plain + replay + rerun), so
    // the population stays small; the deterministic tests above cover
    // every shard count at a larger shape.
    #[test]
    fn credit_traces_replay_byte_identically(
        users in 20usize..50,
        steps in 2usize..6,
        seed in 0u64..=u64::MAX,
        shard_pick in 0usize..SHARD_COUNTS.len(),
    ) {
        check_credit(users, steps, seed, SHARD_COUNTS[shard_pick]);
    }

    #[test]
    fn hiring_traces_replay_byte_identically(
        applicants in 20usize..50,
        rounds in 2usize..6,
        seed in 0u64..=u64::MAX,
        shard_pick in 0usize..SHARD_COUNTS.len(),
    ) {
        check_hiring(applicants, rounds, seed, SHARD_COUNTS[shard_pick]);
    }
}
