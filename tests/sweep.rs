//! Integration: the counterfactual lab end to end — a 51-candidate grid
//! swept off-policy over recorded credit traces (and a smaller grid over
//! hiring traces), with the determinism contract checked the strong way:
//! the full ranked report, bootstrap confidence intervals included, is
//! byte-identical across repeated runs and across thread-budget
//! capacities.

use eqimpact::lab::{run_sweep, CandidateGrid, MemTrace, SweepConfig, TraceSource};
use eqimpact::prelude::*;
use eqimpact_credit::sim::{CreditConfig, LenderKind};
use eqimpact_credit::CreditSweep;
use eqimpact_hiring::sim::{HiringConfig, ScreenerKind};
use eqimpact_hiring::HiringSweep;
use eqimpact_stats::ToJson;
use eqimpact_trace::{TraceHeader, TraceStepSink};

/// Records `trials` checkpointed credit traces in memory.
fn credit_traces(trials: usize) -> Vec<MemTrace> {
    (0..trials)
        .map(|trial| {
            let config = CreditConfig {
                users: 80,
                steps: 6,
                trials: 1,
                seed: 21 + trial as u64,
                lender: LenderKind::Scorecard,
                ..CreditConfig::default()
            };
            let header = TraceHeader::from_meta(&eqimpact_core::scenario::TraceMeta {
                scenario: "credit".to_string(),
                variant: eqimpact_credit::scenario::TRACE_VARIANT.to_string(),
                trial,
                scale: Scale::Quick,
                seed: config.seed,
                shards: config.shards,
                delay: config.delay,
                policy: config.policy,
            })
            .with_checkpoints();
            let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
            eqimpact_credit::sim::run_trial_sunk(&config, 0, &mut sink);
            MemTrace::new(
                format!("credit-trial{trial}.eqtrace"),
                sink.finish().expect("trace finishes"),
            )
        })
        .collect()
}

/// Records `trials` checkpointed hiring traces in memory.
fn hiring_traces(trials: usize) -> Vec<MemTrace> {
    (0..trials)
        .map(|trial| {
            let config = HiringConfig {
                applicants: 80,
                rounds: 6,
                trials: 1,
                seed: 31 + trial as u64,
                screener: ScreenerKind::Adaptive,
                ..HiringConfig::default()
            };
            let header = TraceHeader::from_meta(&eqimpact_core::scenario::TraceMeta {
                scenario: "hiring".to_string(),
                variant: eqimpact_hiring::scenario::variant_name(config.screener).to_string(),
                trial,
                scale: Scale::Quick,
                seed: config.seed,
                shards: config.shards,
                delay: config.delay,
                policy: config.policy,
            })
            .with_checkpoints();
            let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
            eqimpact_hiring::sim::run_trial_sunk(&config, 0, &mut sink);
            MemTrace::new(
                format!("hiring-trial{trial}.eqtrace"),
                sink.finish().expect("trace finishes"),
            )
        })
        .collect()
}

/// A 3 policies x 1 filter x 17 thresholds = 51-candidate credit grid.
fn wide_credit_grid() -> CandidateGrid {
    CandidateGrid::new(
        ["scorecard", "uniform-exclusion", "income-multiple"],
        ["adr"],
        (0..17).map(|i| i as f64 * 5.0),
    )
}

#[test]
fn fifty_plus_candidate_sweep_is_deterministic_across_runs_and_thread_counts() {
    let traces = credit_traces(2);
    let sources: Vec<&dyn TraceSource> = traces.iter().map(|t| t as &dyn TraceSource).collect();
    let grid = wide_credit_grid();
    assert!(grid.len() >= 50, "grid has {} candidates", grid.len());
    let config = SweepConfig {
        seed: 7,
        resamples: 50,
        ..SweepConfig::default()
    };

    // Distinct budgets (not the process-global one) so the test pins the
    // capacities: 1 lane = fully sequential, 4 lanes = pooled workers.
    let runs: Vec<String> = [1, 1, 4]
        .iter()
        .map(|&lanes| {
            let budget = ThreadBudget::leaked(lanes);
            let report =
                run_sweep(&CreditSweep, &sources, &grid, &config, budget).expect("sweep runs");
            assert_eq!(report.ranked.len(), grid.len());
            report.to_json().render_pretty()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "same budget, different report");
    assert_eq!(runs[0], runs[2], "1-lane vs 4-lane reports differ");
}

#[test]
fn every_ranked_candidate_carries_bootstrap_intervals() {
    let traces = credit_traces(2);
    let sources: Vec<&dyn TraceSource> = traces.iter().map(|t| t as &dyn TraceSource).collect();
    let grid = wide_credit_grid();
    let config = SweepConfig {
        seed: 7,
        resamples: 50,
        ..SweepConfig::default()
    };
    let report = run_sweep(
        &CreditSweep,
        &sources,
        &grid,
        &config,
        ThreadBudget::leaked(2),
    )
    .expect("sweep runs");
    assert_eq!(report.traces.len(), 2);
    for ranked in &report.ranked {
        assert!(
            ranked.errors.is_empty(),
            "{}: {:?}",
            ranked.candidate.key(),
            ranked.errors
        );
        assert_eq!(ranked.traces, 2);
        for ci in [
            &ranked.parity_gap,
            &ranked.opportunity_gap,
            &ranked.outcome_delta,
        ] {
            assert_eq!(ci.level, config.level);
            if ci.estimate.is_finite() {
                assert!(
                    ci.lo <= ci.estimate && ci.estimate <= ci.hi,
                    "{}: [{}, {}] around {}",
                    ranked.candidate.key(),
                    ci.lo,
                    ci.hi,
                    ci.estimate
                );
            }
        }
        // The parity gap always has data (every trace carries groups).
        assert!(ranked.parity_gap.estimate.is_finite());
        assert!(ranked.agreement.is_finite());
    }
    // The ranking is parity-gap ascending (ties broken deterministically).
    for pair in report.ranked.windows(2) {
        assert!(
            pair[0].parity_gap.estimate <= pair[1].parity_gap.estimate
                || !pair[1].parity_gap.estimate.is_finite()
        );
    }
}

#[test]
fn hiring_traces_sweep_deterministically_too() {
    let traces = hiring_traces(2);
    let sources: Vec<&dyn TraceSource> = traces.iter().map(|t| t as &dyn TraceSource).collect();
    let grid = CandidateGrid::new(
        ["adaptive", "credential"],
        ["track-record"],
        (0..5).map(|i| i as f64 * 0.25),
    );
    let config = SweepConfig {
        seed: 9,
        resamples: 50,
        ..SweepConfig::default()
    };
    let one = run_sweep(
        &HiringSweep,
        &sources,
        &grid,
        &config,
        ThreadBudget::leaked(1),
    )
    .expect("sequential sweep runs");
    let four = run_sweep(
        &HiringSweep,
        &sources,
        &grid,
        &config,
        ThreadBudget::leaked(4),
    )
    .expect("pooled sweep runs");
    assert_eq!(
        one.to_json().render_pretty(),
        four.to_json().render_pretty(),
        "hiring sweep is thread-count sensitive"
    );
    assert_eq!(one.ranked.len(), grid.len());
    for ranked in &one.ranked {
        assert!(ranked.errors.is_empty(), "{:?}", ranked.errors);
    }
}
