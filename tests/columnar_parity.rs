//! Columnar parity: the batched column path must be bit-identical —
//! `LoopRecord`s AND EQTRACE1 bytes — to a row-at-a-time baseline that
//! scores through single-row views in the pre-redesign row-major order,
//! across shard counts (1, 4, 16) and record policies (Full, Thin), for
//! both paper scenarios (credit and hiring). The scoring-kernel leg of
//! the claim (batched `linear_scores_into` ≡ per-row gather + dot fold)
//! is a property test over random matrices and models.

use eqimpact_core::closed_loop::{AiSystem, Feedback, LoopBuilder};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
use eqimpact_core::scenario::Scale;
use eqimpact_core::shard::{ColsView, ShardableAi};
use eqimpact_credit::adr::AdrFilter;
use eqimpact_credit::lender::ScorecardLender;
use eqimpact_credit::users::CreditPopulation;
use eqimpact_hiring::applicants::ApplicantPool;
use eqimpact_hiring::screener::AdaptiveScreener;
use eqimpact_hiring::track::TrackRecordFilter;
use eqimpact_ml::logistic::LogisticModel;
use eqimpact_stats::SimRng;
use eqimpact_trace::{TraceHeader, TraceStepSink, FORMAT_VERSION};
use proptest::prelude::*;

/// The row-major baseline: forwards every batch request one row at a
/// time through single-row views, so the inner AI computes each score in
/// exactly the per-row order the pre-redesign row-major sweep used. Any
/// cross-row coupling the batched kernels might introduce (lane
/// reassociation, shared accumulators) would break parity with this.
struct RowAtATime<A>(A);

impl<A: ShardableAi> AiSystem for RowAtATime<A> {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        self.signals_full(k, visible, out);
    }
    fn retrain(&mut self, k: usize, feedback: &Feedback) {
        self.0.retrain(k, feedback);
    }
}

impl<A: ShardableAi> ShardableAi for RowAtATime<A> {
    fn signals_batch(&self, k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        for (j, i) in visible.rows().enumerate() {
            let cols: Vec<&[f64]> = (0..visible.width())
                .map(|c| &visible.col(c)[j..j + 1])
                .collect();
            let view = ColsView::new(cols, i..i + 1);
            self.0.signals_batch(k, &view, &mut out[j..j + 1]);
        }
    }
}

proptest! {
    /// Batched columnar scoring (`fill` → per-column `axpy` → `offset`)
    /// reproduces the per-row `intercept + Σ βⱼxⱼ` fold bit-for-bit, on
    /// full views and on the single-row views of the sharding limit.
    #[test]
    fn batched_scores_match_row_major_fold_bitwise(
        n in 1usize..120,
        width in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let mut mat = FeatureMatrix::zeros(n, width);
        for j in 0..width {
            for cell in mat.col_mut(j).iter_mut() {
                *cell = rng.uniform_in(-3.0, 3.0);
            }
        }
        let model = LogisticModel {
            intercept: rng.uniform_in(-1.0, 1.0),
            coefficients: (0..width).map(|_| rng.uniform_in(-2.0, 2.0)).collect(),
            iterations: 0,
            converged: true,
        };

        // Row-major baseline: per-row gather + dot fold.
        let mut buf = Vec::new();
        let rowwise: Vec<u64> = (0..n)
            .map(|i| {
                mat.copy_row_into(i, &mut buf);
                model.linear_score(&buf).to_bits()
            })
            .collect();

        // Batched columnar path over the full matrix.
        let mut batched = vec![0.0; n];
        model.linear_scores_into(&mat.col_slices(), &mut batched);
        let batched: Vec<u64> = batched.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&batched, &rowwise, "full-view batch diverged");

        // Row-at-a-time through single-row views (the sharding limit).
        let mut single = vec![0.0; n];
        for (j, s) in single.iter_mut().enumerate() {
            let cols: Vec<&[f64]> = (0..width).map(|c| &mat.col(c)[j..j + 1]).collect();
            model.linear_scores_into(&cols, std::slice::from_mut(s));
        }
        let single: Vec<u64> = single.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&single, &rowwise, "single-row batch diverged");
    }
}

/// One header for every leg of a scenario (`shards` pinned to 1), so the
/// compared EQTRACE1 byte streams can differ only in the per-step
/// payload, never in recording metadata.
fn header(scenario: &str, seed: u64, policy: RecordPolicy) -> TraceHeader {
    TraceHeader {
        version: FORMAT_VERSION,
        scenario: scenario.to_string(),
        variant: "columnar-parity".to_string(),
        trial: 0,
        scale: Scale::Quick,
        seed,
        shards: 1,
        delay: 1,
        policy,
        checkpoints: false,
    }
}

/// Runs one credit loop (`shards: None` = sequential `LoopRunner`),
/// recording the trace to memory. Replicates `run_trial`'s stream
/// derivation so the legs share populations.
fn credit_leg<A: ShardableAi + 'static>(
    ai: A,
    policy: RecordPolicy,
    shards: Option<usize>,
) -> (LoopRecord, Vec<u8>) {
    const SEED: u64 = 404;
    let root = SimRng::new(SEED);
    let mut pop_rng = root.split(1);
    let mut loop_rng = root.split(2);
    let population = CreditPopulation::generate(180, &mut pop_rng);
    let builder = LoopBuilder::new(ai, population)
        .filter(AdrFilter::new())
        .delay(1)
        .record(policy);
    let mut sink =
        TraceStepSink::new(Vec::new(), &header("credit", SEED, policy)).expect("in-memory trace");
    let record = match shards {
        None => builder.build().run_with_sink(10, &mut loop_rng, &mut sink),
        Some(s) => builder
            .shards(s)
            .build_sharded()
            .run_with_sink(10, &mut loop_rng, &mut sink),
    };
    (record, sink.finish().expect("trace finishes"))
}

/// The hiring analog of [`credit_leg`].
fn hiring_leg<A: ShardableAi + 'static>(
    ai: A,
    policy: RecordPolicy,
    shards: Option<usize>,
) -> (LoopRecord, Vec<u8>) {
    const SEED: u64 = 1_990;
    let root = SimRng::new(SEED);
    let mut pool_rng = root.split(1);
    let mut loop_rng = root.split(2);
    let pool = ApplicantPool::generate(150, &mut pool_rng);
    let builder = LoopBuilder::new(ai, pool)
        .filter(TrackRecordFilter::new())
        .delay(1)
        .record(policy);
    let mut sink =
        TraceStepSink::new(Vec::new(), &header("hiring", SEED, policy)).expect("in-memory trace");
    let record = match shards {
        None => builder.build().run_with_sink(8, &mut loop_rng, &mut sink),
        Some(s) => builder
            .shards(s)
            .build_sharded()
            .run_with_sink(8, &mut loop_rng, &mut sink),
    };
    (record, sink.finish().expect("trace finishes"))
}

#[test]
fn credit_records_and_trace_bytes_match_row_major_baseline() {
    for policy in [RecordPolicy::Full, RecordPolicy::Thin] {
        let (ref_record, ref_bytes) =
            credit_leg(RowAtATime(ScorecardLender::paper_default()), policy, None);
        for shards in [1usize, 4, 16] {
            let (record, bytes) =
                credit_leg(ScorecardLender::paper_default(), policy, Some(shards));
            assert_eq!(record, ref_record, "credit {shards} shards, {policy:?}");
            assert_eq!(
                bytes, ref_bytes,
                "credit {shards} shards, {policy:?}: EQTRACE1 bytes differ"
            );
        }
    }
}

#[test]
fn hiring_records_and_trace_bytes_match_row_major_baseline() {
    for policy in [RecordPolicy::Full, RecordPolicy::Thin] {
        let (ref_record, ref_bytes) =
            hiring_leg(RowAtATime(AdaptiveScreener::default_config()), policy, None);
        for shards in [1usize, 4, 16] {
            let (record, bytes) =
                hiring_leg(AdaptiveScreener::default_config(), policy, Some(shards));
            assert_eq!(record, ref_record, "hiring {shards} shards, {policy:?}");
            assert_eq!(
                bytes, ref_bytes,
                "hiring {shards} shards, {policy:?}: EQTRACE1 bytes differ"
            );
        }
    }
}
