//! Integration: the certification plane end to end — recorded credit and
//! hiring traces turned into verdict artifacts, with the determinism
//! contract checked the strong way: the full report (JSON and rendered
//! text) is byte-identical across repeated runs and across thread-budget
//! capacities, and every scenario renders the four headline theory
//! checks with a verdict.

use eqimpact::certify::{run_certification, CertifyConfig, CertifyTarget};
use eqimpact::lab::{MemTrace, TraceSource};
use eqimpact::prelude::*;
use eqimpact_credit::sim::{CreditConfig, LenderKind};
use eqimpact_credit::CreditCertify;
use eqimpact_hiring::sim::{HiringConfig, ScreenerKind};
use eqimpact_hiring::HiringCertify;
use eqimpact_trace::{TraceHeader, TraceStepSink};

/// Records `trials` checkpointed credit traces in memory.
fn credit_traces(trials: usize) -> Vec<MemTrace> {
    (0..trials)
        .map(|trial| {
            let config = CreditConfig {
                users: 90,
                steps: 6,
                trials: 1,
                seed: 21 + trial as u64,
                lender: LenderKind::Scorecard,
                ..CreditConfig::default()
            };
            let header = TraceHeader::from_meta(&eqimpact_core::scenario::TraceMeta {
                scenario: "credit".to_string(),
                variant: eqimpact_credit::scenario::TRACE_VARIANT.to_string(),
                trial,
                scale: Scale::Quick,
                seed: config.seed,
                shards: config.shards,
                delay: config.delay,
                policy: config.policy,
            })
            .with_checkpoints();
            let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
            eqimpact_credit::sim::run_trial_sunk(&config, 0, &mut sink);
            MemTrace::new(
                format!("credit-trial{trial}.eqtrace"),
                sink.finish().expect("trace finishes"),
            )
        })
        .collect()
}

/// Records `trials` checkpointed hiring traces in memory.
fn hiring_traces(trials: usize) -> Vec<MemTrace> {
    (0..trials)
        .map(|trial| {
            let config = HiringConfig {
                applicants: 90,
                rounds: 6,
                trials: 1,
                seed: 31 + trial as u64,
                screener: ScreenerKind::Adaptive,
                ..HiringConfig::default()
            };
            let header = TraceHeader::from_meta(&eqimpact_core::scenario::TraceMeta {
                scenario: "hiring".to_string(),
                variant: eqimpact_hiring::scenario::variant_name(config.screener).to_string(),
                trial,
                scale: Scale::Quick,
                seed: config.seed,
                shards: config.shards,
                delay: config.delay,
                policy: config.policy,
            })
            .with_checkpoints();
            let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
            eqimpact_hiring::sim::run_trial_sunk(&config, 0, &mut sink);
            MemTrace::new(
                format!("hiring-trial{trial}.eqtrace"),
                sink.finish().expect("trace finishes"),
            )
        })
        .collect()
}

/// The names the acceptance criteria pin: every scenario's certificate
/// must render at least these checks, each with a verdict.
const HEADLINE_CHECKS: [&str; 4] = ["primitivity", "unique-ergodicity", "contraction", "iss"];

fn certify_all(target: &dyn CertifyTarget, traces: &[MemTrace], lanes: usize) -> (String, String) {
    let sources: Vec<&dyn TraceSource> = traces.iter().map(|t| t as &dyn TraceSource).collect();
    let config = CertifyConfig {
        seed: 7,
        ..CertifyConfig::default()
    };
    let report = run_certification(target, &sources, &config, ThreadBudget::leaked(lanes))
        .expect("certification runs");
    assert_eq!(report.certificates.len(), traces.len());
    (report.to_json().render_pretty(), report.render_text())
}

#[test]
fn credit_certification_is_deterministic_across_runs_and_thread_counts() {
    let traces = credit_traces(3);
    let runs: Vec<(String, String)> = [1, 1, 4]
        .iter()
        .map(|&lanes| certify_all(&CreditCertify, &traces, lanes))
        .collect();
    assert_eq!(runs[0], runs[1], "same budget, different report");
    assert_eq!(runs[0], runs[2], "1-lane vs 4-lane reports differ");
}

#[test]
fn hiring_certification_is_deterministic_across_runs_and_thread_counts() {
    let traces = hiring_traces(3);
    let runs: Vec<(String, String)> = [1, 1, 4]
        .iter()
        .map(|&lanes| certify_all(&HiringCertify, &traces, lanes))
        .collect();
    assert_eq!(runs[0], runs[1], "same budget, different report");
    assert_eq!(runs[0], runs[2], "1-lane vs 4-lane reports differ");
}

#[test]
fn both_scenarios_render_the_headline_checks_with_verdicts() {
    for (target, traces) in [
        (&CreditCertify as &dyn CertifyTarget, credit_traces(2)),
        (&HiringCertify as &dyn CertifyTarget, hiring_traces(2)),
    ] {
        let (json, text) = certify_all(target, &traces, 2);
        for check in HEADLINE_CHECKS {
            assert!(
                text.contains(check),
                "{}: `{check}` missing from rendered text",
                target.name()
            );
            assert!(
                json.contains(&format!("\"{check}\"")),
                "{}: `{check}` missing from JSON",
                target.name()
            );
        }
        assert!(
            ["certified", "refuted", "inconclusive"]
                .iter()
                .any(|v| json.contains(v)),
            "{}: no verdicts in JSON",
            target.name()
        );
    }
}
