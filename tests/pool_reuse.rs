//! Worker-pool reuse: one [`WorkerPool`] driving several consecutive
//! sharded runs — including a record→replay pair through the trace store
//! — must not change a single recorded bit versus fresh sequential runs.
//! The pool carries threads, never state.

use eqimpact::core::closed_loop::{AiSystem, Feedback, LoopBuilder, LoopRunner, UserPopulation};
use eqimpact::core::features::FeatureMatrix;
use eqimpact::core::pool::WorkerPool;
use eqimpact::core::recorder::{LoopRecord, RecordPolicy};
use eqimpact::core::scenario::Scale;
use eqimpact::core::shard::{
    shard_bounds, ColsMut, ColsView, PopulationShard, RowStreams, ShardableAi, ShardablePopulation,
};
use eqimpact::stats::SimRng;
use eqimpact::trace::{
    RecordedPopulation, TraceHeader, TraceReader, TraceStepSink, FORMAT_VERSION,
};
use std::ops::Range;

/// Shard-invariant synthetic population honouring the [`RowStreams`]
/// contract: every draw of row `i` comes from `streams.for_row(i)`.
struct SynthUsers {
    n: usize,
    width: usize,
}

struct SynthShard {
    rows: Range<usize>,
    width: usize,
}

fn observe(k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
    // Row-major draw order (all of row i's cells from row i's stream)
    // even though the storage is columnar.
    for (j, i) in out.rows().enumerate() {
        let mut rng = streams.for_row(i);
        for c in 0..out.width() {
            out.col_mut(c)[j] = rng.uniform() + 0.01 * k as f64;
        }
    }
}

fn respond(rows: Range<usize>, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
    for (j, i) in rows.enumerate() {
        let mut rng = streams.for_row(i);
        let p = (0.25 + 0.1 * signals[j]).clamp(0.0, 1.0);
        out[j] = if rng.bernoulli(p) { 1.0 } else { 0.0 };
    }
}

impl UserPopulation for SynthUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.n, self.width);
        let streams = RowStreams::observe(rng, k);
        observe(k, &streams, &mut ColsMut::full(out));
    }
    fn respond_into(&mut self, k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n, 0.0);
        let streams = RowStreams::respond(rng, k);
        respond(0..self.n, signals, &streams, out);
    }
}

impl ShardablePopulation for SynthUsers {
    type Shard = SynthShard;
    fn feature_width(&self) -> usize {
        self.width
    }
    fn into_row_shards(self, parts: usize) -> Vec<SynthShard> {
        shard_bounds(self.n, parts)
            .into_iter()
            .map(|rows| SynthShard {
                rows,
                width: self.width,
            })
            .collect()
    }
    fn from_row_shards(shards: Vec<SynthShard>) -> Self {
        SynthUsers {
            n: shards.last().map(|s| s.rows.end).unwrap_or(0),
            width: shards.first().map(|s| s.width).unwrap_or(0),
        }
    }
}

impl PopulationShard for SynthShard {
    fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }
    fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
        observe(k, streams, out);
    }
    fn respond_rows(&mut self, _k: usize, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
        respond(self.rows.clone(), signals, streams, out);
    }
}

/// Deterministic AI: signals are a pure function of the features and the
/// barrier-updated level, so a replay over recorded features recomputes
/// them bit-exactly.
struct SumAi {
    level: f64,
}

impl AiSystem for SumAi {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        self.signals_full(k, visible, out);
    }
    fn retrain(&mut self, _k: usize, feedback: &Feedback) {
        self.level = feedback.aggregate;
    }
}

impl ShardableAi for SumAi {
    fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            let sum: f64 = (0..visible.width()).map(|c| visible.col(c)[j]).sum();
            *o = self.level + 0.2 * sum;
        }
    }
}

const USERS: usize = 19;
const WIDTH: usize = 2;
const STEPS: usize = 10;

fn sequential_record(seed: u64) -> LoopRecord {
    let mut runner = LoopBuilder::new(
        SumAi { level: 0.5 },
        SynthUsers {
            n: USERS,
            width: WIDTH,
        },
    )
    .delay(1)
    .build();
    runner.run(STEPS, &mut SimRng::new(seed))
}

fn header(seed: u64, shards: usize) -> TraceHeader {
    TraceHeader {
        version: FORMAT_VERSION,
        scenario: "pool-reuse".to_string(),
        variant: "synthetic".to_string(),
        trial: 0,
        scale: Scale::Quick,
        seed,
        shards,
        delay: 1,
        policy: RecordPolicy::Full,
        checkpoints: false,
    }
}

#[test]
fn one_pool_record_then_rerun_then_replay_bit_identically() {
    const SHARDS: usize = 4;
    const SEED: u64 = 4242;
    let reference = sequential_record(SEED);

    // One pool for everything below.
    let mut pool = WorkerPool::new(2);
    let make = || {
        LoopBuilder::new(
            SumAi { level: 0.5 },
            SynthUsers {
                n: USERS,
                width: WIDTH,
            },
        )
        .delay(1)
        .shards(SHARDS)
        .build_sharded()
    };

    // Run 1: record a trace through the pool-driven runner.
    let mut sink = TraceStepSink::new(Vec::new(), &header(SEED, SHARDS)).expect("in-memory trace");
    let recorded = make().run_in_pool(STEPS, &mut SimRng::new(SEED), &mut sink, &mut pool);
    let bytes = sink.finish().expect("trace finishes");
    assert_eq!(recorded, reference, "pooled recording run");
    assert_eq!(
        recorded.to_json().render(),
        reference.to_json().render(),
        "serialized forms differ"
    );

    // Run 2: the same pool drives a second, independent run.
    let second = make().run_in_pool(STEPS, &mut SimRng::new(SEED + 1), &mut (), &mut pool);
    assert_eq!(second, sequential_record(SEED + 1), "second pooled run");

    // Replay: the recorded trace as a drop-in population under the
    // sequential runner recomputes every signal and filter output from
    // the recorded features — byte-identical to the recorded run.
    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input).expect("trace reads back");
    let population = RecordedPopulation::new(reader).expect("recorded population");
    let mut replayer = LoopRunner::new(
        SumAi { level: 0.5 },
        population,
        eqimpact::core::closed_loop::MeanFilter::default(),
        1,
    );
    // A different rng seed on purpose: the recorded population replays
    // observed features and actions, so the replay is rng-independent.
    let replayed = replayer.run(STEPS, &mut SimRng::new(0xBEEF));
    assert_eq!(replayed, reference, "replay over the recorded trace");
    assert!(!pool.is_poisoned());
}
