//! Cross-shard determinism: the tentpole guarantee that a
//! [`ShardedRunner`] produces **byte-identical** `LoopRecord`s to the
//! sequential [`LoopRunner`] for any shard count — proven here on random
//! blocks and seeds (property test) and on the credit scenario, plus an
//! environment-driven leg (`SHARDS=n`) for the CI shard matrix.

use eqimpact_core::closed_loop::{AiSystem, Feedback, LoopBuilder, UserPopulation};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
use eqimpact_core::shard::{
    shard_bounds, ColsMut, ColsView, PopulationShard, RowStreams, ShardableAi, ShardablePopulation,
};
use eqimpact_credit::sim::{run_trial, CreditConfig, LenderKind};
use eqimpact_stats::SimRng;
use proptest::prelude::*;
use std::ops::Range;

/// Shard-invariant random population: every cell and action of row `i`
/// draws from `streams.for_row(i)` — the [`RowStreams`] contract.
#[derive(Clone)]
struct PropUsers {
    n: usize,
    width: usize,
    /// Per-user response bias, exercised to make rows genuinely distinct.
    bias: f64,
}

struct PropShard {
    rows: Range<usize>,
    width: usize,
    bias: f64,
}

fn observe_prop(k: usize, bias: f64, streams: &RowStreams, out: &mut ColsMut<'_>) {
    // Row-major draw order from row-keyed streams, columnar writes.
    for (j, i) in out.rows().enumerate() {
        let mut rng = streams.for_row(i);
        for c in 0..out.width() {
            out.col_mut(c)[j] = rng.uniform() + bias * (c + 1) as f64 + k as f64 * 0.01;
        }
    }
}

fn respond_prop(
    rows: Range<usize>,
    bias: f64,
    signals: &[f64],
    streams: &RowStreams,
    out: &mut [f64],
) {
    for (j, i) in rows.enumerate() {
        let mut rng = streams.for_row(i);
        let p = (0.2 + bias + 0.1 * signals[j]).clamp(0.0, 1.0);
        out[j] = if rng.bernoulli(p) { 1.0 } else { rng.uniform() };
    }
}

impl UserPopulation for PropUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.n, self.width);
        let streams = RowStreams::observe(rng, k);
        observe_prop(k, self.bias, &streams, &mut ColsMut::full(out));
    }
    fn respond_into(&mut self, k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n, 0.0);
        let streams = RowStreams::respond(rng, k);
        respond_prop(0..self.n, self.bias, signals, &streams, out);
    }
}

impl ShardablePopulation for PropUsers {
    type Shard = PropShard;
    fn feature_width(&self) -> usize {
        self.width
    }
    fn into_row_shards(self, parts: usize) -> Vec<PropShard> {
        shard_bounds(self.n, parts)
            .into_iter()
            .map(|rows| PropShard {
                rows,
                width: self.width,
                bias: self.bias,
            })
            .collect()
    }
    fn from_row_shards(shards: Vec<PropShard>) -> Self {
        let width = shards.first().map(|s| s.width).unwrap_or(0);
        let bias = shards.first().map(|s| s.bias).unwrap_or(0.0);
        let n = shards.last().map(|s| s.rows.end).unwrap_or(0);
        PropUsers { n, width, bias }
    }
}

impl PopulationShard for PropShard {
    fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }
    fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
        observe_prop(k, self.bias, streams, out);
    }
    fn respond_rows(&mut self, _k: usize, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
        respond_prop(self.rows.clone(), self.bias, signals, streams, out);
    }
}

/// Feedback-coupled AI: the broadcast level retrains from the delayed
/// aggregate, so any shard-order divergence compounds across steps and
/// cannot cancel out.
#[derive(Clone)]
struct GainAi {
    gain: f64,
    level: f64,
}

impl AiSystem for GainAi {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        self.signals_full(k, visible, out);
    }
    fn retrain(&mut self, _k: usize, feedback: &Feedback) {
        self.level = 0.5 * self.level + 0.5 * feedback.aggregate;
    }
}

impl ShardableAi for GainAi {
    fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            let features: f64 = (0..visible.width()).map(|c| visible.col(c)[j]).sum();
            *o = self.level + self.gain * features;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn synthetic_records(
    n: usize,
    width: usize,
    bias: f64,
    gain: f64,
    steps: usize,
    delay: usize,
    seed: u64,
    policy: RecordPolicy,
    shards: Option<usize>,
) -> LoopRecord {
    let builder = LoopBuilder::new(GainAi { gain, level: 0.4 }, PropUsers { n, width, bias })
        .delay(delay)
        .record(policy);
    match shards {
        None => builder.build().run(steps, &mut SimRng::new(seed)),
        Some(s) => builder
            .shards(s)
            .build_sharded()
            .run(steps, &mut SimRng::new(seed)),
    }
}

proptest! {
    #[test]
    fn sharded_records_are_byte_identical_to_sequential(
        n in 1usize..60,
        width in 0usize..3,
        steps in 1usize..12,
        delay in 0usize..3,
        seed in 0u64..1000,
        bias in 0.0f64..0.4,
        gain in -0.3f64..0.3,
    ) {
        for policy in [RecordPolicy::Full, RecordPolicy::Thin] {
            let reference =
                synthetic_records(n, width, bias, gain, steps, delay, seed, policy, None);
            let reference_bytes = reference.to_json().render();
            for shards in [1usize, 2, 8] {
                let sharded = synthetic_records(
                    n, width, bias, gain, steps, delay, seed, policy, Some(shards),
                );
                prop_assert_eq!(&sharded, &reference, "{} shards, {:?}", shards, policy);
                prop_assert_eq!(
                    sharded.to_json().render(),
                    reference_bytes.clone(),
                    "{} shards, {:?}: serialized bytes differ",
                    shards,
                    policy
                );
            }
        }
    }
}

fn credit_record(shards: usize, policy: RecordPolicy) -> LoopRecord {
    let config = CreditConfig {
        users: 180,
        steps: 10,
        trials: 1,
        seed: 404,
        lender: LenderKind::Scorecard,
        delay: 1,
        shards,
        policy,
    };
    run_trial(&config, 0).record
}

#[test]
fn credit_scenario_is_bit_identical_across_shard_counts() {
    for policy in [RecordPolicy::Full, RecordPolicy::Thin] {
        let reference = credit_record(1, policy);
        let reference_bytes = reference.to_json().render();
        for shards in [2usize, 8] {
            let sharded = credit_record(shards, policy);
            assert_eq!(sharded, reference, "{shards} shards, {policy:?}");
            assert_eq!(
                sharded.to_json().render(),
                reference_bytes,
                "{shards} shards, {policy:?}: serialized bytes differ"
            );
        }
    }
}

/// CI matrix leg: `SHARDS=n cargo test --test shard_determinism` pins the
/// shard count from the environment (defaults to 4 locally). Builds the
/// `ShardedRunner` directly — bypassing `run_trial`'s `shards == 1 →
/// sequential` dispatch — so even the `SHARDS=1` leg exercises the
/// sharded code path against the sequential reference.
#[test]
fn shard_count_from_env_matches_sequential() {
    use eqimpact_credit::adr::AdrFilter;
    use eqimpact_credit::lender::ScorecardLender;
    use eqimpact_credit::users::CreditPopulation;

    let shards: usize = std::env::var("SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    // Replicates run_trial's stream derivation for users 180 / steps 10 /
    // seed 404 / trial 0, as used by `credit_record`.
    let root = SimRng::new(404);
    let mut pop_rng = root.split(1);
    let mut loop_rng = root.split(2);
    let population = CreditPopulation::generate(180, &mut pop_rng);
    let mut runner = LoopBuilder::new(ScorecardLender::paper_default(), population)
        .filter(AdrFilter::new())
        .delay(1)
        .record(RecordPolicy::Full)
        .shards(shards)
        .build_sharded();
    let sharded = runner.run(10, &mut loop_rng);

    let reference = credit_record(1, RecordPolicy::Full);
    assert_eq!(
        sharded.to_json().render(),
        reference.to_json().render(),
        "SHARDS={shards}: record mismatch"
    );
}
