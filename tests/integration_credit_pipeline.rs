//! Integration: the full Sec. VII credit pipeline — census sampling, the
//! repayment model, ADR filtering, scorecard retraining, figures.

use eqimpact_census::Race;
use eqimpact_core::impact::{conditioned_equal_impact_report, group_limits};
use eqimpact_credit::report;
use eqimpact_credit::sim::{run_trial, run_trials_protocol, CreditConfig, LenderKind};

fn config(users: usize, lender: LenderKind) -> CreditConfig {
    CreditConfig {
        users,
        steps: 19,
        trials: 3,
        seed: 11,
        lender,
        ..Default::default()
    }
}

#[test]
fn adr_values_are_valid_probabilities() {
    let outcome = run_trial(&config(300, LenderKind::Scorecard), 0);
    for k in 0..outcome.record.steps() {
        for &adr in outcome.record.filtered(k) {
            assert!((0.0..=1.0).contains(&adr), "ADR out of range: {adr}");
        }
    }
}

#[test]
fn adr_monotonicity_for_denied_users() {
    // A user denied at step k keeps the same ADR at step k+1 (no new
    // offers change the ratio).
    let outcome = run_trial(&config(300, LenderKind::Scorecard), 0);
    for k in 2..outcome.record.steps() - 1 {
        let signals_next = outcome.record.signals(k + 1);
        let adr_now = outcome.record.filtered(k);
        let adr_next = outcome.record.filtered(k + 1);
        for i in 0..300 {
            if signals_next[i] == 0.0 {
                assert!(
                    (adr_now[i] - adr_next[i]).abs() < 1e-12,
                    "denied user {i} ADR moved {} -> {}",
                    adr_now[i],
                    adr_next[i]
                );
            }
        }
    }
}

#[test]
fn race_series_dwindle_and_converge() {
    // The paper's Fig. 3 reading: all races decline from their early peak
    // and end in a narrow low band.
    let outcomes = run_trials_protocol(&config(500, LenderKind::Scorecard));
    let summaries = report::fig3_race_adr(&outcomes);
    for s in &summaries {
        let peak = s.mean.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let last = *s.mean.last().unwrap();
        assert!(last < peak, "{}: no decline ({peak} -> {last})", s.race);
        assert!(last < 0.1, "{}: final ADR {last} too high", s.race);
    }
    let finals: Vec<f64> = summaries.iter().map(|s| *s.mean.last().unwrap()).collect();
    let spread = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - finals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.05, "final race spread = {spread}");
}

#[test]
fn equal_impact_holds_within_races_under_scorecard() {
    // Def. 4 conditioned on race over the ADR trajectories: within each
    // race the individual limits concentrate.
    let outcome = run_trial(&config(600, LenderKind::Scorecard), 0);
    let classes: Vec<Vec<usize>> = Race::ALL.iter().map(|&r| outcome.race_indices(r)).collect();
    // Use repayment actions as y_i; generous tolerance because 19 steps is
    // a short horizon.
    let report = conditioned_equal_impact_report(&outcome.record, &classes, 0.3, 0.6);
    let groups = group_limits(&report, &classes);
    for (race, g) in Race::ALL.iter().zip(&groups) {
        assert!(
            (0.3..=1.0).contains(g),
            "{race}: group repayment limit {g} implausible"
        );
    }
}

#[test]
fn uniform_policy_shrinks_access_unevenly() {
    let outcome = run_trial(
        &CreditConfig {
            steps: 40,
            ..config(500, LenderKind::UniformExclusion)
        },
        0,
    );
    let last = outcome.record.steps() - 1;
    let rate = |race: Race| {
        let members = outcome.race_indices(race);
        let signals = outcome.record.signals(last);
        members.iter().filter(|&&i| signals[i] > 0.0).count() as f64 / members.len().max(1) as f64
    };
    let black = rate(Race::Black);
    let white = rate(Race::White);
    assert!(
        black < white,
        "uniform policy should exclude Black households faster: {black} vs {white}"
    );
}

#[test]
fn scorecard_outperforms_uniform_on_access_while_controlling_defaults() {
    let scorecard = run_trial(&config(500, LenderKind::Scorecard), 0);
    let uniform = run_trial(&config(500, LenderKind::UniformExclusion), 0);
    let last = 18;
    let access = |o: &eqimpact_credit::sim::CreditOutcome| {
        let signals = o.record.signals(last);
        signals.iter().filter(|&&l| l > 0.0).count() as f64 / signals.len() as f64
    };
    assert!(
        access(&scorecard) > access(&uniform),
        "scorecard access {} should beat uniform {}",
        access(&scorecard),
        access(&uniform)
    );
}

#[test]
fn figures_are_mutually_consistent() {
    let outcomes = run_trials_protocol(&config(200, LenderKind::Scorecard));
    // Fig. 4 trajectories aggregated per race at the final year must match
    // Fig. 3's final means.
    let f3 = report::fig3_race_adr(&outcomes);
    let f4 = report::fig4_user_adr(&outcomes);
    for summary in &f3 {
        let members: Vec<&(String, Vec<f64>)> = f4
            .iter()
            .filter(|(race, _)| race == &summary.race)
            .collect();
        // Mean over trials of per-trial race means == grand mean here only
        // when race counts are equal across trials; they are, because each
        // trial uses an independent batch but the mean-of-means matches
        // within a small tolerance for equal-sized populations.
        let grand: f64 =
            members.iter().map(|(_, t)| *t.last().unwrap()).sum::<f64>() / members.len() as f64;
        let f3_final = *summary.mean.last().unwrap();
        assert!(
            (grand - f3_final).abs() < 0.02,
            "{}: fig4 grand {} vs fig3 {}",
            summary.race,
            grand,
            f3_final
        );
    }
    // Fig. 5 column totals must equal users x trials.
    let f5 = report::fig5_density(&outcomes, 10);
    for k in 0..f5.x_len() {
        assert_eq!(f5.col_total(k), 3 * 200);
    }
}
