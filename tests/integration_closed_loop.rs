//! Integration: the generic closed loop wired from real blocks across
//! crates (core + control filters + ml models + stats diagnostics).

use eqimpact_core::closed_loop::{
    AiSystem, Feedback, FeedbackFilter, LoopBuilder, LoopRunner, MeanFilter, UserPopulation,
};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::impact::{conditioned_equal_impact_report, equal_impact_report, group_limits};
use eqimpact_core::treatment::{classes_by_attribute, conditioned_equal_treatment_report};
use eqimpact_core::trials::run_trials;
use eqimpact_stats::SimRng;

/// A two-class population: class 0 responds at a lower rate than class 1
/// for the same signal — equal treatment without equal impact.
struct TwoClassUsers {
    classes: Vec<u32>,
}

impl UserPopulation for TwoClassUsers {
    fn user_count(&self) -> usize {
        self.classes.len()
    }
    fn observe_into(&mut self, _k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.classes.len(), 1);
        for (cell, &c) in out.col_mut(0).iter_mut().zip(&self.classes) {
            *cell = c as f64;
        }
    }
    fn respond(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        self.classes
            .iter()
            .zip(signals)
            .map(|(&c, &s)| {
                let base = if c == 0 { 0.2 } else { 0.6 };
                let p = (base * s.clamp(0.0, 2.0)).clamp(0.0, 1.0);
                if rng.bernoulli(p) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Constant broadcaster (maximally equal treatment).
struct ConstantAi(f64);

impl AiSystem for ConstantAi {
    fn signals(&mut self, _k: usize, visible: &FeatureMatrix) -> Vec<f64> {
        vec![self.0; visible.row_count()]
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

fn two_class_record(seed: u64, steps: usize) -> eqimpact_core::recorder::LoopRecord {
    let classes: Vec<u32> = (0..60).map(|i| (i % 2) as u32).collect();
    let mut runner = LoopBuilder::new(ConstantAi(1.0), TwoClassUsers { classes })
        .filter(MeanFilter::default())
        .delay(1)
        .build();
    runner.run(steps, &mut SimRng::new(seed))
}

#[test]
fn equal_treatment_without_equal_impact() {
    // The conflict at the heart of the paper (Ricci v. DeStefano):
    // identical signals, diverging long-run outcomes.
    let record = two_class_record(1, 4_000);
    let classes: Vec<u32> = (0..60).map(|i| (i % 2) as u32).collect();
    let class_sets = classes_by_attribute(&classes);

    let treatment = conditioned_equal_treatment_report(&record, &class_sets, 0.08);
    assert!(treatment.same_signal, "everyone saw the same signal");

    let unconditional_impact = equal_impact_report(&record, 0.2, 0.08);
    assert!(
        !unconditional_impact.all_coincide,
        "class responses must diverge: spread = {}",
        unconditional_impact.max_spread
    );

    // Conditioned on the class attribute, impact is equal within classes.
    let conditional = conditioned_equal_impact_report(&record, &class_sets, 0.2, 0.08);
    assert!(conditional.all_coincide);
    let groups = group_limits(&conditional, &class_sets);
    assert!(
        (groups[0] - 0.2).abs() < 0.05,
        "class 0 limit = {}",
        groups[0]
    );
    assert!(
        (groups[1] - 0.6).abs() < 0.05,
        "class 1 limit = {}",
        groups[1]
    );
}

#[test]
fn multi_trial_limits_are_stable_across_seeds() {
    let set = run_trials(6, |t| two_class_record(100 + t as u64, 3_000));
    let summary = set.summarize(|r| {
        let report = equal_impact_report(r, 0.2, 1.0);
        report.limits.iter().sum::<f64>() / report.limits.len() as f64
    });
    // Mean of per-user limits ~ (0.2 + 0.6)/2 = 0.4 across all trials.
    assert!(
        (summary.mean() - 0.4).abs() < 0.03,
        "mean = {}",
        summary.mean()
    );
    assert!(summary.std_dev() < 0.03);
}

/// A custom anomaly-tolerant filter plugged into the loop: cross-crate use
/// of `eqimpact-control` filters inside `eqimpact-core`.
struct RobustAggregateFilter {
    inner: eqimpact_control::filter::AnomalyRejectingFilter,
}

impl FeedbackFilter for RobustAggregateFilter {
    fn apply(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback {
        use eqimpact_control::filter::Filter as _;
        let raw = actions.iter().sum::<f64>() / actions.len().max(1) as f64;
        let filtered = self.inner.push(raw);
        Feedback {
            step: k,
            per_user: actions.to_vec(),
            aggregate: filtered,
            visible: visible.clone(),
            signals: signals.to_vec(),
            actions: actions.to_vec(),
        }
    }
}

#[test]
fn control_filter_integrates_with_loop() {
    let classes: Vec<u32> = vec![1; 40];
    let mut runner = LoopBuilder::new(ConstantAi(1.0), TwoClassUsers { classes })
        .filter(RobustAggregateFilter {
            inner: eqimpact_control::filter::AnomalyRejectingFilter::new(3.0, 10),
        })
        .delay(0)
        .build();
    let record = runner.run(500, &mut SimRng::new(5));
    assert_eq!(record.steps(), 500);
    // Class-1 users respond at 0.6 on average.
    let mean = record.mean_actions().iter().sum::<f64>() / 500.0;
    assert!((mean - 0.6).abs() < 0.05, "mean = {mean}");
}

#[test]
fn delayed_and_undelayed_loops_agree_in_distribution() {
    // The delay shifts retraining but the ConstantAi ignores feedback, so
    // the records depend only on the stochastic responses: same seed, same
    // record regardless of delay.
    let classes: Vec<u32> = (0..10).map(|i| (i % 2) as u32).collect();
    let build = |delay: usize| {
        let mut runner = LoopRunner::new(
            ConstantAi(1.0),
            TwoClassUsers {
                classes: classes.clone(),
            },
            MeanFilter::default(),
            delay,
        );
        runner.run(100, &mut SimRng::new(9))
    };
    assert_eq!(build(0), build(3));
}
