//! The telemetry plane's observe-only contract: enabling the recorder
//! must never perturb the engine. Enabled runs produce bit-identical
//! `LoopRecord`s AND EQTRACE1 bytes to disabled runs across shard counts
//! (1, 4, 16) — checked as a property over seeds — and the snapshot's
//! deterministic section is byte-identical across runs and thread-budget
//! sizes for the same workload.

use eqimpact_core::closed_loop::LoopBuilder;
use eqimpact_core::pool::ThreadBudget;
use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
use eqimpact_core::scenario::Scale;
use eqimpact_core::shard::ShardedRunner;
use eqimpact_credit::adr::AdrFilter;
use eqimpact_credit::lender::ScorecardLender;
use eqimpact_credit::users::CreditPopulation;
use eqimpact_stats::SimRng;
use eqimpact_telemetry::{test_guard, Recorder};
use eqimpact_trace::{TraceHeader, TraceStepSink, FORMAT_VERSION};
use proptest::prelude::*;

fn header(seed: u64) -> TraceHeader {
    TraceHeader {
        version: FORMAT_VERSION,
        scenario: "credit".to_string(),
        variant: "telemetry-identity".to_string(),
        trial: 0,
        scale: Scale::Quick,
        seed,
        shards: 1,
        delay: 1,
        policy: RecordPolicy::Full,
        checkpoints: false,
    }
}

/// Runs one traced credit loop (`shards: None` = sequential
/// `LoopRunner`), returning the record and the EQTRACE1 bytes. The same
/// derivation as `run_trial`, so the legs share populations.
fn credit_leg(seed: u64, shards: Option<usize>) -> (LoopRecord, Vec<u8>) {
    let root = SimRng::new(seed);
    let mut pop_rng = root.split(1);
    let mut loop_rng = root.split(2);
    let population = CreditPopulation::generate(120, &mut pop_rng);
    let builder = LoopBuilder::new(ScorecardLender::paper_default(), population)
        .filter(AdrFilter::new())
        .delay(1)
        .record(RecordPolicy::Full);
    let mut sink = TraceStepSink::new(Vec::new(), &header(seed)).expect("in-memory trace");
    let record = match shards {
        None => builder.build().run_with_sink(8, &mut loop_rng, &mut sink),
        Some(s) => builder
            .shards(s)
            .build_sharded()
            .run_with_sink(8, &mut loop_rng, &mut sink),
    };
    (record, sink.finish().expect("trace finishes"))
}

proptest! {
    /// Recording on vs off cannot change a single bit of the engine's
    /// output: the instruments only observe the computation, never feed
    /// back into it.
    #[test]
    fn enabled_runs_are_bit_identical_to_disabled(seed in 0u64..10) {
        let _t = test_guard();
        Recorder::uninstall();
        let (ref_record, ref_bytes) = credit_leg(seed, None);
        for shards in [1usize, 4, 16] {
            Recorder::uninstall();
            let (off_record, off_bytes) = credit_leg(seed, Some(shards));
            Recorder::install();
            let (on_record, on_bytes) = credit_leg(seed, Some(shards));
            Recorder::uninstall();
            prop_assert_eq!(&off_record, &ref_record, "disabled, {} shards", shards);
            prop_assert_eq!(&off_bytes, &ref_bytes, "disabled bytes, {} shards", shards);
            prop_assert_eq!(&on_record, &ref_record, "enabled, {} shards", shards);
            prop_assert_eq!(&on_bytes, &ref_bytes, "enabled bytes, {} shards", shards);
        }
    }
}

/// Runs a fixed 4-shard credit workload under a private thread budget of
/// `lanes` lanes with the recorder installed, returning the snapshot's
/// deterministic section.
fn deterministic_section_at(lanes: usize) -> String {
    let budget: &'static ThreadBudget = ThreadBudget::leaked(lanes);
    let root = SimRng::new(77);
    let mut pop_rng = root.split(1);
    let mut loop_rng = root.split(2);
    let population = CreditPopulation::generate(120, &mut pop_rng);
    let mut runner = ShardedRunner::with_budget(
        ScorecardLender::paper_default(),
        population,
        AdrFilter::new(),
        1,
        4,
        budget,
    );
    Recorder::install();
    let record = runner.run(9, &mut loop_rng);
    let section = Recorder::snapshot().deterministic_json();
    Recorder::uninstall();
    assert_eq!(record.steps(), 9);
    section
}

/// The acceptance contract behind `--telemetry`: the snapshot's
/// deterministic section (counters, span call counts, size histograms)
/// is byte-identical however many lanes the pool actually got — all
/// scheduling-dependent numbers are quarantined in the wall-clock
/// section.
#[test]
fn deterministic_section_is_byte_identical_across_lane_counts() {
    let _t = test_guard();
    let one = deterministic_section_at(1);
    let four = deterministic_section_at(4);
    let again = deterministic_section_at(4);
    assert_eq!(one, four, "1-lane vs 4-lane deterministic sections differ");
    assert_eq!(four, again, "re-run deterministic section differs");
    assert!(
        one.contains("loop.steps"),
        "deterministic section should report loop.steps: {one}"
    );
}
