//! Integration: the theory stack — graph conditions, contractivity,
//! invariant measures and ergodic averages agree with each other across
//! the `graph`, `markov` and `stats` crates.

use eqimpact_graph::DiGraph;
use eqimpact_linalg::norm::MetricKind;
use eqimpact_linalg::Matrix;
use eqimpact_markov::contractivity::box_sampler;
use eqimpact_markov::coupling::synchronous_coupling;
use eqimpact_markov::ergodic::{self, ErgodicityVerdict};
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::invariant::{estimate_invariant_measure, FiniteChain};
use eqimpact_markov::operator::ParticleMeasure;
use eqimpact_markov::MarkovSystem;
use eqimpact_stats::converge::{fit_geometric_rate, kolmogorov_smirnov};
use eqimpact_stats::SimRng;

fn binary_ifs() -> MarkovSystem {
    Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap()
        .as_markov_system()
        .clone()
}

#[test]
fn markov_system_graph_matches_finite_chain_structure() {
    // The support graph of a finite chain and the graph of the equivalent
    // Markov system agree on irreducibility/aperiodicity.
    let p = Matrix::from_rows(&[&[0.5, 0.5], &[1.0, 0.0]]).unwrap();
    let chain = FiniteChain::new(p).unwrap();
    assert!(chain.is_irreducible());
    assert!(chain.is_aperiodic());

    let g = DiGraph::from_edges(2, &[(0, 0), (0, 1), (1, 0)]);
    assert!(g.is_strongly_connected());
    assert_eq!(g.period(), Some(1));
    assert!(g.is_primitive());
    assert_eq!(chain.graph().adjacency_matrix(), g.adjacency_matrix());
}

#[test]
fn unique_ergodicity_predicts_equal_impact_empirically() {
    // Sec. VI's chain of reasoning, executed end to end: structural
    // verdict -> empirical equal impact from several initial conditions.
    let ms = binary_ifs();
    let mut rng = SimRng::new(1);
    let verdict = ergodic::analyze(
        &ms,
        MetricKind::Euclidean,
        400,
        &mut rng,
        box_sampler(vec![0.0], vec![1.0]),
    );
    assert_eq!(verdict.verdict, ErgodicityVerdict::UniquelyErgodic);

    let test = ergodic::empirical_equal_impact(
        &ms,
        &[vec![0.0], vec![0.25], vec![0.5], vec![1.0]],
        30_000,
        0.02,
        &mut rng,
        |x| x[0],
    );
    assert!(test.passed, "spread = {}", test.spread);
}

#[test]
fn invariant_measure_matches_long_run_trajectory_law() {
    // Elton's theorem, numerically: the empirical law of one long
    // trajectory matches the particle-estimated invariant measure.
    let ms = binary_ifs();
    let mut rng = SimRng::new(2);
    let estimate = estimate_invariant_measure(
        &ms,
        &ParticleMeasure::dirac(&[0.7]),
        3_000,
        150,
        0.02,
        &mut rng,
    );
    assert!(estimate.converged);

    let traj = ms.trajectory(&[0.1], 5_000, &mut rng);
    let traj_samples: Vec<f64> = traj.iter().skip(500).map(|x| x[0]).collect();
    let d = kolmogorov_smirnov(&traj_samples, &estimate.final_samples);
    assert!(d < 0.05, "KS distance = {d}");
}

#[test]
fn coupling_rate_matches_contraction_factor() {
    // The synchronous-coupling distance decays at the contraction rate
    // estimated by the contractivity sweep.
    let ms = binary_ifs();
    let mut rng = SimRng::new(3);
    let report = eqimpact_markov::contractivity::estimate_contraction_factor(
        &ms,
        MetricKind::Euclidean,
        300,
        &mut rng,
        box_sampler(vec![0.0], vec![1.0]),
    );
    assert!((report.estimated_factor - 0.5).abs() < 1e-9);

    let trace = synchronous_coupling(
        &ms,
        &[0.0],
        &[1.0],
        40,
        MetricKind::Euclidean,
        0.0,
        &mut rng,
    );
    let rate = fit_geometric_rate(&trace.distances).expect("positive distances");
    assert!(
        (rate - report.estimated_factor).abs() < 0.02,
        "coupling rate {rate} vs contraction {}",
        report.estimated_factor
    );
}

#[test]
fn periodic_system_fails_attractivity_but_keeps_cesaro_limits() {
    // The A3 dichotomy at the API level: the periodic chain's TV distance
    // plateaus, yet the Cesàro average of a trajectory still converges.
    let chain = FiniteChain::new(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap()).unwrap();
    let nu = eqimpact_linalg::Vector::from_slice(&[1.0, 0.0]);
    let decay = chain.tv_decay(&nu, 40).unwrap();
    assert!((decay.last().unwrap() - 0.5).abs() < 1e-12);

    let mut rng = SimRng::new(4);
    let states = chain.simulate(0, 10_000, &mut rng);
    let cesaro = eqimpact_stats::timeseries::cesaro_trajectory(
        &states.iter().map(|&s| s as f64).collect::<Vec<_>>(),
    );
    assert!((cesaro.last().unwrap() - 0.5).abs() < 1e-3);
}

#[test]
fn reducible_system_breaks_equal_impact() {
    // Two invariant components -> limits depend on the initial condition.
    let ms = MarkovSystem::builder(1)
        .cell(|x| x[0] < 0.0)
        .cell(|x| x[0] >= 0.0)
        .edge(0, 0, |x| vec![0.5 * x[0] - 0.5], |_| 1.0)
        .edge(1, 1, |x| vec![0.5 * x[0] + 0.5], |_| 1.0)
        .build()
        .unwrap();
    let mut rng = SimRng::new(5);
    let verdict = ergodic::analyze(
        &ms,
        MetricKind::Euclidean,
        300,
        &mut rng,
        box_sampler(vec![-1.0], vec![1.0]),
    );
    assert_eq!(verdict.verdict, ErgodicityVerdict::NotIrreducible);

    let test =
        ergodic::empirical_equal_impact(&ms, &[vec![-0.9], vec![0.9]], 3_000, 0.1, &mut rng, |x| {
            x[0]
        });
    assert!(!test.passed);
    assert!(test.spread > 1.5);
}

#[test]
fn wielandt_graph_exercises_primitivity_bound() {
    // The extremal Wielandt graph: primitive with the maximal exponent.
    let n = 6usize;
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.push((n - 2, 0));
    let g = DiGraph::from_edges(n, &edges);
    assert!(g.is_primitive());
    let exp = eqimpact_graph::primitivity::primitivity_exponent(&g).unwrap();
    assert_eq!(exp, (n - 1) * (n - 1) + 1);
}
