//! Facade over the `eqimpact` workspace: one `use eqimpact::prelude::*`
//! away from building a closed loop.
//!
//! The heavy lifting lives in the member crates; this crate only
//! re-exports them under stable names and hosts the workspace-level
//! examples and integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eqimpact_bench as bench;
pub use eqimpact_census as census;
pub use eqimpact_certify as certify;
pub use eqimpact_control as control;
pub use eqimpact_core as core;
pub use eqimpact_credit as credit;
pub use eqimpact_graph as graph;
pub use eqimpact_hiring as hiring;
pub use eqimpact_lab as lab;
pub use eqimpact_linalg as linalg;
pub use eqimpact_markov as markov;
pub use eqimpact_ml as ml;
pub use eqimpact_stats as stats;
pub use eqimpact_trace as trace;

/// The most common imports for building and running a closed loop.
pub mod prelude {
    pub use eqimpact_core::closed_loop::{
        AiSystem, DynLoopRunner, Feedback, FeedbackFilter, LoopBuilder, LoopRunner, MeanFilter,
        UserPopulation,
    };
    pub use eqimpact_core::features::FeatureMatrix;
    pub use eqimpact_core::pool::{BudgetLease, ThreadBudget, WorkerPool};
    pub use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
    pub use eqimpact_core::scenario::{
        run_scenario, write_artifacts, Artifact, ArtifactSpec, DynScenario, Scale, Scenario,
        ScenarioConfig, ScenarioError, ScenarioReport,
    };
    pub use eqimpact_core::shard::{
        full_cols, shard_bounds, ColsMut, ColsView, PopulationShard, RowStreams, ShardableAi,
        ShardablePopulation, ShardedRunner,
    };
    pub use eqimpact_core::trials::{run_trials, run_trials_with, run_trials_with_budget};
    pub use eqimpact_stats::SimRng;
}
