//! Feedback-path filters (the "Filter, e.g. accumulating the training
//! data" block of the paper's Fig. 1).

use eqimpact_stats::timeseries::Ewma;
use std::collections::VecDeque;

/// A causal scalar filter on the aggregate observation path.
pub trait Filter {
    /// Consumes one observation, returns the filtered value.
    fn push(&mut self, y: f64) -> f64;

    /// Current output without consuming input; `NaN` before any input.
    fn value(&self) -> f64;

    /// Clears all internal state.
    fn reset(&mut self);
}

/// The accumulating (full-history average) filter: exactly the training
/// data accumulation of Fig. 1 and the `ADR` computation of eq. (12).
#[derive(Debug, Clone, Default)]
pub struct AccumulatingFilter {
    sum: f64,
    count: u64,
}

impl AccumulatingFilter {
    /// Creates an empty accumulating filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Filter for AccumulatingFilter {
    fn push(&mut self, y: f64) -> f64 {
        self.sum += y;
        self.count += 1;
        self.value()
    }

    fn value(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }
}

/// A filter whose state over a partitioned input stream can be rebuilt by
/// merging per-partition states.
///
/// The sharded loop runner does **not** use this today — it keeps the
/// feedback path bit-exact by applying the one `FeedbackFilter` to the
/// merged buffers at the step barrier. `MergeableFilter` is the building
/// block for future *distributed* feedback paths (e.g. merging per-node
/// thin aggregates across machines), where a pooled merge replaces the
/// shared-memory barrier.
///
/// The contract: feeding a stream's elements into per-shard filters and
/// [`absorb`](Self::absorb)ing them equals feeding the whole stream into
/// one filter, *up to the filter's own order sensitivity* — exact for
/// order-free statistics like [`AccumulatingFilter`] (modulo f64 sum
/// associativity), pooled-moment exact for [`AnomalyRejectingFilter`].
/// Order-dependent filters (sliding window, EWMA) have no meaningful
/// merge and deliberately do not implement this.
pub trait MergeableFilter: Filter {
    /// Absorbs another filter's state, as if its accepted samples had
    /// also flowed through `self`.
    fn absorb(&mut self, other: &Self);
}

impl MergeableFilter for AccumulatingFilter {
    fn absorb(&mut self, other: &Self) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Sliding-window mean over the last `window` samples.
#[derive(Debug, Clone)]
pub struct SlidingWindowFilter {
    window: usize,
    buffer: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindowFilter {
    /// Creates a window filter.
    ///
    /// # Panics
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "SlidingWindowFilter: zero window");
        SlidingWindowFilter {
            window,
            buffer: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Whether the window is full.
    pub fn is_full(&self) -> bool {
        self.buffer.len() == self.window
    }
}

impl Filter for SlidingWindowFilter {
    fn push(&mut self, y: f64) -> f64 {
        if self.buffer.len() == self.window {
            let old = self.buffer.pop_front().expect("full buffer");
            self.sum -= old;
        }
        self.buffer.push_back(y);
        self.sum += y;
        self.value()
    }

    fn value(&self) -> f64 {
        if self.buffer.is_empty() {
            f64::NAN
        } else {
            self.sum / self.buffer.len() as f64
        }
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.sum = 0.0;
    }
}

/// Exponentially weighted moving-average filter.
#[derive(Debug, Clone)]
pub struct EwmaFilter {
    ewma: Ewma,
    alpha: f64,
}

impl EwmaFilter {
    /// Creates an EWMA filter with smoothing `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        EwmaFilter {
            ewma: Ewma::new(alpha),
            alpha,
        }
    }

    /// The raw running value (`None` before any input) — the
    /// checkpoint-capture hook.
    pub fn state(&self) -> Option<f64> {
        self.ewma.value()
    }

    /// Overwrites the running value — the checkpoint-restore hook.
    pub fn restore_state(&mut self, value: Option<f64>) {
        self.ewma.restore(value);
    }
}

impl Filter for EwmaFilter {
    fn push(&mut self, y: f64) -> f64 {
        self.ewma.push(y)
    }

    fn value(&self) -> f64 {
        self.ewma.value().unwrap_or(f64::NAN)
    }

    fn reset(&mut self) {
        self.ewma = Ewma::new(self.alpha);
    }
}

/// Anomaly-rejecting filter: observations further than `k_sigma` running
/// standard deviations from the running mean are discarded ("filtering out
/// anomalies" in Sec. III). Until `min_samples` observations have been
/// accepted, everything is accepted to warm up the statistics.
#[derive(Debug, Clone)]
pub struct AnomalyRejectingFilter {
    k_sigma: f64,
    min_samples: u64,
    count: u64,
    mean: f64,
    m2: f64,
    rejected: u64,
}

impl AnomalyRejectingFilter {
    /// Creates a filter rejecting beyond `k_sigma` standard deviations,
    /// after `min_samples` warm-up samples.
    ///
    /// # Panics
    /// Panics when `k_sigma <= 0`.
    pub fn new(k_sigma: f64, min_samples: u64) -> Self {
        assert!(k_sigma > 0.0, "AnomalyRejectingFilter: k_sigma <= 0");
        AnomalyRejectingFilter {
            k_sigma,
            min_samples,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            rejected: 0,
        }
    }

    /// Number of rejected observations so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of accepted observations.
    pub fn accepted(&self) -> u64 {
        self.count
    }

    fn std(&self) -> f64 {
        if self.count < 2 {
            f64::INFINITY
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

impl Filter for AnomalyRejectingFilter {
    fn push(&mut self, y: f64) -> f64 {
        let accept =
            self.count < self.min_samples || (y - self.mean).abs() <= self.k_sigma * self.std();
        if accept {
            self.count += 1;
            let delta = y - self.mean;
            self.mean += delta / self.count as f64;
            self.m2 += delta * (y - self.mean);
        } else {
            self.rejected += 1;
        }
        self.value()
    }

    fn value(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
        self.m2 = 0.0;
        self.rejected = 0;
    }
}

impl MergeableFilter for AnomalyRejectingFilter {
    /// Pools the running moments with the parallel Welford update (Chan
    /// et al.): the merged `(count, mean, m2)` are exactly those of the
    /// union of both filters' accepted samples. (Which samples *were*
    /// accepted can differ from a sequential feed — acceptance thresholds
    /// evolve with order — so this merges statistics, not decisions.)
    fn absorb(&mut self, other: &Self) {
        if other.count == 0 {
            self.rejected += other.rejected;
            return;
        }
        let (n1, n2) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.rejected += other.rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulating_filter_tree_merge_equals_sequential_feed() {
        // Integer-valued samples keep the sums exact, so the shard merge
        // reproduces the sequential state bit-for-bit.
        let samples: Vec<f64> = (0..64).map(|i| ((i * 7) % 11) as f64).collect();
        let mut sequential = AccumulatingFilter::new();
        for &y in &samples {
            sequential.push(y);
        }
        // Four shards, merged pairwise then at the root.
        let mut shards: Vec<AccumulatingFilter> = samples
            .chunks(16)
            .map(|chunk| {
                let mut f = AccumulatingFilter::new();
                for &y in chunk {
                    f.push(y);
                }
                f
            })
            .collect();
        let right = shards.split_off(2);
        let mut left = shards.remove(0);
        left.absorb(&shards[0]);
        let mut right_acc = right[0].clone();
        right_acc.absorb(&right[1]);
        left.absorb(&right_acc);
        assert_eq!(left.count(), sequential.count());
        assert_eq!(left.value(), sequential.value());
    }

    #[test]
    fn anomaly_filter_merge_pools_exact_moments() {
        // No rejections (huge k_sigma): the merged moments must match a
        // whole-stream Welford pass.
        let samples: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let mut whole = AnomalyRejectingFilter::new(1e12, 0);
        for &y in &samples {
            whole.push(y);
        }
        let mut left = AnomalyRejectingFilter::new(1e12, 0);
        let mut right = AnomalyRejectingFilter::new(1e12, 0);
        for &y in &samples[..13] {
            left.push(y);
        }
        for &y in &samples[13..] {
            right.push(y);
        }
        left.absorb(&right);
        assert_eq!(left.accepted(), whole.accepted());
        assert!((left.value() - whole.value()).abs() < 1e-12);
        assert!((left.std() - whole.std()).abs() < 1e-12);
        // Absorbing an empty filter only carries its rejection count.
        let empty = AnomalyRejectingFilter::new(1.0, 0);
        let before = left.value();
        left.absorb(&empty);
        assert_eq!(left.value(), before);
    }

    #[test]
    fn accumulating_filter_is_cesaro() {
        let mut f = AccumulatingFilter::new();
        assert!(f.value().is_nan());
        assert_eq!(f.push(1.0), 1.0);
        assert_eq!(f.push(0.0), 0.5);
        assert_eq!(f.push(0.5), 0.5);
        assert_eq!(f.count(), 3);
        f.reset();
        assert!(f.value().is_nan());
    }

    #[test]
    fn sliding_window_drops_old_samples() {
        let mut f = SlidingWindowFilter::new(2);
        assert!(f.value().is_nan());
        assert_eq!(f.push(1.0), 1.0);
        assert!(!f.is_full());
        assert_eq!(f.push(3.0), 2.0);
        assert!(f.is_full());
        assert_eq!(f.push(5.0), 4.0); // the 1.0 fell out
        f.reset();
        assert!(f.value().is_nan());
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn sliding_window_rejects_zero() {
        SlidingWindowFilter::new(0);
    }

    #[test]
    fn ewma_filter_smooths() {
        let mut f = EwmaFilter::new(0.5);
        assert!(f.value().is_nan());
        assert_eq!(f.push(4.0), 4.0);
        assert_eq!(f.push(0.0), 2.0);
        f.reset();
        assert!(f.value().is_nan());
    }

    #[test]
    fn ewma_filter_state_round_trips() {
        let mut f = EwmaFilter::new(0.5);
        assert_eq!(f.state(), None);
        f.push(4.0);
        f.push(0.0);
        let mut g = EwmaFilter::new(0.5);
        g.restore_state(f.state());
        assert_eq!(g.push(2.0), f.push(2.0), "restored filter tracks");
    }

    #[test]
    fn anomaly_filter_rejects_outliers() {
        let mut f = AnomalyRejectingFilter::new(3.0, 10);
        // Warm-up with a tight cluster.
        for i in 0..20 {
            f.push(1.0 + 0.01 * ((i % 5) as f64 - 2.0));
        }
        let before = f.value();
        f.push(100.0); // gross outlier: must be rejected
        assert_eq!(f.rejected(), 1);
        assert!((f.value() - before).abs() < 1e-12);
        // A nearby value is accepted.
        let accepted_before = f.accepted();
        f.push(1.005);
        assert_eq!(f.accepted(), accepted_before + 1);
    }

    #[test]
    fn anomaly_filter_accepts_everything_during_warmup() {
        let mut f = AnomalyRejectingFilter::new(1.0, 5);
        for v in [0.0, 100.0, -100.0, 50.0, -50.0] {
            f.push(v);
        }
        assert_eq!(f.accepted(), 5);
        assert_eq!(f.rejected(), 0);
        f.reset();
        assert_eq!(f.accepted(), 0);
    }

    #[test]
    fn filters_share_trait_object_interface() {
        let mut filters: Vec<Box<dyn Filter>> = vec![
            Box::new(AccumulatingFilter::new()),
            Box::new(SlidingWindowFilter::new(3)),
            Box::new(EwmaFilter::new(0.3)),
            Box::new(AnomalyRejectingFilter::new(2.0, 3)),
        ];
        for f in &mut filters {
            for v in [1.0, 2.0, 3.0] {
                f.push(v);
            }
            assert!(f.value().is_finite());
        }
    }
}
