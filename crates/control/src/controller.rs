//! Discrete-time feedback controllers.

/// A discrete-time controller: consumes the tracking error
/// `e(k) = r - y(k)` and produces the next broadcast signal `π(k+1)`.
pub trait Controller {
    /// Processes one error sample and returns the control signal.
    fn update(&mut self, error: f64) -> f64;

    /// Resets internal state (integrators, memories) to initial conditions.
    fn reset(&mut self);
}

/// Pure proportional control: `u = bias + kp · e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PController {
    /// Proportional gain.
    pub kp: f64,
    /// Constant offset added to the output.
    pub bias: f64,
}

impl PController {
    /// Creates a proportional controller.
    pub fn new(kp: f64, bias: f64) -> Self {
        PController { kp, bias }
    }
}

impl Controller for PController {
    fn update(&mut self, error: f64) -> f64 {
        self.bias + self.kp * error
    }

    fn reset(&mut self) {}
}

/// Pure integral control: `u(k+1) = u(k) + ki · e(k)`.
///
/// This is the controller the paper warns about: integral action in the
/// loop can destroy the ergodic properties the equal-impact notion needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IController {
    /// Integral gain.
    pub ki: f64,
    state: f64,
    initial: f64,
}

impl IController {
    /// Creates an integral controller starting from `initial` output.
    pub fn new(ki: f64, initial: f64) -> Self {
        IController {
            ki,
            state: initial,
            initial,
        }
    }

    /// Current integrator state.
    pub fn state(&self) -> f64 {
        self.state
    }
}

impl Controller for IController {
    fn update(&mut self, error: f64) -> f64 {
        self.state += self.ki * error;
        self.state
    }

    fn reset(&mut self) {
        self.state = self.initial;
    }
}

/// PI control: `u = bias + kp·e + ki·Σe`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Constant offset.
    pub bias: f64,
    integral: f64,
}

impl PiController {
    /// Creates a PI controller.
    pub fn new(kp: f64, ki: f64, bias: f64) -> Self {
        PiController {
            kp,
            ki,
            bias,
            integral: 0.0,
        }
    }

    /// Accumulated integral term.
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

impl Controller for PiController {
    fn update(&mut self, error: f64) -> f64 {
        self.integral += self.ki * error;
        self.bias + self.kp * error + self.integral
    }

    fn reset(&mut self) {
        self.integral = 0.0;
    }
}

/// PI control with **conditional anti-windup**: the integrator only
/// accumulates while the raw output is inside the saturation band, so the
/// integral term cannot wind up during long saturated excursions. The
/// stable-by-design controller recommended for the loop when some integral
/// action is unavoidable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntiWindupPi {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Output lower limit.
    pub lo: f64,
    /// Output upper limit.
    pub hi: f64,
    integral: f64,
}

impl AntiWindupPi {
    /// Creates the controller.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn new(kp: f64, ki: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "AntiWindupPi: lo > hi");
        AntiWindupPi {
            kp,
            ki,
            lo,
            hi,
            integral: 0.0,
        }
    }

    /// Current integral term.
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

impl Controller for AntiWindupPi {
    fn update(&mut self, error: f64) -> f64 {
        let raw = self.kp * error + self.integral + self.ki * error;
        // Conditional integration: freeze the integrator when the update
        // would push further into saturation.
        let saturated_high = raw > self.hi && error > 0.0;
        let saturated_low = raw < self.lo && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral += self.ki * error;
        }
        (self.kp * error + self.integral).clamp(self.lo, self.hi)
    }

    fn reset(&mut self) {
        self.integral = 0.0;
    }
}

/// Saturation wrapper clamping another controller's output to `[lo, hi]`,
/// with conditional anti-windup: while saturated, inner integral state is
/// frozen by re-running `reset` semantics only on overflow — here
/// implemented as clamping only, leaving windup behaviour to the inner law.
#[derive(Debug, Clone)]
pub struct SaturatedController<C> {
    inner: C,
    lo: f64,
    hi: f64,
}

impl<C: Controller> SaturatedController<C> {
    /// Wraps `inner` with output limits `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    pub fn new(inner: C, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "SaturatedController: lo > hi");
        SaturatedController { inner, lo, hi }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Controller> Controller for SaturatedController<C> {
    fn update(&mut self, error: f64) -> f64 {
        self.inner.update(error).clamp(self.lo, self.hi)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Deadband wrapper: errors with `|e| <= width` are treated as zero,
/// suppressing chatter around the reference.
#[derive(Debug, Clone)]
pub struct DeadbandController<C> {
    inner: C,
    width: f64,
}

impl<C: Controller> DeadbandController<C> {
    /// Wraps `inner` with a symmetric deadband of the given width.
    ///
    /// # Panics
    /// Panics when `width < 0`.
    pub fn new(inner: C, width: f64) -> Self {
        assert!(width >= 0.0, "DeadbandController: negative width");
        DeadbandController { inner, width }
    }
}

impl<C: Controller> Controller for DeadbandController<C> {
    fn update(&mut self, error: f64) -> f64 {
        let e = if error.abs() <= self.width {
            0.0
        } else {
            error
        };
        self.inner.update(e)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_controller_is_memoryless() {
        let mut c = PController::new(2.0, 1.0);
        assert_eq!(c.update(0.5), 2.0);
        assert_eq!(c.update(0.5), 2.0);
        c.reset();
        assert_eq!(c.update(-1.0), -1.0);
    }

    #[test]
    fn i_controller_accumulates() {
        let mut c = IController::new(0.5, 1.0);
        assert_eq!(c.update(1.0), 1.5);
        assert_eq!(c.update(1.0), 2.0);
        assert_eq!(c.state(), 2.0);
        c.reset();
        assert_eq!(c.state(), 1.0);
        assert_eq!(c.update(0.0), 1.0);
    }

    #[test]
    fn pi_controller_combines_terms() {
        let mut c = PiController::new(1.0, 0.1, 0.0);
        // e = 1: integral = 0.1, u = 1 + 0.1 = 1.1.
        assert!((c.update(1.0) - 1.1).abs() < 1e-15);
        // e = 0: integral stays 0.1, u = 0.1.
        assert!((c.update(0.0) - 0.1).abs() < 1e-15);
        assert!((c.integral() - 0.1).abs() < 1e-15);
        c.reset();
        assert_eq!(c.integral(), 0.0);
    }

    #[test]
    fn saturation_clamps() {
        let mut c = SaturatedController::new(PController::new(10.0, 0.0), -1.0, 1.0);
        assert_eq!(c.update(5.0), 1.0);
        assert_eq!(c.update(-5.0), -1.0);
        assert_eq!(c.update(0.05), 0.5);
        assert_eq!(c.inner().kp, 10.0);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn saturation_rejects_inverted_bounds() {
        SaturatedController::new(PController::new(1.0, 0.0), 1.0, -1.0);
    }

    #[test]
    fn deadband_suppresses_small_errors() {
        let mut c = DeadbandController::new(PController::new(1.0, 0.0), 0.1);
        assert_eq!(c.update(0.05), 0.0);
        assert_eq!(c.update(-0.1), 0.0);
        assert_eq!(c.update(0.2), 0.2);
    }

    #[test]
    fn deadband_preserves_integral_behaviour_outside_band() {
        let mut c = DeadbandController::new(IController::new(1.0, 0.0), 0.5);
        c.update(1.0); // accumulates 1.0
        c.update(0.1); // within band, accumulates 0
        assert_eq!(c.update(0.0), 1.0);
        c.reset();
        assert_eq!(c.update(0.0), 0.0);
    }

    #[test]
    fn anti_windup_pi_does_not_wind_up() {
        // Drive both a plain PI and the anti-windup PI with a long
        // saturated excursion, then reverse the error: the anti-windup
        // controller recovers immediately, the plain one lags.
        let mut plain = SaturatedController::new(PiController::new(1.0, 0.5, 0.0), -1.0, 1.0);
        let mut aw = AntiWindupPi::new(1.0, 0.5, -1.0, 1.0);
        for _ in 0..100 {
            plain.update(5.0);
            aw.update(5.0);
        }
        // Anti-windup integral stays bounded near the band.
        assert!(aw.integral() <= 1.5 + 1e-12, "integral = {}", aw.integral());
        // After the error flips, the anti-windup output responds at once.
        let aw_out = aw.update(-2.0);
        assert!(aw_out < 1.0, "anti-windup stuck at {aw_out}");
        // The plain PI's wound-up integral keeps it pinned at the top.
        let plain_out = plain.update(-2.0);
        assert_eq!(plain_out, 1.0);
    }

    #[test]
    fn anti_windup_pi_tracks_like_pi_when_unsaturated() {
        let mut aw = AntiWindupPi::new(0.5, 0.1, -100.0, 100.0);
        let mut pi = PiController::new(0.5, 0.1, 0.0);
        for e in [0.2, -0.1, 0.3, 0.0, -0.2] {
            let a = aw.update(e);
            let b = pi.update(e);
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        aw.reset();
        assert_eq!(aw.integral(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn anti_windup_rejects_inverted_bounds() {
        AntiWindupPi::new(1.0, 1.0, 1.0, -1.0);
    }

    #[test]
    fn wrappers_compose() {
        let mut c = SaturatedController::new(
            DeadbandController::new(PiController::new(1.0, 1.0, 0.0), 0.01),
            0.0,
            1.0,
        );
        let u = c.update(10.0);
        assert_eq!(u, 1.0);
        c.reset();
        assert_eq!(c.update(0.0), 0.0);
    }
}
