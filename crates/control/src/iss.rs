//! Numerical incremental input-to-state stability (Def. 7, after Angeli
//! 2002).
//!
//! A system `x(k+1) = F(x(k), u(k))` is incrementally ISS when
//!
//! ```text
//! ‖x(k, ξ1, u1) − x(k, ξ2, u2)‖ ≤ β(‖ξ1 − ξ2‖, k) + γ(‖u1 − u2‖_∞)
//! ```
//!
//! for class-KL `β` and class-K `γ`. The property cannot be certified for
//! black-box `F`, but it can be *falsified* and its `β`, `γ` envelopes
//! estimated from trajectories, which is what closed-loop design needs:
//! internal asymptotic stability of controller and filter is the paper's
//! route to contractivity of the loop (Sec. VI).

use eqimpact_stats::SimRng;

/// Exponential class-KL candidate `β(s, t) = c · s · λ^t`.
///
/// A *bona fide* class-KL function needs `λ < 1`; fitted values with
/// `λ ≥ 1` are allowed so that an estimation sweep can report instability
/// (the [`IssReport::consistent`] flag then rejects the system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpKl {
    /// Multiplicative constant `c ≥ 0`.
    pub c: f64,
    /// Decay factor `λ ≥ 0` (`< 1` for a true KL function).
    pub lambda: f64,
}

impl ExpKl {
    /// Creates the candidate.
    ///
    /// # Panics
    /// Panics unless `c >= 0` and `lambda >= 0` are finite.
    pub fn new(c: f64, lambda: f64) -> Self {
        assert!(c >= 0.0 && c.is_finite(), "ExpKl: negative c");
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "ExpKl: negative lambda"
        );
        ExpKl { c, lambda }
    }

    /// Whether this is a genuine class-KL function (decaying in `t`).
    pub fn is_kl(&self) -> bool {
        self.lambda < 1.0
    }

    /// Evaluates `β(s, t)`.
    pub fn eval(&self, s: f64, t: u32) -> f64 {
        self.c * s * self.lambda.powi(t as i32)
    }
}

/// Linear class-K candidate `γ(s) = g · s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearK {
    /// Gain `g ≥ 0`.
    pub g: f64,
}

impl LinearK {
    /// Creates the candidate.
    ///
    /// # Panics
    /// Panics for negative gain.
    pub fn new(g: f64) -> Self {
        assert!(g >= 0.0, "LinearK: negative gain");
        LinearK { g }
    }

    /// Evaluates `γ(s)`.
    pub fn eval(&self, s: f64) -> f64 {
        self.g * s
    }
}

/// Result of the incremental-ISS estimation sweep.
#[derive(Debug, Clone)]
pub struct IssReport {
    /// Fitted exponential KL envelope for the zero-input-difference runs.
    pub beta: ExpKl,
    /// Fitted linear input gain from the equal-initial-condition runs.
    pub gamma: LinearK,
    /// Fraction of validation trajectories satisfying the fitted bound.
    pub validation_pass_rate: f64,
    /// Whether the sweep is consistent with incremental ISS
    /// (`beta.lambda < 1`, finite gain, pass rate ≥ 0.99).
    pub consistent: bool,
}

/// Estimates incremental-ISS envelopes for a system `step(x, u) -> x'` on
/// `R^dim` with scalar input, over initial conditions and inputs drawn from
/// the provided samplers.
///
/// Procedure:
/// 1. runs pairs with identical input, different initial conditions, and
///    fits `λ` as the worst-pair geometric decay rate of the state
///    difference (with `c` the worst overshoot);
/// 2. runs pairs with identical initial conditions and constant-offset
///    inputs, fitting the gain `g` as the worst ratio of asymptotic state
///    difference to input difference;
/// 3. validates the combined bound on fresh pairs differing in both.
pub fn estimate_iss(
    mut step: impl FnMut(&[f64], f64) -> Vec<f64>,
    dim: usize,
    horizon: usize,
    n_pairs: usize,
    rng: &mut SimRng,
    mut x_sampler: impl FnMut(&mut SimRng) -> Vec<f64>,
    mut u_sampler: impl FnMut(&mut SimRng) -> f64,
) -> IssReport {
    assert!(horizon >= 2, "estimate_iss: horizon too short");
    assert!(dim > 0, "estimate_iss: zero dimension");

    let norm = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };

    // Phase 1: β from same-input pairs.
    let mut worst_lambda = 0.0f64;
    let mut worst_c = 1.0f64;
    for _ in 0..n_pairs {
        let x1 = x_sampler(rng);
        let x2 = x_sampler(rng);
        let d0 = norm(&x1, &x2);
        if d0 < 1e-12 {
            continue;
        }
        let mut a = x1.clone();
        let mut b = x2.clone();
        let mut prev = d0;
        for k in 1..=horizon {
            let u = u_sampler(rng);
            a = step(&a, u);
            b = step(&b, u);
            let d = norm(&a, &b);
            // Per-step contraction estimate.
            if prev > 1e-12 {
                worst_lambda = worst_lambda.max((d / prev).min(10.0));
            }
            // Overshoot relative to the pure-decay envelope.
            let envelope = d0 * worst_lambda.max(1e-9).powi(k as i32);
            if envelope > 1e-12 {
                worst_c = worst_c.max(d / envelope);
            }
            prev = d;
        }
    }
    let beta = ExpKl::new(worst_c.min(1e6), worst_lambda);

    // Phase 2: γ from same-state, offset-input pairs.
    let mut worst_gain = 0.0f64;
    for _ in 0..n_pairs {
        let x0 = x_sampler(rng);
        let du = rng.uniform_in(0.01, 1.0);
        let mut a = x0.clone();
        let mut b = x0;
        let mut max_d = 0.0f64;
        for _ in 0..horizon {
            let u = u_sampler(rng);
            a = step(&a, u);
            b = step(&b, u + du);
            max_d = max_d.max(norm(&a, &b));
        }
        worst_gain = worst_gain.max(max_d / du);
    }
    let gamma = LinearK::new(worst_gain.min(1e9));

    // Phase 3: validation with both differences active.
    let mut checked = 0usize;
    let mut passed = 0usize;
    for _ in 0..n_pairs {
        let x1 = x_sampler(rng);
        let x2 = x_sampler(rng);
        let du = rng.uniform_in(0.0, 0.5);
        let d0 = norm(&x1, &x2);
        let mut a = x1;
        let mut b = x2;
        let mut ok = true;
        for k in 1..=horizon {
            let u = u_sampler(rng);
            a = step(&a, u);
            b = step(&b, u + du);
            let bound = beta.eval(d0, k as u32) + gamma.eval(du) + 1e-9;
            if norm(&a, &b) > bound * 1.05 {
                ok = false;
                break;
            }
        }
        checked += 1;
        if ok {
            passed += 1;
        }
    }
    let validation_pass_rate = if checked == 0 {
        0.0
    } else {
        passed as f64 / checked as f64
    };

    IssReport {
        beta,
        gamma,
        validation_pass_rate,
        consistent: beta.lambda < 1.0 - 1e-9 && gamma.g.is_finite() && validation_pass_rate >= 0.99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A contractive scalar system: x' = a x + u, |a| < 1 is inc. ISS with
    /// β(s,t) = s|a|^t and γ(s) = s/(1-|a|).
    fn linear_step(a: f64) -> impl FnMut(&[f64], f64) -> Vec<f64> {
        move |x: &[f64], u: f64| vec![a * x[0] + u]
    }

    #[test]
    fn contractive_linear_system_is_consistent() {
        let mut rng = SimRng::new(1);
        let report = estimate_iss(
            linear_step(0.7),
            1,
            40,
            60,
            &mut rng,
            |r| vec![r.uniform_in(-5.0, 5.0)],
            |r| r.uniform_in(-1.0, 1.0),
        );
        assert!(report.consistent, "{report:?}");
        assert!((report.beta.lambda - 0.7).abs() < 0.05, "{:?}", report.beta);
        // True gain is 1/(1-0.7) ≈ 3.33; finite-horizon estimate ≤ that.
        assert!(report.gamma.g <= 3.5);
        assert!(report.gamma.g > 2.0);
    }

    #[test]
    fn unstable_linear_system_is_flagged() {
        let mut rng = SimRng::new(2);
        let report = estimate_iss(
            linear_step(1.1),
            1,
            30,
            40,
            &mut rng,
            |r| vec![r.uniform_in(-1.0, 1.0)],
            |r| r.uniform_in(-1.0, 1.0),
        );
        assert!(!report.consistent);
        assert!(report.beta.lambda >= 1.0 - 1e-9);
    }

    #[test]
    fn nonlinear_contraction_detected() {
        // x' = 0.5 sin(x) + 0.3 u: Lipschitz 0.5 in x.
        let mut rng = SimRng::new(3);
        let report = estimate_iss(
            |x, u| vec![0.5 * x[0].sin() + 0.3 * u],
            1,
            40,
            60,
            &mut rng,
            |r| vec![r.uniform_in(-3.0, 3.0)],
            |r| r.uniform_in(-1.0, 1.0),
        );
        assert!(report.consistent, "{report:?}");
        assert!(report.beta.lambda <= 0.55);
    }

    #[test]
    fn zero_pair_budget_is_inconclusive_not_a_panic() {
        // No sampled pairs means no evidence: the report must come back
        // with finite comparison-function parameters, a zero validation
        // pass rate, and `consistent == false` — never a certificate and
        // never a NaN. The certification plane hits this path when a
        // recorded trace is too short to sample any ISS pairs from.
        let mut rng = SimRng::new(9);
        let report = estimate_iss(
            linear_step(0.7),
            1,
            40,
            0,
            &mut rng,
            |r| vec![r.uniform_in(-5.0, 5.0)],
            |r| r.uniform_in(-1.0, 1.0),
        );
        assert!(!report.consistent, "{report:?}");
        assert_eq!(report.validation_pass_rate, 0.0);
        assert!(report.beta.c.is_finite() && report.beta.lambda.is_finite());
        assert!(report.gamma.g.is_finite());
    }

    #[test]
    fn kl_and_k_evaluation() {
        let b = ExpKl::new(2.0, 0.5);
        assert_eq!(b.eval(1.0, 0), 2.0);
        assert_eq!(b.eval(1.0, 1), 1.0);
        assert_eq!(b.eval(3.0, 2), 1.5);
        let g = LinearK::new(4.0);
        assert_eq!(g.eval(0.25), 1.0);
    }

    #[test]
    #[should_panic(expected = "negative lambda")]
    fn expkl_rejects_negative_lambda() {
        ExpKl::new(1.0, -0.5);
    }

    #[test]
    fn expkl_kl_classification() {
        assert!(ExpKl::new(1.0, 0.9).is_kl());
        assert!(!ExpKl::new(1.0, 1.1).is_kl());
    }

    #[test]
    #[should_panic(expected = "negative gain")]
    fn lineark_rejects_negative() {
        LinearK::new(-1.0);
    }

    #[test]
    fn two_dimensional_rotation_contraction() {
        // Contractive rotation in R²: x' = 0.8 R(θ) x + u e1.
        let theta: f64 = 0.7;
        let (s, c) = theta.sin_cos();
        let mut rng = SimRng::new(4);
        let report = estimate_iss(
            move |x, u| vec![0.8 * (c * x[0] - s * x[1]) + u, 0.8 * (s * x[0] + c * x[1])],
            2,
            40,
            50,
            &mut rng,
            |r| vec![r.uniform_in(-2.0, 2.0), r.uniform_in(-2.0, 2.0)],
            |r| r.uniform_in(-0.5, 0.5),
        );
        assert!(report.consistent, "{report:?}");
        assert!((report.beta.lambda - 0.8).abs() < 0.05);
    }
}
