//! Controllers, filters and stability analysis for closed-loop AI
//! regulation.
//!
//! Sec. II-B/VI of the paper root the framework in ergodic control of
//! ensembles (Fioravanti et al. 2019): a broadcast signal regulates a large
//! population, and the *choice of controller* decides whether the closed
//! loop keeps a unique attractive invariant measure.
//!
//! * [`controller`] — proportional / integral / PI laws with saturation and
//!   deadband, behind a common [`controller::Controller`] trait;
//! * [`filter`] — the feedback-path filters of Fig. 1 (accumulating mean,
//!   sliding window, EWMA, anomaly-rejecting), behind [`filter::Filter`];
//! * [`iss`] — numerical incremental input-to-state stability checks
//!   (Def. 7 of the paper, after Angeli 2002), with `K`/`KL` function
//!   fitting;
//! * [`ensemble`] — the ensemble-control testbed reproducing the paper's
//!   headline warning: **integral action can destroy ergodicity** while
//!   stable static feedback preserves it.

//! # Example
//!
//! ```
//! use eqimpact_control::controller::{Controller, PController};
//! use eqimpact_control::ensemble::{logistic_ensemble, EnsembleLoop};
//! use eqimpact_stats::SimRng;
//!
//! // A stable proportional loop over stochastic users tracks its target.
//! let agents = logistic_ensemble(100, 0.0, 1.0, 0.2);
//! let mut lp = EnsembleLoop::new(agents, PController::new(2.0, 0.5), 0.5);
//! let out = lp.run_all_off(0.5, 2_000, 0, &mut SimRng::new(1));
//! let tail: f64 = out.aggregates[1_500..].iter().sum::<f64>() / 500.0;
//! assert!((tail - 0.5).abs() < 0.06);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod ensemble;
pub mod filter;
pub mod iss;

pub use controller::{
    AntiWindupPi, Controller, DeadbandController, PiController, SaturatedController,
};
pub use ensemble::{EnsembleLoop, EnsembleOutcome};
pub use filter::{
    AccumulatingFilter, AnomalyRejectingFilter, EwmaFilter, Filter, SlidingWindowFilter,
};
