//! Ensemble control: the testbed for the paper's headline warning that
//! **feedback with integral action can destroy the closed loop's ergodic
//! properties** (Sec. VI, after Fioravanti et al. 2019).
//!
//! A population of agents receives a broadcast signal `π(k)` and responds
//! with binary actions; a controller regulates the aggregate toward a
//! reference `r`. Three agent behaviours are provided:
//!
//! * [`AgentBehaviour::Threshold`] — the memoryless relay
//!   `y_i = 1{π ≥ θ_i}`;
//! * [`AgentBehaviour::Logistic`] — stochastic response
//!   `y_i ~ Bernoulli(σ((π − c_i)/s))`;
//! * [`AgentBehaviour::Hysteresis`] — a *stateful* relay that switches on
//!   at `on_threshold` and off below `off_threshold` (the thermostat /
//!   demand-response agent of the ensemble-control literature).
//!
//! With **identical hysteretic agents** and an **integral** controller,
//! the aggregate is regulated to `r` from every initial condition, but the
//! closed loop has a *continuum of frozen equilibria*: any configuration
//! with the right number of agents on and the signal resting inside the
//! hysteresis band is invariant. Which agents serve the reference is
//! decided entirely by the initial condition, so the per-agent long-run
//! averages — the `r_i` of Def. 3 — are initial-condition-dependent and
//! **equal impact fails** even though the population-level goal is met.
//! This is exactly the finite-action, discontinuous-response regime in
//! which the paper's Sec. VI has to relax the continuity assumptions. A
//! **proportional** controller with stochastic (logistic) agents keeps the
//! loop uniquely ergodic and the per-agent Cesàro averages coincide across
//! initial conditions.

use crate::controller::Controller;
use eqimpact_stats::timeseries::CesaroAverage;
use eqimpact_stats::SimRng;

/// How an agent converts the broadcast signal into a binary action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgentBehaviour {
    /// Memoryless relay: act (`1`) iff `π ≥ threshold`.
    Threshold {
        /// The activation threshold `θ_i`.
        threshold: f64,
    },
    /// Stochastic logistic response: act with probability
    /// `σ((π − center)/scale)`.
    Logistic {
        /// Sigmoid midpoint `c_i`.
        center: f64,
        /// Sigmoid scale `s > 0`.
        scale: f64,
    },
    /// Hysteretic relay: switches on when `π ≥ on_threshold`, off when
    /// `π < off_threshold`, holds its state in between.
    Hysteresis {
        /// Switch-on level (must be `>= off_threshold`).
        on_threshold: f64,
        /// Switch-off level.
        off_threshold: f64,
    },
}

impl AgentBehaviour {
    /// Updates the agent state for signal `pi` and returns the action.
    ///
    /// `state` is the agent's persistent on/off memory; only
    /// [`AgentBehaviour::Hysteresis`] reads it, all behaviours write it so
    /// that the last action is observable.
    pub fn act(&self, state: &mut bool, pi: f64, rng: &mut SimRng) -> f64 {
        let on = match *self {
            AgentBehaviour::Threshold { threshold } => pi >= threshold,
            AgentBehaviour::Logistic { center, scale } => {
                let p = 1.0 / (1.0 + (-(pi - center) / scale).exp());
                rng.bernoulli(p)
            }
            AgentBehaviour::Hysteresis {
                on_threshold,
                off_threshold,
            } => {
                if pi >= on_threshold {
                    true
                } else if pi < off_threshold {
                    false
                } else {
                    *state
                }
            }
        };
        *state = on;
        if on {
            1.0
        } else {
            0.0
        }
    }
}

/// A closed loop over an ensemble of agents with a scalar broadcast signal.
pub struct EnsembleLoop<C: Controller> {
    agents: Vec<AgentBehaviour>,
    controller: C,
    reference: f64,
}

/// Everything recorded from one ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleOutcome {
    /// Broadcast signal trace `π(0..steps)`.
    pub signals: Vec<f64>,
    /// Aggregate action trace `ȳ(0..steps)`.
    pub aggregates: Vec<f64>,
    /// Cesàro average of each agent's action over the post-discard tail —
    /// the empirical `r_i` of Def. 3.
    pub agent_averages: Vec<f64>,
    /// Cesàro trajectory of the aggregate (from step 0).
    pub aggregate_cesaro: Vec<f64>,
}

impl<C: Controller> EnsembleLoop<C> {
    /// Creates a loop.
    ///
    /// # Panics
    /// Panics for an empty ensemble.
    pub fn new(agents: Vec<AgentBehaviour>, controller: C, reference: f64) -> Self {
        assert!(!agents.is_empty(), "EnsembleLoop: no agents");
        EnsembleLoop {
            agents,
            controller,
            reference,
        }
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Runs the loop for `steps` steps from signal `pi0` and the given
    /// initial on/off states; per-agent averages are taken over
    /// `k >= discard` to wash out transients.
    ///
    /// # Panics
    /// Panics when `initial_on.len()` differs from the agent count or
    /// `discard >= steps`.
    pub fn run(
        &mut self,
        pi0: f64,
        initial_on: &[bool],
        steps: usize,
        discard: usize,
        rng: &mut SimRng,
    ) -> EnsembleOutcome {
        let n = self.agents.len();
        assert_eq!(initial_on.len(), n, "initial_on length mismatch");
        assert!(discard < steps, "discard >= steps");

        let mut states = initial_on.to_vec();
        let mut pi = pi0;
        let mut signals = Vec::with_capacity(steps);
        let mut aggregates = Vec::with_capacity(steps);
        let mut per_agent: Vec<CesaroAverage> = vec![CesaroAverage::new(); n];
        let mut agg_avg = CesaroAverage::new();
        let mut aggregate_cesaro = Vec::with_capacity(steps);

        for k in 0..steps {
            signals.push(pi);
            let mut total = 0.0;
            for ((agent, state), avg) in self
                .agents
                .iter()
                .zip(states.iter_mut())
                .zip(per_agent.iter_mut())
            {
                let y = agent.act(state, pi, rng);
                if k >= discard {
                    avg.push(y);
                }
                total += y;
            }
            let aggregate = total / n as f64;
            aggregates.push(aggregate);
            aggregate_cesaro.push(agg_avg.push(aggregate));
            let error = self.reference - aggregate;
            pi = self.controller.update(error);
        }

        EnsembleOutcome {
            signals,
            aggregates,
            agent_averages: per_agent.iter().map(|a| a.value()).collect(),
            aggregate_cesaro,
        }
    }

    /// Runs with every agent initially off.
    pub fn run_all_off(
        &mut self,
        pi0: f64,
        steps: usize,
        discard: usize,
        rng: &mut SimRng,
    ) -> EnsembleOutcome {
        let init = vec![false; self.agents.len()];
        self.run(pi0, &init, steps, discard, rng)
    }

    /// Like [`Self::run`], but the controller sees the **filtered**
    /// aggregate (Fig. 1's filter block in the feedback path) instead of
    /// the instantaneous one — the design choice whose ergodic
    /// consequences Ghosh et al. (2021) study for non-linear filters.
    pub fn run_with_filter(
        &mut self,
        pi0: f64,
        initial_on: &[bool],
        steps: usize,
        discard: usize,
        filter: &mut dyn crate::filter::Filter,
        rng: &mut SimRng,
    ) -> EnsembleOutcome {
        let n = self.agents.len();
        assert_eq!(initial_on.len(), n, "initial_on length mismatch");
        assert!(discard < steps, "discard >= steps");

        let mut states = initial_on.to_vec();
        let mut pi = pi0;
        let mut signals = Vec::with_capacity(steps);
        let mut aggregates = Vec::with_capacity(steps);
        let mut per_agent: Vec<CesaroAverage> = vec![CesaroAverage::new(); n];
        let mut agg_avg = CesaroAverage::new();
        let mut aggregate_cesaro = Vec::with_capacity(steps);

        for k in 0..steps {
            signals.push(pi);
            let mut total = 0.0;
            for ((agent, state), avg) in self
                .agents
                .iter()
                .zip(states.iter_mut())
                .zip(per_agent.iter_mut())
            {
                let y = agent.act(state, pi, rng);
                if k >= discard {
                    avg.push(y);
                }
                total += y;
            }
            let aggregate = total / n as f64;
            aggregates.push(aggregate);
            aggregate_cesaro.push(agg_avg.push(aggregate));
            let filtered = filter.push(aggregate);
            let error = self.reference - filtered;
            pi = self.controller.update(error);
        }

        EnsembleOutcome {
            signals,
            aggregates,
            agent_averages: per_agent.iter().map(|a| a.value()).collect(),
            aggregate_cesaro,
        }
    }

    /// Resets the controller state.
    pub fn reset(&mut self) {
        self.controller.reset();
    }
}

/// One initial condition of the ensemble loop: the broadcast signal and the
/// agents' internal states.
#[derive(Debug, Clone)]
pub struct EnsembleInit {
    /// Initial broadcast signal `π(0)`.
    pub pi0: f64,
    /// Initial on/off state per agent.
    pub initial_on: Vec<bool>,
}

impl EnsembleInit {
    /// All agents off.
    pub fn all_off(pi0: f64, n: usize) -> Self {
        EnsembleInit {
            pi0,
            initial_on: vec![false; n],
        }
    }

    /// All agents on.
    pub fn all_on(pi0: f64, n: usize) -> Self {
        EnsembleInit {
            pi0,
            initial_on: vec![true; n],
        }
    }

    /// The first `k` agents on, the rest off.
    pub fn first_k_on(pi0: f64, n: usize, k: usize) -> Self {
        EnsembleInit {
            pi0,
            initial_on: (0..n).map(|i| i < k).collect(),
        }
    }

    /// The last `k` agents on, the rest off.
    pub fn last_k_on(pi0: f64, n: usize, k: usize) -> Self {
        EnsembleInit {
            pi0,
            initial_on: (0..n).map(|i| i >= n - k.min(n)).collect(),
        }
    }
}

/// Result of the ergodicity-gap experiment: per-agent spread of long-run
/// averages across initial conditions.
#[derive(Debug, Clone)]
pub struct ErgodicityGap {
    /// For each agent, `max_init r_i − min_init r_i`.
    pub per_agent_spread: Vec<f64>,
    /// The largest spread over agents — the headline number: ~0 for an
    /// ergodic loop, strictly positive when equal impact fails.
    pub max_spread: f64,
    /// Long-run aggregate per initial condition (sanity: a working
    /// controller tracks the reference from every start).
    pub aggregate_limits: Vec<f64>,
}

impl eqimpact_stats::ToJson for ErgodicityGap {
    fn to_json(&self) -> eqimpact_stats::Json {
        eqimpact_stats::Json::obj([
            ("per_agent_spread", self.per_agent_spread.to_json()),
            ("max_spread", self.max_spread.to_json()),
            ("aggregate_limits", self.aggregate_limits.to_json()),
        ])
    }
}

/// Runs the loop from each initial condition (with independent randomness
/// per run) and measures how much each agent's long-run average action
/// depends on the initial condition — the direct empirical test of the
/// paper's Def. 3 across initial conditions.
///
/// `make_controller` receives the run index and must produce a fresh
/// controller per run (so integrator state does not leak between initial
/// conditions, and so the controller's initial output can be matched to
/// the run's `pi0`).
pub fn ergodicity_gap<C: Controller>(
    agents: &[AgentBehaviour],
    mut make_controller: impl FnMut(usize) -> C,
    reference: f64,
    inits: &[EnsembleInit],
    steps: usize,
    discard: usize,
    rng: &mut SimRng,
) -> ErgodicityGap {
    let n = agents.len();
    let mut mins = vec![f64::INFINITY; n];
    let mut maxs = vec![f64::NEG_INFINITY; n];
    let mut aggregate_limits = Vec::with_capacity(inits.len());

    for (run, init) in inits.iter().enumerate() {
        let mut stream = rng.split(run as u64);
        let mut lp = EnsembleLoop::new(agents.to_vec(), make_controller(run), reference);
        let outcome = lp.run(init.pi0, &init.initial_on, steps, discard, &mut stream);
        let tail = &outcome.aggregates[discard..];
        aggregate_limits.push(tail.iter().sum::<f64>() / tail.len() as f64);
        for (i, &avg) in outcome.agent_averages.iter().enumerate() {
            mins[i] = mins[i].min(avg);
            maxs[i] = maxs[i].max(avg);
        }
    }

    let per_agent_spread: Vec<f64> = mins
        .iter()
        .zip(&maxs)
        .map(|(&lo, &hi)| (hi - lo).max(0.0))
        .collect();
    let max_spread = per_agent_spread.iter().cloned().fold(0.0, f64::max);

    ErgodicityGap {
        per_agent_spread,
        max_spread,
        aggregate_limits,
    }
}

/// A standard ensemble of `n` memoryless threshold agents with thresholds
/// equally spaced in `(lo, hi)`.
pub fn threshold_ensemble(n: usize, lo: f64, hi: f64) -> Vec<AgentBehaviour> {
    assert!(n > 0 && lo < hi, "threshold_ensemble: bad parameters");
    (0..n)
        .map(|i| AgentBehaviour::Threshold {
            threshold: lo + (hi - lo) * (i as f64 + 0.5) / n as f64,
        })
        .collect()
}

/// A standard ensemble of `n` logistic agents with centers equally spaced
/// in `(lo, hi)` and common scale.
pub fn logistic_ensemble(n: usize, lo: f64, hi: f64, scale: f64) -> Vec<AgentBehaviour> {
    assert!(
        n > 0 && lo < hi && scale > 0.0,
        "logistic_ensemble: bad parameters"
    );
    (0..n)
        .map(|i| AgentBehaviour::Logistic {
            center: lo + (hi - lo) * (i as f64 + 0.5) / n as f64,
            scale,
        })
        .collect()
}

/// An ensemble of `n` **identical** hysteretic agents with the given band.
///
/// This is the canonical ergodicity-loss population: any configuration
/// with `k` agents on and the signal inside the band `[off, on)` is a
/// frozen equilibrium of the integral-controlled loop, so the closed loop
/// has a continuum of invariant measures and per-agent long-run averages
/// are dictated by initial conditions.
pub fn identical_hysteresis_ensemble(
    n: usize,
    on_threshold: f64,
    off_threshold: f64,
) -> Vec<AgentBehaviour> {
    assert!(
        n > 0 && off_threshold <= on_threshold,
        "identical_hysteresis_ensemble: bad parameters"
    );
    vec![
        AgentBehaviour::Hysteresis {
            on_threshold,
            off_threshold,
        };
        n
    ]
}

/// A standard ensemble of `n` hysteretic agents with centers equally
/// spaced in `(lo, hi)` and symmetric hysteresis half-width `half_width`.
pub fn hysteresis_ensemble(n: usize, lo: f64, hi: f64, half_width: f64) -> Vec<AgentBehaviour> {
    assert!(
        n > 0 && lo < hi && half_width >= 0.0,
        "hysteresis_ensemble: bad parameters"
    );
    (0..n)
        .map(|i| {
            let center = lo + (hi - lo) * (i as f64 + 0.5) / n as f64;
            AgentBehaviour::Hysteresis {
                on_threshold: center + half_width,
                off_threshold: center - half_width,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{IController, PController};

    #[test]
    fn threshold_agent_is_deterministic() {
        let a = AgentBehaviour::Threshold { threshold: 0.5 };
        let mut rng = SimRng::new(0);
        let mut s = false;
        assert_eq!(a.act(&mut s, 0.6, &mut rng), 1.0);
        assert!(s);
        assert_eq!(a.act(&mut s, 0.4, &mut rng), 0.0);
        assert!(!s);
        assert_eq!(a.act(&mut s, 0.5, &mut rng), 1.0);
    }

    #[test]
    fn logistic_agent_frequencies() {
        let a = AgentBehaviour::Logistic {
            center: 0.0,
            scale: 1.0,
        };
        let mut rng = SimRng::new(1);
        let mut s = false;
        let n = 20_000;
        let acts: f64 = (0..n).map(|_| a.act(&mut s, 0.0, &mut rng)).sum();
        assert!((acts / n as f64 - 0.5).abs() < 0.02);
        let high: f64 = (0..n).map(|_| a.act(&mut s, 5.0, &mut rng)).sum();
        assert!(high / n as f64 > 0.98);
    }

    #[test]
    fn hysteresis_agent_holds_state_in_band() {
        let a = AgentBehaviour::Hysteresis {
            on_threshold: 0.6,
            off_threshold: 0.4,
        };
        let mut rng = SimRng::new(2);
        let mut s = false;
        assert_eq!(a.act(&mut s, 0.5, &mut rng), 0.0); // in band, stays off
        assert_eq!(a.act(&mut s, 0.7, &mut rng), 1.0); // switches on
        assert_eq!(a.act(&mut s, 0.5, &mut rng), 1.0); // in band, stays on
        assert_eq!(a.act(&mut s, 0.3, &mut rng), 0.0); // switches off
    }

    #[test]
    fn proportional_loop_tracks_reference() {
        let agents = logistic_ensemble(200, 0.0, 1.0, 0.2);
        let mut lp = EnsembleLoop::new(agents, PController::new(2.0, 0.5), 0.5);
        let mut rng = SimRng::new(2);
        let out = lp.run_all_off(0.5, 2_000, 0, &mut rng);
        let tail_mean: f64 = out.aggregates[1_000..].iter().sum::<f64>() / 1_000.0;
        assert!((tail_mean - 0.5).abs() < 0.05, "tail mean = {tail_mean}");
        assert_eq!(out.signals.len(), 2_000);
        assert_eq!(out.agent_averages.len(), 200);
    }

    #[test]
    fn integral_loop_drives_aggregate_to_reference() {
        let agents = threshold_ensemble(100, 0.0, 1.0);
        let mut lp = EnsembleLoop::new(agents, IController::new(0.05, 0.2), 0.37);
        let mut rng = SimRng::new(3);
        let out = lp.run_all_off(0.2, 5_000, 0, &mut rng);
        let tail = out.aggregate_cesaro[4_999];
        assert!((tail - 0.37).abs() < 0.05, "aggregate Cesàro = {tail}");
    }

    #[test]
    fn integral_control_with_hysteretic_agents_breaks_equal_impact() {
        // The paper's warning, reproduced: with identical hysteretic agents
        // (finite, discontinuous action set — the regime of Sec. VI) and an
        // integral controller, any half-on configuration with the signal
        // inside the band is a frozen equilibrium. Which agents serve the
        // reference is decided entirely by the initial condition.
        let n = 50;
        let agents = identical_hysteresis_ensemble(n, 0.7, 0.3);
        let mut rng = SimRng::new(4);
        let gap = ergodicity_gap(
            &agents,
            |_| IController::new(0.01, 0.5),
            0.5,
            &[
                EnsembleInit::first_k_on(0.5, n, n / 2),
                EnsembleInit::last_k_on(0.5, n, n / 2),
                EnsembleInit::all_off(0.0, n),
            ],
            8_000,
            2_000,
            &mut rng,
        );
        assert!(
            gap.max_spread > 0.9,
            "expected ergodicity loss, max spread = {}",
            gap.max_spread
        );
        // Yet every run regulates the aggregate near the reference.
        for agg in &gap.aggregate_limits {
            assert!((agg - 0.5).abs() < 0.1, "aggregate limit = {agg}");
        }
    }

    #[test]
    fn proportional_control_with_stochastic_agents_preserves_equal_impact() {
        let n = 51;
        let agents = logistic_ensemble(n, 0.0, 1.0, 0.15);
        let mut rng = SimRng::new(5);
        let gap = ergodicity_gap(
            &agents,
            |_| PController::new(1.0, 0.5),
            0.5,
            &[
                EnsembleInit::all_off(0.0, n),
                EnsembleInit::all_on(1.0, n),
                EnsembleInit::all_off(0.4, n),
                EnsembleInit::all_on(0.6, n),
            ],
            6_000,
            1_000,
            &mut rng,
        );
        assert!(
            gap.max_spread < 0.08,
            "ergodic loop should have tiny spread, got {}",
            gap.max_spread
        );
    }

    #[test]
    fn ensemble_builders_validate() {
        assert_eq!(threshold_ensemble(3, 0.0, 1.0).len(), 3);
        assert_eq!(logistic_ensemble(4, 0.0, 1.0, 0.1).len(), 4);
        assert_eq!(hysteresis_ensemble(5, 0.0, 1.0, 0.02).len(), 5);
    }

    #[test]
    #[should_panic(expected = "no agents")]
    fn empty_ensemble_rejected() {
        let _ = EnsembleLoop::new(vec![], PController::new(1.0, 0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "bad parameters")]
    fn threshold_ensemble_rejects_empty_range() {
        threshold_ensemble(3, 1.0, 1.0);
    }

    #[test]
    fn filtered_loop_tracks_reference_with_ewma() {
        use crate::filter::EwmaFilter;
        let agents = logistic_ensemble(150, 0.0, 1.0, 0.2);
        let mut lp = EnsembleLoop::new(agents, PController::new(2.0, 0.5), 0.5);
        let mut filter = EwmaFilter::new(0.3);
        let mut rng = SimRng::new(21);
        let init = vec![false; 150];
        let out = lp.run_with_filter(0.5, &init, 3_000, 0, &mut filter, &mut rng);
        let tail: f64 = out.aggregates[2_000..].iter().sum::<f64>() / 1_000.0;
        assert!((tail - 0.5).abs() < 0.05, "tail = {tail}");
    }

    #[test]
    fn accumulating_filter_freezes_the_signal() {
        // With a full-history (Cesàro) filter the effective loop gain
        // decays like 1/k: the signal settles and stops responding to
        // recent behaviour — the non-fading-memory regime Ghosh et al.
        // analyze.
        use crate::filter::AccumulatingFilter;
        let agents = logistic_ensemble(150, 0.0, 1.0, 0.2);
        let mut lp = EnsembleLoop::new(agents, PController::new(2.0, 0.5), 0.5);
        let mut filter = AccumulatingFilter::new();
        let mut rng = SimRng::new(22);
        let init = vec![false; 150];
        let out = lp.run_with_filter(0.9, &init, 4_000, 0, &mut filter, &mut rng);
        // The signal's late movement is tiny compared to its early movement.
        let early_swing = out.signals[..200]
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        let late_swing = out.signals[3_800..]
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(
            late_swing < early_swing / 10.0,
            "late {late_swing} vs early {early_swing}"
        );
    }

    #[test]
    #[should_panic(expected = "initial_on length mismatch")]
    fn run_rejects_wrong_state_length() {
        let agents = threshold_ensemble(3, 0.0, 1.0);
        let mut lp = EnsembleLoop::new(agents, PController::new(1.0, 0.0), 0.5);
        let mut rng = SimRng::new(0);
        lp.run(0.0, &[false], 10, 0, &mut rng);
    }
}
