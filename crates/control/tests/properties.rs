//! Property-based tests for controllers, filters and ensembles.

use eqimpact_control::controller::{
    Controller, DeadbandController, IController, PController, PiController, SaturatedController,
};
use eqimpact_control::ensemble::AgentBehaviour;
use eqimpact_control::filter::{
    AccumulatingFilter, AnomalyRejectingFilter, EwmaFilter, Filter, SlidingWindowFilter,
};
use eqimpact_stats::SimRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn p_controller_is_linear(kp in -5.0f64..5.0, e1 in -10.0f64..10.0, e2 in -10.0f64..10.0) {
        let mut c = PController::new(kp, 0.0);
        let u1 = c.update(e1);
        let u2 = c.update(e2);
        let u_sum = c.update(e1 + e2);
        prop_assert!((u_sum - (u1 + u2)).abs() < 1e-9 * (1.0 + u_sum.abs()));
    }

    #[test]
    fn i_controller_sums_errors(ki in 0.01f64..2.0, errors in prop::collection::vec(-1.0f64..1.0, 1..30)) {
        let mut c = IController::new(ki, 0.0);
        let mut last = 0.0;
        for &e in &errors {
            last = c.update(e);
        }
        let expected: f64 = ki * errors.iter().sum::<f64>();
        prop_assert!((last - expected).abs() < 1e-9 * (1.0 + expected.abs()));
        c.reset();
        prop_assert_eq!(c.update(0.0), 0.0);
    }

    #[test]
    fn pi_equals_p_plus_i(kp in 0.0f64..3.0, ki in 0.0f64..3.0, errors in prop::collection::vec(-1.0f64..1.0, 1..20)) {
        let mut pi = PiController::new(kp, ki, 0.0);
        let mut p = PController::new(kp, 0.0);
        let mut i = IController::new(ki, 0.0);
        for &e in &errors {
            let u_pi = pi.update(e);
            let u_sum = p.update(e) + i.update(e);
            prop_assert!((u_pi - u_sum).abs() < 1e-9 * (1.0 + u_pi.abs()));
        }
    }

    #[test]
    fn saturation_bounds_output(
        kp in -20.0f64..20.0,
        lo in -5.0f64..0.0,
        hi in 0.0f64..5.0,
        errors in prop::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        let mut c = SaturatedController::new(PController::new(kp, 0.0), lo, hi);
        for &e in &errors {
            let u = c.update(e);
            prop_assert!((lo..=hi).contains(&u), "u = {u} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn deadband_zeroes_small_errors(width in 0.0f64..2.0, e in -5.0f64..5.0) {
        let mut c = DeadbandController::new(PController::new(1.0, 0.0), width);
        let u = c.update(e);
        if e.abs() <= width {
            prop_assert_eq!(u, 0.0);
        } else {
            prop_assert_eq!(u, e);
        }
    }

    #[test]
    fn accumulating_filter_matches_mean(values in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let mut f = AccumulatingFilter::new();
        let mut out = 0.0;
        for &v in &values {
            out = f.push(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((out - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert_eq!(f.count(), values.len() as u64);
    }

    #[test]
    fn sliding_window_stays_within_range(
        window in 1usize..10,
        values in prop::collection::vec(-50.0f64..50.0, 1..40),
    ) {
        let mut f = SlidingWindowFilter::new(window);
        for &v in &values {
            let out = f.push(v);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
        }
    }

    #[test]
    fn ewma_stays_within_observed_range(
        alpha in 0.01f64..1.0,
        values in prop::collection::vec(-10.0f64..10.0, 1..40),
    ) {
        let mut f = EwmaFilter::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &values {
            lo = lo.min(v);
            hi = hi.max(v);
            let out = f.push(v);
            prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
        }
    }

    #[test]
    fn anomaly_filter_never_rejects_during_warmup(values in prop::collection::vec(-1000.0f64..1000.0, 1..10)) {
        let mut f = AnomalyRejectingFilter::new(1.0, 100);
        for &v in &values {
            f.push(v);
        }
        prop_assert_eq!(f.rejected(), 0);
        prop_assert_eq!(f.accepted(), values.len() as u64);
    }

    #[test]
    fn threshold_agent_monotone_in_signal(threshold in 0.0f64..1.0, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let agent = AgentBehaviour::Threshold { threshold };
        let mut rng = SimRng::new(0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut s1 = false;
        let mut s2 = false;
        let y_lo = agent.act(&mut s1, lo, &mut rng);
        let y_hi = agent.act(&mut s2, hi, &mut rng);
        prop_assert!(y_lo <= y_hi);
    }

    #[test]
    fn hysteresis_band_preserves_state(
        center in 0.2f64..0.8,
        half in 0.01f64..0.15,
        initial in prop::bool::ANY,
    ) {
        let agent = AgentBehaviour::Hysteresis {
            on_threshold: center + half,
            off_threshold: center - half,
        };
        let mut rng = SimRng::new(0);
        let mut state = initial;
        // Signal inside the band never flips the state.
        let y = agent.act(&mut state, center, &mut rng);
        prop_assert_eq!(state, initial);
        prop_assert_eq!(y, if initial { 1.0 } else { 0.0 });
    }
}
