//! Property-based tests for the graph substrate.

use eqimpact_graph::{Condensation, DiGraph, StronglyConnectedComponents};
use proptest::prelude::*;

/// Random graph strategy: up to `n` nodes, arbitrary edge set.
fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..(n * n).min(40))
            .prop_map(move |edges| DiGraph::from_edges(n, &edges))
    })
}

/// Brute-force mutual-reachability check used as an SCC oracle.
fn reaches(g: &DiGraph, u: usize, v: usize) -> bool {
    g.reachable_from(u)[v]
}

proptest! {
    #[test]
    fn scc_matches_mutual_reachability(g in arb_graph(8)) {
        let scc = StronglyConnectedComponents::compute(&g);
        let n = g.node_count();
        for u in 0..n {
            for v in 0..n {
                let same = scc.same_component(u, v);
                let mutual = reaches(&g, u, v) && reaches(&g, v, u);
                prop_assert_eq!(same, mutual, "nodes {} and {}", u, v);
            }
        }
    }

    #[test]
    fn scc_partitions_nodes(g in arb_graph(10)) {
        let scc = StronglyConnectedComponents::compute(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in scc.components() {
            for &v in comp {
                prop_assert!(!seen[v], "node {} in two components", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn condensation_is_dag(g in arb_graph(10)) {
        let c = Condensation::compute(&g);
        let inner = StronglyConnectedComponents::compute(c.dag());
        prop_assert_eq!(inner.count(), c.dag().node_count());
        // And its DAG never has a self-loop.
        for (u, v) in c.dag().edges() {
            prop_assert!(u != v);
        }
    }

    #[test]
    fn strong_connectivity_consistent_with_scc(g in arb_graph(8)) {
        let scc = StronglyConnectedComponents::compute(&g);
        prop_assert_eq!(g.is_strongly_connected(), scc.count() <= 1);
    }

    #[test]
    fn primitivity_checks_agree(g in arb_graph(5)) {
        prop_assert_eq!(
            eqimpact_graph::primitivity::is_primitive(&g),
            eqimpact_graph::primitivity::is_primitive_by_powers(&g)
        );
    }

    #[test]
    fn primitive_implies_strongly_connected_and_aperiodic(g in arb_graph(6)) {
        if g.is_primitive() {
            prop_assert!(g.is_strongly_connected());
            prop_assert_eq!(g.period(), Some(1));
        }
    }

    #[test]
    fn period_divides_every_cycle_through_node_zero(g in arb_graph(6)) {
        if let Some(p) = g.period() {
            // Find shortest cycle through node 0 by BFS back to 0.
            let n = g.node_count();
            let mut dist = vec![usize::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            for &(_, v) in g.out_edges(0) {
                if v == 0 {
                    prop_assert_eq!(1 % p, 0);
                } else if dist[v] == usize::MAX {
                    dist[v] = 1;
                    queue.push_back(v);
                }
            }
            while let Some(u) = queue.pop_front() {
                for &(_, v) in g.out_edges(u) {
                    if v == 0 {
                        prop_assert_eq!((dist[u] as u64 + 1) % p, 0,
                            "cycle of length {} not divisible by period {}", dist[u] + 1, p);
                    } else if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
    }

    #[test]
    fn reversal_preserves_scc(g in arb_graph(8)) {
        let scc_f = StronglyConnectedComponents::compute(&g);
        let scc_r = StronglyConnectedComponents::compute(&g.reversed());
        prop_assert_eq!(scc_f.count(), scc_r.count());
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                prop_assert_eq!(scc_f.same_component(u, v), scc_r.same_component(u, v));
            }
        }
    }
}
