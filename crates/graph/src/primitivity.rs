//! Primitivity of non-negative adjacency matrices.
//!
//! A non-negative square matrix `A` is *primitive* if some power `A^k` is
//! entrywise positive. By Perron-Frobenius theory this is equivalent to the
//! associated graph being strongly connected and aperiodic, and by
//! Wielandt's theorem `k ≤ (n-1)² + 1` suffices for an `n x n` matrix.
//!
//! Both characterizations are implemented; the structural one
//! ([`is_primitive`]) is the default, while [`is_primitive_by_powers`]
//! performs the direct Boolean-matrix-power check and serves as an
//! independent oracle in tests.

use crate::digraph::DiGraph;
use crate::period;
use eqimpact_linalg::Matrix;

/// Wielandt's bound on the exponent of primitivity for an `n x n` matrix.
pub fn wielandt_bound(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (n - 1) * (n - 1) + 1
    }
}

/// Structural primitivity check: strongly connected and aperiodic.
pub fn is_primitive(g: &DiGraph) -> bool {
    if g.node_count() == 0 {
        return false;
    }
    period::period(g) == Some(1)
}

/// Direct check via Boolean matrix powers: computes reachability matrices
/// `A, A², A⁴, ...` up to the Wielandt bound and reports whether any power
/// is entrywise positive.
///
/// Exponential doubling keeps this `O(n³ log n)` despite the quadratic
/// bound on the exponent. Note that positivity of `A^(2^j)` for some `j` is
/// *sufficient* but checking only doubled powers could in principle miss an
/// intermediate exponent; we therefore also interleave single
/// multiplications by `A` when close to the bound — in practice positivity
/// is monotone once attained for primitive matrices with self-reachability,
/// so we check `A^k` for `k = 1, 2, 3, ..., bound` but in Boolean arithmetic
/// where each step is one Boolean product.
pub fn is_primitive_by_powers(g: &DiGraph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return false;
    }
    let a = bool_matrix(&g.adjacency_matrix());
    let bound = wielandt_bound(n);
    let mut p = a.clone();
    for _ in 1..=bound {
        if all_true(&p) {
            return true;
        }
        p = bool_mul(&p, &a);
    }
    all_true(&p)
}

/// The exponent of primitivity: smallest `k` with `A^k > 0` entrywise, or
/// `None` if the matrix is not primitive (no such `k` up to the Wielandt
/// bound).
pub fn primitivity_exponent(g: &DiGraph) -> Option<usize> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let a = bool_matrix(&g.adjacency_matrix());
    let bound = wielandt_bound(n);
    let mut p = a.clone();
    for k in 1..=bound {
        if all_true(&p) {
            return Some(k);
        }
        p = bool_mul(&p, &a);
    }
    if all_true(&p) {
        Some(bound + 1)
    } else {
        None
    }
}

fn bool_matrix(a: &Matrix) -> Vec<Vec<bool>> {
    let n = a.rows();
    (0..n)
        .map(|i| (0..n).map(|j| a[(i, j)] != 0.0).collect())
        .collect()
}

fn bool_mul(a: &[Vec<bool>], b: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let n = a.len();
    let mut out = vec![vec![false; n]; n];
    for i in 0..n {
        for k in 0..n {
            if a[i][k] {
                for j in 0..n {
                    if b[k][j] {
                        out[i][j] = true;
                    }
                }
            }
        }
    }
    out
}

fn all_true(a: &[Vec<bool>]) -> bool {
    a.iter().all(|row| row.iter().all(|&x| x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wielandt_bound_values() {
        assert_eq!(wielandt_bound(0), 0);
        assert_eq!(wielandt_bound(1), 1);
        assert_eq!(wielandt_bound(2), 2);
        assert_eq!(wielandt_bound(5), 17);
    }

    #[test]
    fn cycle_is_not_primitive() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!is_primitive(&g));
        assert!(!is_primitive_by_powers(&g));
        assert_eq!(primitivity_exponent(&g), None);
    }

    #[test]
    fn cycle_with_self_loop_is_primitive() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 0)]);
        assert!(is_primitive(&g));
        assert!(is_primitive_by_powers(&g));
        assert!(primitivity_exponent(&g).is_some());
    }

    #[test]
    fn complete_graph_is_primitive_exponent_small() {
        let mut edges = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                edges.push((i, j));
            }
        }
        let g = DiGraph::from_edges(3, &edges);
        assert!(is_primitive(&g));
        assert_eq!(primitivity_exponent(&g), Some(1));
    }

    #[test]
    fn wielandt_extremal_graph() {
        // The Wielandt graph on n nodes: cycle 0->1->...->n-1->0 plus the
        // chord 0 -> 1 replaced by an extra edge n-2 -> 0. Classic extremal
        // example: cycle of length n plus one cycle of length n-1 — gcd 1.
        let n = 5usize;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((n - 2, 0)); // shortcut creating an (n-1)-cycle
        let g = DiGraph::from_edges(n, &edges);
        assert!(is_primitive(&g));
        let exp = primitivity_exponent(&g).unwrap();
        // Wielandt: exponent equals (n-1)^2 + 1 = 17 for n = 5.
        assert_eq!(exp, 17);
    }

    #[test]
    fn structural_and_power_checks_agree_on_small_graphs() {
        // Exhaustive over all 3-node graphs (2^9 adjacency patterns).
        for mask in 0u32..512 {
            let mut edges = Vec::new();
            for bit in 0..9 {
                if mask & (1 << bit) != 0 {
                    edges.push(((bit / 3) as usize, (bit % 3) as usize));
                }
            }
            let g = DiGraph::from_edges(3, &edges);
            assert_eq!(
                is_primitive(&g),
                is_primitive_by_powers(&g),
                "disagreement on mask {mask:#b}"
            );
        }
    }

    #[test]
    fn empty_and_single_node() {
        assert!(!is_primitive(&DiGraph::new(0)));
        assert!(!is_primitive(&DiGraph::new(1)));
        let loop1 = DiGraph::from_edges(1, &[(0, 0)]);
        assert!(is_primitive(&loop1));
        assert_eq!(primitivity_exponent(&loop1), Some(1));
    }
}
