//! Tarjan's strongly connected components.

use crate::digraph::{DiGraph, NodeId};

/// The strongly connected components of a directed graph.
///
/// Components are emitted in **reverse topological order** of the
/// condensation (a property of Tarjan's algorithm): if component `A` has an
/// edge into component `B`, then `B` appears before `A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StronglyConnectedComponents {
    /// `components[c]` lists the nodes of component `c`.
    components: Vec<Vec<NodeId>>,
    /// `assignment[v]` is the component index of node `v`.
    assignment: Vec<usize>,
}

impl StronglyConnectedComponents {
    /// Computes the SCCs of `g` with an iterative Tarjan algorithm (no
    /// recursion, so deep graphs cannot overflow the stack).
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.node_count();
        const UNVISITED: usize = usize::MAX;

        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_index = 0usize;

        let mut components: Vec<Vec<NodeId>> = Vec::new();
        let mut assignment = vec![0usize; n];

        // Explicit DFS stack: (node, next out-edge offset to try).
        let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            call_stack.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut edge_i)) = call_stack.last_mut() {
                if *edge_i < g.out_degree(v) {
                    let (_, w) = g.out_edges(v)[*edge_i];
                    *edge_i += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        // v is the root of an SCC: pop it off the Tarjan stack.
                        let comp_id = components.len();
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            assignment[w] = comp_id;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        components.push(comp);
                    }
                }
            }
        }

        StronglyConnectedComponents {
            components,
            assignment,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.components.len()
    }

    /// Nodes of component `c`, sorted ascending.
    pub fn component(&self, c: usize) -> &[NodeId] {
        &self.components[c]
    }

    /// All components (reverse topological order of the condensation).
    pub fn components(&self) -> &[Vec<NodeId>] {
        &self.components
    }

    /// The component index of node `v`.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.assignment[v]
    }

    /// Whether nodes `u` and `v` lie in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.assignment[u] == self.assignment[v]
    }

    /// Whether the whole graph is a single strongly connected component.
    pub fn is_single(&self) -> bool {
        self.components.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.component(0), &[0, 1, 2]);
        assert!(scc.is_single());
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.count(), 3);
        for c in 0..3 {
            assert_eq!(scc.component(c).len(), 1);
        }
    }

    #[test]
    fn two_cycles_connected_by_bridge() {
        // 0 <-> 1 and 2 <-> 3, bridge 1 -> 2.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.count(), 2);
        assert!(scc.same_component(0, 1));
        assert!(scc.same_component(2, 3));
        assert!(!scc.same_component(0, 2));
        // Reverse topological order: {2,3} (the sink) must come first.
        assert_eq!(scc.component(0), &[2, 3]);
        assert_eq!(scc.component(1), &[0, 1]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let g = DiGraph::from_edges(2, &[(0, 0)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.count(), 2);
        assert!(!scc.same_component(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.count(), 0);
        assert!(scc.is_single()); // vacuously
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // 100_000-node path: a recursive Tarjan would blow the stack.
        let n = 100_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, &edges);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.count(), n);
    }

    #[test]
    fn component_assignment_consistent_with_lists() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2)]);
        let scc = StronglyConnectedComponents::compute(&g);
        for (c, comp) in scc.components().iter().enumerate() {
            for &v in comp {
                assert_eq!(scc.component_of(v), c);
            }
        }
    }
}
