//! Random directed-graph generators, for stress-testing the structural
//! checkers and sizing benchmark inputs.

use crate::digraph::DiGraph;
use eqimpact_stats::SimRng;

/// Erdős-Rényi digraph `G(n, p)`: every ordered pair (including self-loops)
/// carries an edge independently with probability `p`.
///
/// # Panics
/// Panics for `p` outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut SimRng) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "erdos_renyi: p outside [0,1]");
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if rng.bernoulli(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random strongly connected digraph: a Hamiltonian cycle through a
/// random permutation plus `extra_edges` random chords.
///
/// # Panics
/// Panics for `n == 0`.
pub fn random_strongly_connected(n: usize, extra_edges: usize, rng: &mut SimRng) -> DiGraph {
    assert!(n > 0, "random_strongly_connected: empty graph");
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge(order[i], order[(i + 1) % n]);
    }
    for _ in 0..extra_edges {
        let u = rng.index(n);
        let v = rng.index(n);
        g.add_edge(u, v);
    }
    g
}

/// A random DAG: edges only from lower to higher indices of a random
/// topological order, each present with probability `p`.
///
/// # Panics
/// Panics for `p` outside `[0, 1]`.
pub fn random_dag(n: usize, p: f64, rng: &mut SimRng) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "random_dag: p outside [0,1]");
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.bernoulli(p) {
                g.add_edge(order[i], order[j]);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::StronglyConnectedComponents;

    #[test]
    fn erdos_renyi_edge_density() {
        let mut rng = SimRng::new(1);
        let n = 60;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng);
        assert_eq!(g.node_count(), n);
        let expected = (n * n) as f64 * p;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 4.0 * expected.sqrt(),
            "edges = {actual}, expected ~{expected}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SimRng::new(2);
        assert_eq!(erdos_renyi(5, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(5, 1.0, &mut rng).edge_count(), 25);
    }

    #[test]
    fn random_strongly_connected_is_strongly_connected() {
        let mut rng = SimRng::new(3);
        for n in [1usize, 2, 7, 30] {
            for extra in [0usize, 5] {
                let g = random_strongly_connected(n, extra, &mut rng);
                assert!(g.is_strongly_connected(), "n = {n}, extra = {extra}");
                assert_eq!(g.edge_count(), n + extra);
            }
        }
    }

    #[test]
    fn random_dag_has_no_cycles() {
        let mut rng = SimRng::new(4);
        for _ in 0..10 {
            let g = random_dag(15, 0.3, &mut rng);
            let scc = StronglyConnectedComponents::compute(&g);
            assert_eq!(scc.count(), 15, "a DAG has only singleton SCCs");
            for (u, v) in g.edges() {
                assert_ne!(u, v, "self-loop in DAG");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi(10, 0.4, &mut SimRng::new(9));
        let b = erdos_renyi(10, 0.4, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_probability() {
        erdos_renyi(3, 1.5, &mut SimRng::new(0));
    }
}
