//! Directed multigraph with adjacency-list storage.

use eqimpact_linalg::Matrix;

/// Identifier of a node (vertex) — a dense index in `0..node_count`.
pub type NodeId = usize;

/// Identifier of an edge — a dense index in `0..edge_count`.
pub type EdgeId = usize;

/// A directed multigraph.
///
/// Vertices are dense indices; parallel edges and self-loops are allowed,
/// matching the *multi*graph of a Markov system where several maps `w_e`
/// can share the same initial and terminal vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    /// `out[u]` lists `(edge_id, v)` for every edge `u -> v`.
    out: Vec<Vec<(EdgeId, NodeId)>>,
    /// `inc[v]` lists `(edge_id, u)` for every edge `u -> v`.
    inc: Vec<Vec<(EdgeId, NodeId)>>,
    /// `edges[e] = (u, v)`.
    edges: Vec<(NodeId, NodeId)>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list over `n` nodes.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds a graph from a boolean adjacency matrix (`a[i][j] != 0` means
    /// an edge `i -> j`).
    pub fn from_adjacency(a: &Matrix) -> Self {
        assert!(a.is_square(), "adjacency matrix must be square");
        let n = a.rows();
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for j in 0..n {
                if a[(i, j)] != 0.0 {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges (counting multiplicities).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an edge `u -> v`, returning its id.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        let n = self.node_count();
        assert!(u < n && v < n, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push((u, v));
        self.out[u].push((id, v));
        self.inc[v].push((id, u));
        id
    }

    /// Appends a fresh node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.out.len() - 1
    }

    /// Endpoints `(u, v)` of edge `e`.
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Outgoing `(edge, target)` pairs of `u`.
    pub fn out_edges(&self, u: NodeId) -> &[(EdgeId, NodeId)] {
        &self.out[u]
    }

    /// Incoming `(edge, source)` pairs of `v`.
    pub fn in_edges(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        &self.inc[v]
    }

    /// Out-degree of `u` (with multiplicities).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out[u].len()
    }

    /// In-degree of `v` (with multiplicities).
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v].len()
    }

    /// Returns `true` if there is at least one edge `u -> v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out[u].iter().any(|&(_, w)| w == v)
    }

    /// Iterator over all edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// 0/1 adjacency matrix (parallel edges collapse to 1).
    pub fn adjacency_matrix(&self) -> Matrix {
        let n = self.node_count();
        let mut m = Matrix::zeros(n, n);
        for &(u, v) in &self.edges {
            m[(u, v)] = 1.0;
        }
        m
    }

    /// Adjacency matrix with multiplicities (entry = number of parallel
    /// edges).
    pub fn multiplicity_matrix(&self) -> Matrix {
        let n = self.node_count();
        let mut m = Matrix::zeros(n, n);
        for &(u, v) in &self.edges {
            m[(u, v)] += 1.0;
        }
        m
    }

    /// Graph with all edges reversed.
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new(self.node_count());
        for &(u, v) in &self.edges {
            g.add_edge(v, u);
        }
        g
    }

    /// Nodes reachable from `start` (including `start`), via BFS.
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        if start >= n {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &(_, v) in &self.out[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Whether every node is reachable from every other (irreducibility).
    ///
    /// The empty graph is vacuously strongly connected; a single node with
    /// no edges is strongly connected.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        self.reachable_from(0).iter().all(|&r| r)
            && self.reversed().reachable_from(0).iter().all(|&r| r)
    }

    /// The period of the graph (gcd of all cycle lengths), or `None` when
    /// the graph has no cycle or is not strongly connected.
    ///
    /// Delegates to [`crate::period::period`].
    pub fn period(&self) -> Option<u64> {
        crate::period::period(self)
    }

    /// Whether the graph is aperiodic (strongly connected with period 1).
    pub fn is_aperiodic(&self) -> bool {
        self.period() == Some(1)
    }

    /// Whether the adjacency matrix is primitive (some power is entrywise
    /// positive) — equivalently, strongly connected and aperiodic.
    ///
    /// Delegates to [`crate::primitivity::is_primitive`].
    pub fn is_primitive(&self) -> bool {
        crate::primitivity::is_primitive(self)
    }

    /// GraphViz DOT rendering, for debugging and documentation.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph G {\n");
        for u in 0..self.node_count() {
            s.push_str(&format!("  {u};\n"));
        }
        for &(u, v) in &self.edges {
            s.push_str(&format!("  {u} -> {v};\n"));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_degrees() {
        let mut g = DiGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        let e2 = g.add_edge(0, 1); // parallel edge
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(e0), (0, 1));
        assert_eq!(g.edge(e1), (1, 2));
        assert_eq!(g.edge(e2), (0, 1));
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = DiGraph::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_matrices() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        let a = g.adjacency_matrix();
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(1, 0)], 1.0);
        assert_eq!(a[(0, 0)], 0.0);
        let m = g.multiplicity_matrix();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 1.0);
    }

    #[test]
    fn from_adjacency_roundtrip() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let g = DiGraph::from_adjacency(&a);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 1));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.adjacency_matrix(), a);
    }

    #[test]
    fn reversal() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert!(!r.has_edge(0, 1));
    }

    #[test]
    fn reachability() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let r = g.reachable_from(0);
        assert_eq!(r, vec![true, true, true, false]);
        let r2 = g.reachable_from(3);
        assert_eq!(r2, vec![false, false, false, true]);
    }

    #[test]
    fn strong_connectivity() {
        assert!(DiGraph::new(0).is_strongly_connected());
        assert!(DiGraph::new(1).is_strongly_connected());
        let cycle = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(cycle.is_strongly_connected());
        let path = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!path.is_strongly_connected());
    }

    #[test]
    fn dot_output() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("0 -> 1"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 1);
    }
}
