//! Directed-graph analysis for Markov systems.
//!
//! The ergodicity guarantees of the paper (Sec. VI and Appendix) are phrased
//! in terms of the directed (multi)graph underlying a Markov system:
//!
//! * an **invariant measure exists** when the graph is strongly connected
//!   (irreducible), and
//! * the invariant measure is **attractive** — the loop uniquely ergodic —
//!   when the adjacency matrix is additionally **primitive** (irreducible
//!   and aperiodic).
//!
//! This crate implements the graph machinery needed to check those
//! conditions: [`DiGraph`] with multi-edge support, Tarjan strongly
//! connected components ([`scc`]), graph period / aperiodicity ([`period`]),
//! primitivity of the adjacency matrix ([`primitivity`]), and condensation.
//!
//! # Example
//!
//! ```
//! use eqimpact_graph::DiGraph;
//!
//! // A 2-cycle is irreducible but periodic (period 2): an invariant
//! // measure exists but is not attractive.
//! let mut g = DiGraph::new(2);
//! g.add_edge(0, 1);
//! g.add_edge(1, 0);
//! assert!(g.is_strongly_connected());
//! assert_eq!(g.period(), Some(2));
//! assert!(!g.is_primitive());
//!
//! // Adding a self-loop makes it aperiodic, hence primitive.
//! g.add_edge(0, 0);
//! assert!(g.is_primitive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condensation;
pub mod digraph;
pub mod period;
pub mod primitivity;
pub mod random;
pub mod scc;

pub use condensation::Condensation;
pub use digraph::{DiGraph, EdgeId, NodeId};
pub use scc::StronglyConnectedComponents;
