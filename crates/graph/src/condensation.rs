//! Condensation of a directed graph onto its strongly connected components.
//!
//! The condensation is always a DAG. For Markov-system analysis it exposes
//! *which* parts of the state space are recurrent (sink components) versus
//! transient — only sink components can carry invariant measures.

use crate::digraph::DiGraph;
use crate::scc::StronglyConnectedComponents;

/// The condensation DAG of a directed graph.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// The underlying SCC decomposition.
    scc: StronglyConnectedComponents,
    /// The condensed graph: one node per SCC, deduplicated edges.
    dag: DiGraph,
}

impl Condensation {
    /// Computes the condensation of `g`.
    pub fn compute(g: &DiGraph) -> Self {
        let scc = StronglyConnectedComponents::compute(g);
        let k = scc.count();
        let mut dag = DiGraph::new(k);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            let cu = scc.component_of(u);
            let cv = scc.component_of(v);
            if cu != cv && seen.insert((cu, cv)) {
                dag.add_edge(cu, cv);
            }
        }
        Condensation { scc, dag }
    }

    /// The SCC decomposition underlying this condensation.
    pub fn scc(&self) -> &StronglyConnectedComponents {
        &self.scc
    }

    /// The condensed DAG (one node per component).
    pub fn dag(&self) -> &DiGraph {
        &self.dag
    }

    /// Indices of sink components (no outgoing edges in the condensation).
    ///
    /// These are the recurrent classes of a Markov system: trajectories
    /// eventually enter a sink component and stay.
    pub fn sink_components(&self) -> Vec<usize> {
        (0..self.dag.node_count())
            .filter(|&c| self.dag.out_degree(c) == 0)
            .collect()
    }

    /// Indices of source components (no incoming edges).
    pub fn source_components(&self) -> Vec<usize> {
        (0..self.dag.node_count())
            .filter(|&c| self.dag.in_degree(c) == 0)
            .collect()
    }

    /// Whether the original graph had a unique recurrent class — a
    /// necessary condition for a *unique* invariant measure.
    pub fn has_unique_sink(&self) -> bool {
        self.sink_components().len() == 1
    }

    /// A topological order of the component DAG.
    ///
    /// Tarjan emits components in reverse topological order, so reversing
    /// the index sequence suffices.
    pub fn topological_order(&self) -> Vec<usize> {
        (0..self.dag.node_count()).rev().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensation_of_two_cycles() {
        // {0,1} -> {2,3}
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let c = Condensation::compute(&g);
        assert_eq!(c.dag().node_count(), 2);
        assert_eq!(c.dag().edge_count(), 1);
        assert!(c.has_unique_sink());
        let sink = c.sink_components()[0];
        // The sink component must contain nodes 2 and 3.
        assert_eq!(c.scc().component(sink), &[2, 3]);
    }

    #[test]
    fn condensation_is_acyclic() {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (2, 3),
                (3, 2),
                (4, 5),
                (5, 4),
                (0, 2),
                (2, 4),
            ],
        );
        let c = Condensation::compute(&g);
        // A DAG has no strongly connected component of size > 1.
        let inner = StronglyConnectedComponents::compute(c.dag());
        for i in 0..inner.count() {
            assert_eq!(inner.component(i).len(), 1);
        }
    }

    #[test]
    fn parallel_edges_deduplicated() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (0, 2), (1, 2)]);
        let c = Condensation::compute(&g);
        assert_eq!(c.dag().node_count(), 2);
        assert_eq!(c.dag().edge_count(), 1);
    }

    #[test]
    fn multiple_sinks_detected() {
        // 0 -> 1, 0 -> 2, both 1 and 2 terminal.
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let c = Condensation::compute(&g);
        assert_eq!(c.sink_components().len(), 2);
        assert!(!c.has_unique_sink());
        assert_eq!(c.source_components().len(), 1);
    }

    #[test]
    fn strongly_connected_graph_condenses_to_point() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = Condensation::compute(&g);
        assert_eq!(c.dag().node_count(), 1);
        assert_eq!(c.dag().edge_count(), 0);
        assert!(c.has_unique_sink());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = Condensation::compute(&g);
        let order = c.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (idx, &comp) in order.iter().enumerate() {
                p[comp] = idx;
            }
            p
        };
        for (u, v) in c.dag().edges() {
            assert!(pos[u] < pos[v], "edge {u}->{v} violates topological order");
        }
    }
}
