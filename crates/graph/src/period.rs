//! Graph period (index of imprimitivity) and aperiodicity.
//!
//! For a strongly connected directed graph, the *period* is the greatest
//! common divisor of the lengths of all its cycles. A strongly connected
//! graph with period 1 is *aperiodic*; combined with irreducibility this is
//! exactly primitivity of the adjacency matrix, which is what the paper's
//! Sec. VI requires for the invariant measure to be **attractive**.

use crate::digraph::{DiGraph, NodeId};

/// Computes the period of a strongly connected graph: the gcd of all cycle
/// lengths.
///
/// Returns `None` when the graph is not strongly connected or has no cycle
/// (in particular for graphs with 0 nodes, or 1 node without a self-loop),
/// because the period is then undefined for our purposes.
///
/// Uses the BFS-level technique: fix a root, BFS assigning levels, and take
/// the gcd of `level(u) + 1 - level(v)` over all edges `u -> v`.
pub fn period(g: &DiGraph) -> Option<u64> {
    let n = g.node_count();
    if n == 0 || !g.is_strongly_connected() {
        return None;
    }
    if g.edge_count() == 0 {
        // A single node with no self-loop has no cycles.
        return None;
    }

    let root: NodeId = 0;
    let mut level = vec![i64::MIN; n];
    level[root] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    let mut g_acc: u64 = 0;

    while let Some(u) = queue.pop_front() {
        for &(_, v) in g.out_edges(u) {
            if level[v] == i64::MIN {
                level[v] = level[u] + 1;
                queue.push_back(v);
            } else {
                // gcd(x, 0) = x, so zero differences are no-ops and skipped.
                let diff = (level[u] + 1 - level[v]).unsigned_abs();
                if diff != 0 {
                    g_acc = gcd(g_acc, diff);
                }
            }
        }
    }

    if g_acc == 0 {
        // All edges advanced the BFS frontier (tree edges only) — cannot
        // happen for a strongly connected graph with a cycle, except n == 1
        // with a self-loop handled below.
        if n == 1 && g.edge_count() > 0 {
            return Some(1);
        }
        return None;
    }
    Some(g_acc)
}

/// Whether the graph is aperiodic: strongly connected with period 1.
pub fn is_aperiodic(g: &DiGraph) -> bool {
    period(g) == Some(1)
}

fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_period_equals_length() {
        for len in 2..8usize {
            let edges: Vec<(usize, usize)> = (0..len).map(|i| (i, (i + 1) % len)).collect();
            let g = DiGraph::from_edges(len, &edges);
            assert_eq!(period(&g), Some(len as u64), "cycle of length {len}");
        }
    }

    #[test]
    fn self_loop_period_one() {
        let g = DiGraph::from_edges(1, &[(0, 0)]);
        assert_eq!(period(&g), Some(1));
        assert!(is_aperiodic(&g));
    }

    #[test]
    fn two_cycles_gcd() {
        // Cycles of length 2 and 3 sharing node 0: gcd(2, 3) = 1.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(period(&g), Some(1));
    }

    #[test]
    fn two_even_cycles_gcd_two() {
        // Cycles of length 2 and 4 sharing node 0: gcd(2, 4) = 2.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 0), (0, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(period(&g), Some(2));
        assert!(!is_aperiodic(&g));
    }

    #[test]
    fn cycle_with_self_loop_is_aperiodic() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (1, 1)]);
        assert_eq!(period(&g), Some(1));
    }

    #[test]
    fn undefined_for_non_strongly_connected() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(period(&g), None);
        assert!(!is_aperiodic(&g));
    }

    #[test]
    fn undefined_for_acyclic_single_node() {
        let g = DiGraph::new(1);
        assert_eq!(period(&g), None);
    }

    #[test]
    fn undefined_for_empty_graph() {
        let g = DiGraph::new(0);
        assert_eq!(period(&g), None);
    }

    #[test]
    fn bipartite_like_period_two() {
        // Complete bipartite orientation: {0,1} <-> {2,3}; all cycles even.
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 2),
                (2, 0),
                (0, 3),
                (3, 0),
                (1, 2),
                (2, 1),
                (1, 3),
                (3, 1),
            ],
        );
        assert_eq!(period(&g), Some(2));
    }
}
