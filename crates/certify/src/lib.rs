//! # eqimpact-certify — the certification plane
//!
//! The paper's long-term-impact claims rest on theorem preconditions —
//! ergodicity, contractivity, input-to-state stability — that the theory
//! crates encode but nothing exercised against real runs. This crate
//! closes the loop: it turns a directory of recorded EQTRACE1 traces into
//! a per-scenario **certification verdict artifact** stating which
//! preconditions the scenario's own empirical dynamics satisfy.
//!
//! Three layers:
//!
//! 1. **Extraction** ([`extract`]) streams each trace once, discretizing
//!    the per-user filter state into an empirical transition matrix plus
//!    sampled trajectories, checkpoint-to-checkpoint model states, and a
//!    streaming filter-channel regression — bounded memory, the full
//!    record is never materialized.
//! 2. **Analysis** ([`checks`]) runs the existing theory passes over the
//!    extracted structure: `graph::primitivity` on the transition support
//!    digraph, `markov::ergodic::analyze` + `empirical_equal_impact` on
//!    the embedded chain, `contractivity::estimate_contraction_factor`
//!    and `lyapunov_exponent` on the fitted checkpoint dynamics, and
//!    `control::iss::estimate_iss` on the filter channel. Each pass
//!    yields a named [`Check`] with a [`Verdict`]
//!    (certified / refuted / inconclusive), evidence numbers, and the
//!    theorem precondition it tests.
//! 3. **Reporting** ([`report`], [`engine`]) fans the per-trace cells
//!    through the shared `WorkerPool`/`ThreadBudget` machinery and
//!    renders a deterministic [`CertificateReport`] (JSON + aligned
//!    text), byte-identical across runs and thread counts.
//!
//! Workload crates opt in by implementing [`CertifyTarget`] and
//! registering in the bench registry's `certifies()` table, which gives
//! them the `experiments certify <scenario>` CLI path for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod engine;
pub mod extract;
pub mod report;

pub use checks::{Check, Verdict};
pub use engine::{certificate_of, certify_trace, run_certification, CertifyConfig, CertifyError};
pub use extract::{extract, Extraction, ExtractionSpec};
pub use report::{CertificateReport, TraceCertificate};

/// A scenario that can be certified from its recorded traces: names the
/// scenario and states how its traces map onto the certification state
/// space.
pub trait CertifyTarget: Sync {
    /// Registry name of the scenario (matches its tracer registration).
    fn name(&self) -> &'static str;

    /// How to extract the certification structure from this scenario's
    /// traces.
    fn spec(&self) -> ExtractionSpec;
}
