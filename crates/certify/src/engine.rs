//! The certification engine: fans per-trace extraction + analysis cells
//! through the shared [`WorkerPool`]/[`ThreadBudget`] machinery with the
//! same determinism contract as the sweep engine — one budget lease for
//! the whole batch, per-cell RNG derived only from `(seed, cell index)`,
//! panics caught per cell, and sequential index-ordered aggregation. The
//! report is byte-identical at any thread count.

use crate::checks::analyze_extraction;
use crate::extract::{extract, Extraction};
use crate::report::{CertificateReport, TraceCertificate};
use crate::CertifyTarget;
use eqimpact_core::pool::{PoolJob, ThreadBudget, WorkerPool};
use eqimpact_lab::sweep::TraceSource;
use eqimpact_stats::SimRng;
use eqimpact_telemetry::metrics as tm;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tunables of a certification run.
#[derive(Debug, Clone)]
pub struct CertifyConfig {
    /// Base seed; every random sweep in the analysis derives from it.
    pub seed: u64,
    /// Pair budget of each contractivity estimation sweep.
    pub contraction_pairs: usize,
    /// Steps of each empirical equal-impact Cesàro trajectory.
    pub equal_impact_steps: usize,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            seed: 42,
            contraction_pairs: 400,
            equal_impact_steps: 2000,
        }
    }
}

/// Errors from a certification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// No traces were provided.
    NoTraces,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::NoTraces => write!(f, "no traces to certify"),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Extracts and analyzes one trace, producing its certificate. The `rng`
/// must derive only from `(seed, trace index)` for report determinism.
pub fn certify_trace(
    target: &dyn CertifyTarget,
    trace: &dyn TraceSource,
    config: &CertifyConfig,
    rng: &SimRng,
) -> Result<TraceCertificate, String> {
    let spec = target.spec();
    let mut reader = trace
        .open()
        .map_err(|e| format!("{}: {e}", trace.label()))?;
    let ex = extract(&spec, reader.as_mut()).map_err(|e| format!("{}: {e}", trace.label()))?;
    Ok(certificate_of(trace.label(), &ex, config, rng))
}

/// Analyzes an already-extracted structure into a certificate (the split
/// entry point the perf harness times separately from extraction).
pub fn certificate_of(
    label: &str,
    ex: &Extraction,
    config: &CertifyConfig,
    rng: &SimRng,
) -> TraceCertificate {
    let checks = analyze_extraction(ex, config, rng);
    TraceCertificate {
        trace: label.to_string(),
        variant: ex.header.variant.clone(),
        trial: ex.header.trial,
        steps: ex.steps,
        users: ex.users,
        states: ex.occupied_states(),
        transitions: ex.transition_count(),
        checkpoints: ex.checkpoints.len(),
        checks,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Runs the certification: every trace becomes one pool cell, the cells
/// share one [`ThreadBudget`] lease, and the certificates aggregate in
/// trace order. See the module docs for the determinism contract.
pub fn run_certification(
    target: &dyn CertifyTarget,
    traces: &[&dyn TraceSource],
    config: &CertifyConfig,
    budget: &ThreadBudget,
) -> Result<CertificateReport, CertifyError> {
    if traces.is_empty() {
        return Err(CertifyError::NoTraces);
    }
    let mut results: Vec<Option<Result<TraceCertificate, String>>> =
        (0..traces.len()).map(|_| None).collect();

    // One lease for the whole batch; zero extra lanes degrades to running
    // every cell inline on this thread with identical results.
    eqimpact_telemetry::progress::add_goal(traces.len() as u64);
    let lease = budget.lease(traces.len());
    let mut pool = WorkerPool::new(lease.extra());
    let jobs: Vec<PoolJob> = results
        .iter_mut()
        .enumerate()
        .map(|(index, slot)| {
            let trace = traces[index];
            Box::new(move || {
                let rng = SimRng::new(config.seed).split(index as u64);
                let outcome = {
                    let _cell = tm::CERTIFY_CELLS.enter();
                    catch_unwind(AssertUnwindSafe(|| {
                        certify_trace(target, trace, config, &rng)
                    }))
                };
                *slot = Some(match outcome {
                    Ok(result) => {
                        if result.is_err() {
                            tm::CERTIFY_CELL_ERRORS.incr();
                        }
                        result
                    }
                    Err(payload) => {
                        tm::CERTIFY_CELL_ERRORS.incr();
                        Err(format!(
                            "{}: certification panicked: {}",
                            trace.label(),
                            panic_message(payload.as_ref())
                        ))
                    }
                });
            }) as PoolJob
        })
        .collect();
    pool.run(jobs);
    drop(pool);
    drop(lease);

    let mut report = CertificateReport {
        scenario: target.name().to_string(),
        seed: config.seed,
        certificates: Vec::new(),
        errors: Vec::new(),
        overall: Vec::new(),
    };
    for slot in &mut results {
        match slot.take() {
            Some(Ok(cert)) => report.certificates.push(cert),
            Some(Err(e)) => report.errors.push(e),
            None => report.errors.push("cell was never scheduled".to_string()),
        }
    }
    report.combine_overall();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::ExtractionSpec;
    use eqimpact_lab::sweep::MemTrace;

    struct Synthetic;

    impl CertifyTarget for Synthetic {
        fn name(&self) -> &'static str {
            "synthetic"
        }
        fn spec(&self) -> ExtractionSpec {
            ExtractionSpec {
                state_lo: 0.0,
                state_hi: 1.0,
                bins: 4,
                threshold: 0.0,
                model_fields: &["model.w"],
                sampled_trajectories: 2,
            }
        }
    }

    fn trace_bytes(seed: u64) -> Vec<u8> {
        use eqimpact_core::checkpoint::ModelCheckpoint;
        use eqimpact_core::recorder::RecordPolicy;
        use eqimpact_core::scenario::{Scale, TraceMeta};
        use eqimpact_core::FeatureMatrix;
        use eqimpact_trace::{TraceHeader, TraceWriter};

        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: "synthetic".to_string(),
            variant: "mixing".to_string(),
            trial: seed as usize,
            scale: Scale::Quick,
            seed,
            shards: 1,
            delay: 0,
            policy: RecordPolicy::Full,
        })
        .with_checkpoints();
        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, &header).unwrap();
        let mut rng = SimRng::new(seed);
        let users = 30usize;
        let mut state: Vec<f64> = (0..users).map(|_| rng.uniform()).collect();
        let mut w = vec![0.3f64, 0.1];
        for step in 0..40usize {
            for x in &mut state {
                *x = (0.5 + 0.6 * (*x - 0.5) + 0.35 * (rng.uniform() - 0.5)).clamp(0.0, 1.0);
            }
            let signals: Vec<f64> = state.iter().map(|&x| x - 0.5).collect();
            let actions: Vec<f64> = state.iter().map(|&x| 0.5 - x).collect();
            let visible = FeatureMatrix::from_nested(&vec![vec![0.0]; users]);
            writer
                .write_step(&visible, &signals, &actions, &state)
                .unwrap();
            for wi in &mut w {
                *wi = 0.8 * *wi + 0.01;
            }
            let mut cp = ModelCheckpoint::new();
            cp.reset(step);
            cp.push_field("model.w", &w);
            writer.write_checkpoint(&cp).unwrap();
        }
        writer.finish().unwrap();
        buf
    }

    #[test]
    fn no_traces_is_an_error() {
        let budget = ThreadBudget::new(1);
        let err = run_certification(&Synthetic, &[], &CertifyConfig::default(), &budget);
        assert_eq!(err.unwrap_err(), CertifyError::NoTraces);
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let t0 = MemTrace::new("synthetic-000", trace_bytes(3));
        let t1 = MemTrace::new("synthetic-001", trace_bytes(4));
        let t2 = MemTrace::new("synthetic-002", trace_bytes(5));
        let traces: Vec<&dyn TraceSource> = vec![&t0, &t1, &t2];
        let config = CertifyConfig::default();
        let serial_budget = ThreadBudget::new(1);
        let parallel_budget = ThreadBudget::new(4);
        let serial = run_certification(&Synthetic, &traces, &config, &serial_budget).unwrap();
        let parallel = run_certification(&Synthetic, &traces, &config, &parallel_budget).unwrap();
        assert_eq!(
            serial.to_json().render_pretty(),
            parallel.to_json().render_pretty()
        );
        assert_eq!(serial.render_text(), parallel.render_text());
        assert_eq!(serial.certificates.len(), 3);
        assert!(serial.errors.is_empty());
        assert_eq!(serial.overall.len(), 5);
    }

    #[test]
    fn corrupt_traces_become_errors_not_panics() {
        let good = MemTrace::new("synthetic-000", trace_bytes(3));
        let bad = MemTrace::new("synthetic-001", vec![0u8; 16]);
        let traces: Vec<&dyn TraceSource> = vec![&good, &bad];
        let budget = ThreadBudget::new(2);
        let report =
            run_certification(&Synthetic, &traces, &CertifyConfig::default(), &budget).unwrap();
        assert_eq!(report.certificates.len(), 1);
        assert_eq!(report.errors.len(), 1);
        assert!(
            report.errors[0].contains("synthetic-001"),
            "{:?}",
            report.errors
        );
    }
}
