//! Layer 3 of the certification plane: the verdict artifact.
//!
//! A [`CertificateReport`] is a first-class artifact: the JSON and text
//! renderings are byte-identical across runs and thread counts for a
//! fixed seed (the engine guarantees per-trace RNG streams depend only on
//! the seed and the trace's sorted index, and aggregation is sequential).

use crate::checks::{Check, Verdict};
use eqimpact_stats::{Json, ToJson};
use std::fmt::Write as _;

/// The certification of one trace: provenance plus the five checks.
#[derive(Debug, Clone)]
pub struct TraceCertificate {
    /// Display label of the trace (file stem or memory name).
    pub trace: String,
    /// Recorded loop variant.
    pub variant: String,
    /// Recorded trial index.
    pub trial: usize,
    /// Steps streamed from the trace.
    pub steps: usize,
    /// Users per step.
    pub users: usize,
    /// Occupied state bins.
    pub states: usize,
    /// Observed state transitions.
    pub transitions: u64,
    /// Model checkpoints consumed.
    pub checkpoints: usize,
    /// The analysis passes, in fixed order.
    pub checks: Vec<Check>,
}

impl ToJson for TraceCertificate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("trace", Json::Str(self.trace.clone())),
            ("variant", Json::Str(self.variant.clone())),
            ("trial", Json::Num(self.trial as f64)),
            ("steps", Json::Num(self.steps as f64)),
            ("users", Json::Num(self.users as f64)),
            ("states", Json::Num(self.states as f64)),
            ("transitions", Json::Num(self.transitions as f64)),
            ("checkpoints", Json::Num(self.checkpoints as f64)),
            (
                "checks",
                Json::Arr(self.checks.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

/// The per-scenario certification verdict artifact.
#[derive(Debug, Clone)]
pub struct CertificateReport {
    /// Scenario name.
    pub scenario: String,
    /// Analysis seed the verdicts are reproducible under.
    pub seed: u64,
    /// Per-trace certificates, in sorted trace order.
    pub certificates: Vec<TraceCertificate>,
    /// Traces that failed to certify (I/O or decode errors), in sorted
    /// trace order.
    pub errors: Vec<String>,
    /// Per-check verdicts combined across all certified traces: any
    /// refutation refutes, any gap stays inconclusive.
    pub overall: Vec<(&'static str, Verdict)>,
}

impl CertificateReport {
    /// Combines the per-trace checks into the overall per-check verdicts
    /// (call after `certificates` is final).
    pub fn combine_overall(&mut self) {
        let mut overall: Vec<(&'static str, Verdict)> = Vec::new();
        for cert in &self.certificates {
            for check in &cert.checks {
                match overall.iter_mut().find(|(n, _)| *n == check.name) {
                    Some((_, v)) => *v = v.combine(check.verdict),
                    None => overall.push((check.name, check.verdict)),
                }
            }
        }
        self.overall = overall;
    }

    /// Whether every overall check certified (no refutations, no gaps).
    pub fn fully_certified(&self) -> bool {
        !self.overall.is_empty() && self.overall.iter().all(|&(_, v)| v == Verdict::Certified)
    }

    /// The JSON rendering of the artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("traces", Json::Num(self.certificates.len() as f64)),
            (
                "overall",
                Json::Obj(
                    self.overall
                        .iter()
                        .map(|&(n, v)| (n.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "certificates",
                Json::Arr(self.certificates.iter().map(|c| c.to_json()).collect()),
            ),
            (
                "errors",
                Json::Arr(self.errors.iter().map(|e| Json::Str(e.clone())).collect()),
            ),
        ])
    }

    /// The aligned-text rendering of the artifact.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "certification: {} ({} trace{}, seed {})",
            self.scenario,
            self.certificates.len(),
            if self.certificates.len() == 1 {
                ""
            } else {
                "s"
            },
            self.seed
        );
        let _ = writeln!(out, "{:<22} {:>14}", "check", "overall");
        for &(name, verdict) in &self.overall {
            let _ = writeln!(out, "{:<22} {:>14}", name, verdict.label());
        }
        for cert in &self.certificates {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "trace {} (variant {}, trial {}): {} steps x {} users, {} states, {} transitions, {} checkpoints",
                cert.trace,
                cert.variant,
                cert.trial,
                cert.steps,
                cert.users,
                cert.states,
                cert.transitions,
                cert.checkpoints
            );
            for check in &cert.checks {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>14}  {}",
                    check.name,
                    check.verdict.label(),
                    check.detail
                );
                let mut line = String::from("    ");
                for (i, &(k, v)) in check.evidence.iter().enumerate() {
                    if i > 0 {
                        line.push_str("  ");
                    }
                    if v.is_nan() {
                        let _ = write!(line, "{k}=undefined");
                    } else {
                        let _ = write!(line, "{k}={v:.6}");
                    }
                }
                let _ = writeln!(out, "{line}");
            }
        }
        if !self.errors.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "errors:");
            for e in &self.errors {
                let _ = writeln!(out, "  {e}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CertificateReport {
        let check = |name: &'static str, verdict| Check {
            name,
            precondition: "p",
            verdict,
            evidence: vec![("alpha", 0.5), ("beta", f64::NAN)],
            detail: "d".to_string(),
        };
        let mut r = CertificateReport {
            scenario: "credit".to_string(),
            seed: 42,
            certificates: vec![
                TraceCertificate {
                    trace: "credit-000".to_string(),
                    variant: "scorecard".to_string(),
                    trial: 0,
                    steps: 6,
                    users: 90,
                    states: 4,
                    transitions: 450,
                    checkpoints: 6,
                    checks: vec![
                        check("primitivity", Verdict::Certified),
                        check("iss", Verdict::Certified),
                    ],
                },
                TraceCertificate {
                    trace: "credit-001".to_string(),
                    variant: "scorecard".to_string(),
                    trial: 1,
                    steps: 6,
                    users: 90,
                    states: 4,
                    transitions: 450,
                    checkpoints: 6,
                    checks: vec![
                        check("primitivity", Verdict::Inconclusive),
                        check("iss", Verdict::Certified),
                    ],
                },
            ],
            errors: Vec::new(),
            overall: Vec::new(),
        };
        r.combine_overall();
        r
    }

    #[test]
    fn overall_combines_across_traces_in_check_order() {
        let r = report();
        assert_eq!(
            r.overall,
            vec![
                ("primitivity", Verdict::Inconclusive),
                ("iss", Verdict::Certified),
            ]
        );
        assert!(!r.fully_certified());
    }

    #[test]
    fn renderings_are_deterministic_and_show_undefined_evidence() {
        let r = report();
        let j1 = r.to_json().render_pretty();
        let j2 = r.to_json().render_pretty();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"beta\": null"), "{j1}");
        let t = r.render_text();
        assert_eq!(t, r.render_text());
        assert!(t.contains("beta=undefined"));
        assert!(t.contains("primitivity"));
        assert!(t.contains("inconclusive"));
    }
}
