//! Layer 1 of the certification plane: streaming extraction of a
//! scenario's empirical transition structure from one recorded trace.
//!
//! The extractor reads an EQTRACE1 stream frame by frame and folds each
//! step into compact accumulators — a binned per-user state transition
//! matrix (pooled and per group), a handful of sampled state
//! trajectories, the checkpoint-to-checkpoint model-state sequence, and
//! streaming normal equations for the filter channel. Peak memory is
//! `O(users + bins² · groups + checkpoints · model_dim)`; the full
//! record is never materialized.

use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_trace::{StepFrame, TraceError, TraceHeader, TraceReader};
use std::io::Read;

/// How a workload's traces map onto the certification state space: which
/// range the per-user filter channel lives in, how finely to bin it, and
/// which checkpoint fields carry the model state.
#[derive(Debug, Clone)]
pub struct ExtractionSpec {
    /// Inclusive lower bound of the per-user filter-state channel.
    pub state_lo: f64,
    /// Inclusive upper bound of the per-user filter-state channel.
    pub state_hi: f64,
    /// Number of equal-width discretization bins over the state range.
    pub bins: usize,
    /// Positive-decision cutoff on the signal channel.
    pub threshold: f64,
    /// Checkpoint fields (concatenated in order) that form the model
    /// state vector of the checkpoint-dynamics checks.
    pub model_fields: &'static [&'static str],
    /// Number of per-user state trajectories to retain (evenly spaced
    /// user indices).
    pub sampled_trajectories: usize,
}

/// Streaming least-squares accumulator for the scalar filter surrogate
/// `x' ≈ a·x + b·u + c` — normal equations over `(1, x, u)`, so memory
/// is constant no matter how many `(x, u, x')` samples stream through.
#[derive(Debug, Clone, Default)]
pub struct FilterFit {
    /// Number of accumulated samples.
    pub samples: u64,
    // Upper triangle of Σ z zᵀ for z = (1, x, u), plus Σ z x' and the
    // target sums needed for R².
    s_x: f64,
    s_u: f64,
    s_xx: f64,
    s_uu: f64,
    s_xu: f64,
    s_y: f64,
    s_yy: f64,
    s_yx: f64,
    s_yu: f64,
}

/// A fitted filter surrogate `x' = a·x + b·u + c` with its goodness of
/// fit.
#[derive(Debug, Clone, Copy)]
pub struct FilterSurrogate {
    /// State coefficient `a`.
    pub a: f64,
    /// Input coefficient `b`.
    pub b: f64,
    /// Offset `c`.
    pub c: f64,
    /// Coefficient of determination of the fit in `[0, 1]` (1 when the
    /// targets are constant and perfectly reproduced).
    pub r2: f64,
    /// Samples the fit pooled.
    pub samples: u64,
}

impl FilterFit {
    fn push(&mut self, x: f64, u: f64, y: f64) {
        self.samples += 1;
        self.s_x += x;
        self.s_u += u;
        self.s_xx += x * x;
        self.s_uu += u * u;
        self.s_xu += x * u;
        self.s_y += y;
        self.s_yy += y * y;
        self.s_yx += y * x;
        self.s_yu += y * u;
    }

    /// Solves the accumulated normal equations. `None` when fewer than 3
    /// samples were seen or the system is too degenerate to solve even
    /// with a ridge.
    pub fn solve(&self) -> Option<FilterSurrogate> {
        use eqimpact_linalg::cholesky::solve_spd_with_ridge;
        use eqimpact_linalg::{Matrix, Vector};
        if self.samples < 3 {
            return None;
        }
        let n = self.samples as f64;
        let gram = Matrix::from_rows(&[
            &[n, self.s_x, self.s_u],
            &[self.s_x, self.s_xx, self.s_xu],
            &[self.s_u, self.s_xu, self.s_uu],
        ])
        .expect("3x3 gram");
        let rhs = Vector::from_slice(&[self.s_y, self.s_yx, self.s_yu]);
        let (coef, _ridge) = solve_spd_with_ridge(&gram, &rhs, 1e-3).ok()?;
        let (c, a, b) = (coef.as_slice()[0], coef.as_slice()[1], coef.as_slice()[2]);
        // R² from the same sums: SSE = Σy² − 2·coefᵀ(Σzy) + coefᵀG coef.
        let sse = (self.s_yy - 2.0 * (c * self.s_y + a * self.s_yx + b * self.s_yu)
            + c * (c * n + a * self.s_x + b * self.s_u)
            + a * (c * self.s_x + a * self.s_xx + b * self.s_xu)
            + b * (c * self.s_u + a * self.s_xu + b * self.s_uu))
            .max(0.0);
        let sst = (self.s_yy - self.s_y * self.s_y / n).max(0.0);
        let r2 = if sst < 1e-18 {
            1.0
        } else {
            (1.0 - sse / sst).clamp(0.0, 1.0)
        };
        Some(FilterSurrogate {
            a,
            b,
            c,
            r2,
            samples: self.samples,
        })
    }
}

/// The empirical structure of one trace, ready for the analysis passes.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The trace's provenance header.
    pub header: TraceHeader,
    /// The extraction spec the structure was built under.
    pub spec: ExtractionSpec,
    /// Steps streamed.
    pub steps: usize,
    /// Users per step.
    pub users: usize,
    /// Pooled bin→bin transition counts, row-major `bins × bins`.
    pub transitions: Vec<u64>,
    /// Group labels (empty when the trace has no group frame).
    pub group_labels: Vec<String>,
    /// Per-group bin→bin transition counts, one `bins × bins` matrix per
    /// label.
    pub group_transitions: Vec<Vec<u64>>,
    /// Per-group positive-decision counts (signal above threshold).
    pub group_positive: Vec<u64>,
    /// Per-group decision counts (users × steps per group).
    pub group_decisions: Vec<u64>,
    /// State-bin occupancy counts.
    pub occupancy: Vec<u64>,
    /// Sampled per-user state trajectories (one value per step).
    pub trajectories: Vec<Vec<f64>>,
    /// Model-state vectors, one per checkpoint frame whose fields cover
    /// the spec's `model_fields`, in stream order.
    pub checkpoints: Vec<Vec<f64>>,
    /// Streaming filter-channel regression accumulator.
    pub filter_fit: FilterFit,
    /// Observed action (filter input) range.
    pub action_lo: f64,
    /// Observed action (filter input) range.
    pub action_hi: f64,
    /// States that fell outside `[state_lo, state_hi]` and were clamped
    /// to the edge bins.
    pub clamped: u64,
}

impl Extraction {
    /// Total observed state transitions (sum of the pooled matrix).
    pub fn transition_count(&self) -> u64 {
        self.transitions.iter().sum()
    }

    /// Number of state bins that were ever occupied.
    pub fn occupied_states(&self) -> usize {
        self.occupancy.iter().filter(|&&c| c > 0).count()
    }

    /// The bin index of a state value (clamped into range).
    pub fn bin_of(&self, x: f64) -> usize {
        bin_of(x, &self.spec)
    }

    /// The center of bin `b`.
    pub fn bin_center(&self, b: usize) -> f64 {
        let w = (self.spec.state_hi - self.spec.state_lo) / self.spec.bins as f64;
        self.spec.state_lo + (b as f64 + 0.5) * w
    }
}

fn bin_of(x: f64, spec: &ExtractionSpec) -> usize {
    let w = (spec.state_hi - spec.state_lo) / spec.bins as f64;
    let b = ((x - spec.state_lo) / w).floor();
    (b.max(0.0) as usize).min(spec.bins - 1)
}

/// Evenly spaced sample indices: `n` users picked across `0..users`.
fn sample_indices(users: usize, n: usize) -> Vec<usize> {
    if users == 0 || n == 0 {
        return Vec::new();
    }
    let n = n.min(users);
    let mut out: Vec<usize> = (0..n).map(|j| j * (users - 1) / (n - 1).max(1)).collect();
    out.dedup();
    out
}

/// Streams one trace and folds it into an [`Extraction`].
///
/// # Errors
/// Propagates any [`TraceError`] from the underlying stream (corrupt
/// frames, truncation, checksum mismatches).
///
/// # Panics
/// Panics when the spec is degenerate (`bins == 0` or an empty state
/// range) — specs are compiled into `CertifyTarget` implementations, so
/// this is a programming error, not a data error.
pub fn extract(spec: &ExtractionSpec, input: &mut dyn Read) -> Result<Extraction, TraceError> {
    assert!(spec.bins > 0, "extract: zero bins");
    assert!(
        spec.state_lo < spec.state_hi,
        "extract: empty state range [{}, {}]",
        spec.state_lo,
        spec.state_hi
    );
    let mut reader = TraceReader::new(input)?;
    let header = reader.header().clone();
    let groups = reader.groups().cloned();
    let (group_labels, codes): (Vec<String>, Vec<u32>) = match groups {
        Some(g) => (g.labels, g.codes),
        None => (Vec::new(), Vec::new()),
    };
    let bins = spec.bins;
    let mut out = Extraction {
        header,
        spec: spec.clone(),
        steps: 0,
        users: 0,
        transitions: vec![0; bins * bins],
        group_transitions: vec![vec![0; bins * bins]; group_labels.len()],
        group_positive: vec![0; group_labels.len()],
        group_decisions: vec![0; group_labels.len()],
        group_labels,
        occupancy: vec![0; bins],
        trajectories: Vec::new(),
        checkpoints: Vec::new(),
        filter_fit: FilterFit::default(),
        action_lo: f64::INFINITY,
        action_hi: f64::NEG_INFINITY,
        clamped: 0,
    };

    let mut frame = StepFrame::default();
    let mut checkpoint = ModelCheckpoint::new();
    let mut prev_bins: Vec<usize> = Vec::new();
    let mut prev_state: Vec<f64> = Vec::new();
    let mut sampled: Vec<usize> = Vec::new();
    while reader.next_step(&mut frame)? {
        let users = frame.filtered.len();
        if out.steps == 0 {
            out.users = users;
            sampled = sample_indices(users, spec.sampled_trajectories);
            out.trajectories = vec![Vec::new(); sampled.len()];
        }
        for (slot, &i) in sampled.iter().enumerate() {
            if let Some(&x) = frame.filtered.get(i) {
                out.trajectories[slot].push(x);
            }
        }
        for (i, &x) in frame.filtered.iter().enumerate() {
            if x < spec.state_lo || x > spec.state_hi {
                out.clamped += 1;
            }
            let b = bin_of(x, spec);
            out.occupancy[b] += 1;
            if let Some(&pb) = prev_bins.get(i) {
                out.transitions[pb * bins + b] += 1;
                if let Some(&code) = codes.get(i) {
                    if let Some(m) = out.group_transitions.get_mut(code as usize) {
                        m[pb * bins + b] += 1;
                    }
                }
            }
            if let Some(&px) = prev_state.get(i) {
                let u = frame.actions.get(i).copied().unwrap_or(0.0);
                out.filter_fit.push(px, u, x);
            }
        }
        for &u in &frame.actions {
            out.action_lo = out.action_lo.min(u);
            out.action_hi = out.action_hi.max(u);
        }
        for (i, &s) in frame.signals.iter().enumerate() {
            if let Some(&code) = codes.get(i) {
                if let Some(d) = out.group_decisions.get_mut(code as usize) {
                    *d += 1;
                }
                if s > spec.threshold {
                    if let Some(p) = out.group_positive.get_mut(code as usize) {
                        *p += 1;
                    }
                }
            }
        }
        prev_bins.clear();
        prev_bins.extend(frame.filtered.iter().map(|&x| bin_of(x, spec)));
        prev_state.clear();
        prev_state.extend_from_slice(&frame.filtered);
        out.steps += 1;

        while reader.next_checkpoint(&mut checkpoint)? {
            let mut state = Vec::new();
            let mut complete = true;
            for name in spec.model_fields {
                match checkpoint.field(name) {
                    Some(values) => state.extend_from_slice(values),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete && !state.is_empty() {
                out.checkpoints.push(state);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExtractionSpec {
        ExtractionSpec {
            state_lo: 0.0,
            state_hi: 1.0,
            bins: 4,
            threshold: 0.0,
            model_fields: &["model.w"],
            sampled_trajectories: 3,
        }
    }

    #[test]
    fn bins_clamp_out_of_range_states() {
        let s = spec();
        assert_eq!(bin_of(-0.5, &s), 0);
        assert_eq!(bin_of(0.0, &s), 0);
        assert_eq!(bin_of(0.24, &s), 0);
        assert_eq!(bin_of(0.26, &s), 1);
        assert_eq!(bin_of(0.99, &s), 3);
        assert_eq!(bin_of(1.0, &s), 3);
        assert_eq!(bin_of(7.0, &s), 3);
    }

    #[test]
    fn sample_indices_are_evenly_spread_and_deduped() {
        assert_eq!(sample_indices(10, 3), vec![0, 4, 9]);
        assert_eq!(sample_indices(2, 5), vec![0, 1]);
        assert_eq!(sample_indices(1, 4), vec![0]);
        assert!(sample_indices(0, 4).is_empty());
        assert!(sample_indices(10, 0).is_empty());
    }

    #[test]
    fn filter_fit_recovers_a_linear_filter() {
        let mut fit = FilterFit::default();
        // x' = 0.7 x + 0.3 u + 0.05, sampled on a small grid.
        for xi in 0..10 {
            for ui in 0..10 {
                let x = xi as f64 / 10.0;
                let u = ui as f64 / 10.0;
                fit.push(x, u, 0.7 * x + 0.3 * u + 0.05);
            }
        }
        let s = fit.solve().expect("fit solves");
        assert!((s.a - 0.7).abs() < 1e-6, "a = {}", s.a);
        assert!((s.b - 0.3).abs() < 1e-6, "b = {}", s.b);
        assert!((s.c - 0.05).abs() < 1e-6, "c = {}", s.c);
        assert!(s.r2 > 0.999, "r2 = {}", s.r2);
    }

    #[test]
    fn filter_fit_needs_three_samples_and_reports_constant_targets() {
        let mut fit = FilterFit::default();
        fit.push(0.1, 0.2, 0.5);
        fit.push(0.2, 0.1, 0.5);
        assert!(fit.solve().is_none());
        fit.push(0.3, 0.4, 0.5);
        fit.push(0.5, 0.6, 0.5);
        let s = fit.solve().expect("constant targets still solve");
        assert!(s.r2 > 0.99, "constant fit r2 = {}", s.r2);
        assert!(s.a.is_finite() && s.b.is_finite() && s.c.is_finite());
    }
}
