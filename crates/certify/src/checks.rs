//! Layer 2 of the certification plane: the analysis passes.
//!
//! Each pass takes the extracted empirical structure and runs one of the
//! repo's theory crates over it, producing a named [`Check`] that states
//! the theorem precondition it tests, a [`Verdict`], and the evidence
//! numbers behind it. The passes never panic on degenerate extractions —
//! thin traces yield [`Verdict::Inconclusive`], not crashes.

use crate::engine::CertifyConfig;
use crate::extract::Extraction;
use eqimpact_control::iss::estimate_iss;
use eqimpact_graph::{primitivity, DiGraph};
use eqimpact_linalg::cholesky::solve_spd_with_ridge;
use eqimpact_linalg::norm::MetricKind;
use eqimpact_linalg::{Matrix, Vector};
use eqimpact_markov::contractivity::{box_sampler, estimate_contraction_factor};
use eqimpact_markov::ergodic::{self, ErgodicityVerdict};
use eqimpact_markov::lyapunov::lyapunov_exponent;
use eqimpact_markov::MarkovSystem;
use eqimpact_stats::{Json, SimRng, ToJson};

/// Minimum observed transitions before the structural checks commit to a
/// verdict.
pub const MIN_TRANSITIONS: u64 = 10;
/// Initial conditions for the empirical equal-impact test.
const EI_INITIALS: usize = 4;
/// Steps per replica of the Lyapunov sweep.
const LYAP_STEPS: usize = 200;
/// Replicas of the Lyapunov sweep.
const LYAP_REPLICAS: usize = 4;
/// Horizon of the incremental-ISS sweep.
const ISS_HORIZON: usize = 24;
/// Pair budget of the incremental-ISS sweep.
const ISS_PAIRS: usize = 40;
/// Minimum filter-regression samples before the ISS pass runs.
const MIN_FIT_SAMPLES: u64 = 8;
/// Minimum R² before a fitted surrogate is trusted with a verdict.
const MIN_FIT_R2: f64 = 0.25;

/// Outcome of one certification check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The theorem precondition holds on the extracted structure.
    Certified,
    /// The precondition demonstrably fails.
    Refuted,
    /// The trace does not carry enough structure to decide.
    Inconclusive,
}

impl Verdict {
    /// Stable lowercase label used in both JSON and text reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Certified => "certified",
            Verdict::Refuted => "refuted",
            Verdict::Inconclusive => "inconclusive",
        }
    }

    /// Combines verdicts across traces: any refutation refutes, any gap
    /// leaves the overall verdict inconclusive.
    pub fn combine(self, other: Verdict) -> Verdict {
        use Verdict::*;
        match (self, other) {
            (Refuted, _) | (_, Refuted) => Refuted,
            (Inconclusive, _) | (_, Inconclusive) => Inconclusive,
            (Certified, Certified) => Certified,
        }
    }
}

impl ToJson for Verdict {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

/// One named certification check: the theorem precondition it tests, the
/// verdict, and the evidence numbers behind it.
#[derive(Debug, Clone)]
pub struct Check {
    /// Stable check name (e.g. `"primitivity"`).
    pub name: &'static str,
    /// The theorem precondition the check tests.
    pub precondition: &'static str,
    /// The verdict.
    pub verdict: Verdict,
    /// Evidence numbers in a fixed order; non-finite values render as
    /// `"undefined"` / `null`.
    pub evidence: Vec<(&'static str, f64)>,
    /// One-line human explanation of how the evidence led to the verdict.
    pub detail: String,
}

impl ToJson for Check {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.to_string())),
            (
                "precondition".to_string(),
                Json::Str(self.precondition.to_string()),
            ),
            ("verdict".to_string(), self.verdict.to_json()),
            (
                "evidence".to_string(),
                Json::Obj(
                    self.evidence
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::Num(v)))
                        .collect(),
                ),
            ),
            ("detail".to_string(), Json::Str(self.detail.clone())),
        ])
    }
}

fn flag(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// The empirical chain embedded as a Markov system (Werner 2004): each
/// occupied state bin becomes a cell, each observed bin→bin transition an
/// edge with the maximum-likelihood probability and an affine map that
/// shrinks the source bin into the target bin (factor ½, so the embedding
/// is cell-compatible by construction).
pub struct ChainEmbedding {
    /// The embedded system, cells indexed by position in `occupied`.
    pub system: MarkovSystem,
    /// The occupied bin indices backing each cell.
    pub occupied: Vec<usize>,
    /// Occupied bins that had no observed outgoing transition and were
    /// completed with a self-loop (conservative: keeps the system total
    /// without inventing cross-bin dynamics).
    pub dangling: usize,
}

/// Builds the chain embedding, or `None` when no bin was ever occupied.
pub fn build_chain(ex: &Extraction) -> Option<ChainEmbedding> {
    let bins = ex.spec.bins;
    let occupied: Vec<usize> = (0..bins).filter(|&b| ex.occupancy[b] > 0).collect();
    if occupied.is_empty() {
        return None;
    }
    // cell_of[bin] = cell index, or bins for unoccupied bins.
    let mut cell_of = vec![bins; bins];
    for (cell, &b) in occupied.iter().enumerate() {
        cell_of[b] = cell;
    }
    let spec = ex.spec.clone();
    let mut builder = MarkovSystem::builder(1);
    for &b in &occupied {
        let lo = spec.state_lo;
        let w = (spec.state_hi - spec.state_lo) / bins as f64;
        builder = builder.cell(move |x: &[f64]| {
            let raw = ((x[0] - lo) / w).floor();
            (raw.max(0.0) as usize).min(bins - 1) == b
        });
    }
    let mut dangling = 0usize;
    for (ci, &bi) in occupied.iter().enumerate() {
        let row = &ex.transitions[bi * bins..(bi + 1) * bins];
        let row_sum: u64 = row.iter().sum();
        if row_sum == 0 {
            // Never observed leaving this bin: complete with a self-loop.
            dangling += 1;
            let c = ex.bin_center(bi);
            builder = builder.edge(
                ci,
                ci,
                move |x: &[f64]| vec![c + 0.5 * (x[0] - c)],
                |_x: &[f64]| 1.0,
            );
            continue;
        }
        for (bj, &count) in row.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let cj = cell_of[bj];
            let from_center = ex.bin_center(bi);
            let to_center = ex.bin_center(bj);
            let p = count as f64 / row_sum as f64;
            builder = builder.edge(
                ci,
                cj,
                move |x: &[f64]| vec![to_center + 0.5 * (x[0] - from_center)],
                move |_x: &[f64]| p,
            );
        }
    }
    let system = builder.build().ok()?;
    Some(ChainEmbedding {
        system,
        occupied,
        dangling,
    })
}

/// An affine surrogate `w' ≈ A·w + b` of the checkpoint-to-checkpoint
/// model dynamics, fitted by ridge-stabilized least squares.
pub struct ModelSurrogate {
    /// The linear part.
    pub a: Matrix,
    /// The offset.
    pub offset: Vec<f64>,
    /// Pooled coefficient of determination across output dimensions.
    pub r2: f64,
    /// Consecutive checkpoint pairs the fit pooled.
    pub pairs: usize,
}

impl ModelSurrogate {
    /// Applies the surrogate.
    pub fn step(&self, w: &[f64]) -> Vec<f64> {
        let y = self.a.mat_vec(&Vector::from_slice(w));
        y.as_slice()
            .iter()
            .zip(&self.offset)
            .map(|(yi, bi)| yi + bi)
            .collect()
    }
}

/// Fits the affine surrogate from the checkpoint sequence. `None` when
/// fewer than `dim + 1` consecutive same-dimension pairs exist or the
/// normal equations fail even with a ridge.
pub fn fit_model_surrogate(checkpoints: &[Vec<f64>]) -> Option<ModelSurrogate> {
    let dim = checkpoints.first()?.len();
    if dim == 0 {
        return None;
    }
    let pairs: Vec<(&[f64], &[f64])> = checkpoints
        .windows(2)
        .filter(|w| w[0].len() == dim && w[1].len() == dim)
        .map(|w| (w[0].as_slice(), w[1].as_slice()))
        .collect();
    if pairs.len() < dim + 1 {
        return None;
    }
    // Normal equations over z = (w, 1): one (dim+1)² Gram shared by all
    // output rows.
    let zd = dim + 1;
    let mut gram = vec![0.0f64; zd * zd];
    let mut rhs = vec![0.0f64; zd * dim];
    let z_of = |w: &[f64]| -> Vec<f64> {
        let mut z = w.to_vec();
        z.push(1.0);
        z
    };
    for &(w, wn) in &pairs {
        let z = z_of(w);
        for i in 0..zd {
            for j in 0..zd {
                gram[i * zd + j] += z[i] * z[j];
            }
            for (r, &y) in wn.iter().enumerate() {
                rhs[r * zd + i] += z[i] * y;
            }
        }
    }
    let gram = Matrix::from_vec(zd, zd, gram).ok()?;
    let mut a_rows = vec![0.0f64; dim * dim];
    let mut offset = vec![0.0f64; dim];
    for r in 0..dim {
        let b = Vector::from_slice(&rhs[r * zd..(r + 1) * zd]);
        let (theta, _ridge) = solve_spd_with_ridge(&gram, &b, 1e-3).ok()?;
        let t = theta.as_slice();
        a_rows[r * dim..(r + 1) * dim].copy_from_slice(&t[..dim]);
        offset[r] = t[dim];
    }
    let a = Matrix::from_vec(dim, dim, a_rows).ok()?;
    let surrogate = ModelSurrogate {
        a,
        offset,
        r2: 0.0,
        pairs: pairs.len(),
    };
    // Pooled R² over all output dimensions.
    let mut mean = vec![0.0f64; dim];
    for &(_, wn) in &pairs {
        for (m, &y) in mean.iter_mut().zip(wn) {
            *m += y;
        }
    }
    for m in &mut mean {
        *m /= pairs.len() as f64;
    }
    let mut sse = 0.0f64;
    let mut sst = 0.0f64;
    for &(w, wn) in &pairs {
        let pred = surrogate.step(w);
        for ((&y, &p), &m) in wn.iter().zip(&pred).zip(&mean) {
            sse += (y - p) * (y - p);
            sst += (y - m) * (y - m);
        }
    }
    let r2 = if sst < 1e-18 {
        1.0
    } else {
        (1.0 - sse / sst).clamp(0.0, 1.0)
    };
    Some(ModelSurrogate { r2, ..surrogate })
}

/// Check 1 — primitivity of the empirical transition support digraph.
pub fn primitivity_check(ex: &Extraction) -> Check {
    let bins = ex.spec.bins;
    let occupied: Vec<usize> = (0..bins).filter(|&b| ex.occupancy[b] > 0).collect();
    let mut cell_of = vec![usize::MAX; bins];
    for (cell, &b) in occupied.iter().enumerate() {
        cell_of[b] = cell;
    }
    let mut edges = Vec::new();
    for &bi in &occupied {
        for (bj, &count) in ex.transitions[bi * bins..(bi + 1) * bins]
            .iter()
            .enumerate()
        {
            if count > 0 {
                edges.push((cell_of[bi], cell_of[bj]));
            }
        }
    }
    let g = DiGraph::from_edges(occupied.len(), &edges);
    let transitions = ex.transition_count();
    let irreducible = !occupied.is_empty() && g.is_strongly_connected();
    let period = g.period();
    let primitive = !occupied.is_empty() && primitivity::is_primitive(&g);
    let exponent = primitivity::primitivity_exponent(&g);
    // Per-group support graphs over the same occupied-bin vertex set.
    let mut groups_primitive = 0usize;
    for gt in &ex.group_transitions {
        let mut ge = Vec::new();
        for &bi in &occupied {
            for (bj, &count) in gt[bi * bins..(bi + 1) * bins].iter().enumerate() {
                if count > 0 && cell_of[bj] != usize::MAX {
                    ge.push((cell_of[bi], cell_of[bj]));
                }
            }
        }
        if !occupied.is_empty()
            && primitivity::is_primitive(&DiGraph::from_edges(occupied.len(), &ge))
        {
            groups_primitive += 1;
        }
    }
    let evidence = vec![
        ("states", occupied.len() as f64),
        ("edges", edges.len() as f64),
        ("transitions", transitions as f64),
        ("irreducible", flag(irreducible)),
        ("period", period.map_or(f64::NAN, |p| p as f64)),
        ("primitive", flag(primitive)),
        (
            "primitivity_exponent",
            exponent.map_or(f64::NAN, |e| e as f64),
        ),
        (
            "wielandt_bound",
            primitivity::wielandt_bound(occupied.len().max(1)) as f64,
        ),
        ("groups_primitive", groups_primitive as f64),
        ("groups", ex.group_labels.len() as f64),
    ];
    let (verdict, detail) = if transitions < MIN_TRANSITIONS {
        (
            Verdict::Inconclusive,
            format!("only {transitions} observed transitions (need {MIN_TRANSITIONS})"),
        )
    } else if primitive {
        (
            Verdict::Certified,
            format!(
                "support digraph on {} occupied states is irreducible and aperiodic",
                occupied.len()
            ),
        )
    } else if !irreducible {
        (
            Verdict::Refuted,
            "support digraph is reducible: multiple recurrent classes possible".to_string(),
        )
    } else {
        (
            Verdict::Refuted,
            format!(
                "support digraph is irreducible but periodic (period {})",
                period.map_or_else(|| "?".to_string(), |p| p.to_string())
            ),
        )
    };
    Check {
        name: "primitivity",
        precondition: "transition support digraph irreducible and aperiodic (Perron-Frobenius)",
        verdict,
        evidence,
        detail,
    }
}

/// Check 2 — unique ergodicity of the embedded chain plus the empirical
/// equal-impact test (paper Def. 3).
pub fn ergodicity_check(
    ex: &Extraction,
    chain: Option<&ChainEmbedding>,
    config: &CertifyConfig,
    rng: &mut SimRng,
) -> Check {
    let transitions = ex.transition_count();
    let Some(chain) = chain else {
        return Check {
            name: "unique-ergodicity",
            precondition:
                "irreducible + primitive + average-contractive chain => unique attractive invariant measure (Werner 2004)",
            verdict: Verdict::Inconclusive,
            evidence: vec![("states", 0.0), ("transitions", transitions as f64)],
            detail: "no occupied states extracted".to_string(),
        };
    };
    let bin_width = (ex.spec.state_hi - ex.spec.state_lo) / ex.spec.bins as f64;
    let report = ergodic::analyze(
        &chain.system,
        MetricKind::Euclidean,
        config.contraction_pairs,
        &mut rng.split(0),
        box_sampler(vec![ex.spec.state_lo], vec![ex.spec.state_hi]),
    );
    let initials: Vec<Vec<f64>> = chain
        .occupied
        .iter()
        .take(EI_INITIALS)
        .map(|&b| vec![ex.bin_center(b)])
        .collect();
    let ei = ergodic::empirical_equal_impact(
        &chain.system,
        &initials,
        config.equal_impact_steps,
        bin_width,
        &mut rng.split(1),
        |x| x[0],
    );
    let evidence = vec![
        ("states", chain.occupied.len() as f64),
        ("transitions", transitions as f64),
        ("dangling_states", chain.dangling as f64),
        ("irreducible", flag(report.irreducible)),
        ("primitive", flag(report.primitive)),
        ("contraction_factor", report.contractivity.estimated_factor),
        (
            "contraction_pairs",
            report.contractivity.pairs_evaluated as f64,
        ),
        ("equal_impact_spread", ei.spread),
        ("equal_impact_tolerance", bin_width),
        ("equal_impact_initials", initials.len() as f64),
        ("equal_impact_passed", flag(ei.passed)),
    ];
    let (verdict, detail) = if transitions < MIN_TRANSITIONS {
        (
            Verdict::Inconclusive,
            format!("only {transitions} observed transitions (need {MIN_TRANSITIONS})"),
        )
    } else if report.verdict == ErgodicityVerdict::NotIrreducible {
        (
            Verdict::Refuted,
            "embedded chain is not irreducible: limits may depend on the initial condition"
                .to_string(),
        )
    } else if report.verdict == ErgodicityVerdict::UniquelyErgodic && ei.passed {
        (
            Verdict::Certified,
            format!(
                "uniquely ergodic; Cesaro limits agree within {:.4} from {} starts",
                ei.spread,
                initials.len()
            ),
        )
    } else if !ei.passed && ei.spread > 2.0 * bin_width {
        (
            Verdict::Refuted,
            format!(
                "equal-impact limits spread {:.4} exceeds twice the {:.4} tolerance",
                ei.spread, bin_width
            ),
        )
    } else {
        (
            Verdict::Inconclusive,
            "invariant measure exists but unique attractivity not established".to_string(),
        )
    };
    Check {
        name: "unique-ergodicity",
        precondition:
            "irreducible + primitive + average-contractive chain => unique attractive invariant measure (Werner 2004)",
        verdict,
        evidence,
        detail,
    }
}

/// Check 3 — average contractivity of the fitted checkpoint dynamics.
pub fn contraction_check(
    surrogate: Option<&ModelSurrogate>,
    checkpoints: &[Vec<f64>],
    config: &CertifyConfig,
    rng: &mut SimRng,
) -> Check {
    const NAME: &str = "contraction";
    const PRE: &str = "checkpoint-to-checkpoint model update is average-contractive (factor < 1)";
    let Some(s) = surrogate else {
        return Check {
            name: NAME,
            precondition: PRE,
            verdict: Verdict::Inconclusive,
            evidence: vec![("checkpoints", checkpoints.len() as f64)],
            detail: "too few checkpoints to fit the model dynamics".to_string(),
        };
    };
    let dim = s.offset.len();
    // Sample around the visited region, padded so the box is never empty.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for w in checkpoints.iter().filter(|w| w.len() == dim) {
        for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(w) {
            *l = l.min(x);
            *h = h.max(x);
        }
    }
    for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
        let pad = (0.1 * (*h - *l)).max(0.1);
        *l -= pad;
        *h += pad;
    }
    let a = s.a.clone();
    let offset = s.offset.clone();
    let system = MarkovSystem::builder(dim)
        .edge(
            0,
            0,
            move |x: &[f64]| {
                let y = a.mat_vec(&Vector::from_slice(x));
                y.as_slice()
                    .iter()
                    .zip(&offset)
                    .map(|(yi, bi)| yi + bi)
                    .collect()
            },
            |_x: &[f64]| 1.0,
        )
        .build()
        .expect("single affine edge builds");
    let report = estimate_contraction_factor(
        &system,
        MetricKind::Euclidean,
        config.contraction_pairs,
        rng,
        box_sampler(lo, hi),
    );
    let evidence = vec![
        ("checkpoints", checkpoints.len() as f64),
        ("fit_pairs", s.pairs as f64),
        ("fit_r2", s.r2),
        ("model_dim", dim as f64),
        ("contraction_factor", report.estimated_factor),
        ("pairs_evaluated", report.pairs_evaluated as f64),
    ];
    let (verdict, detail) = if s.r2 < MIN_FIT_R2 {
        (
            Verdict::Inconclusive,
            format!("surrogate fit R2 {:.3} too weak to trust", s.r2),
        )
    } else if report.is_contractive() {
        (
            Verdict::Certified,
            format!(
                "fitted update contracts with factor {:.4} over {} pairs",
                report.estimated_factor, report.pairs_evaluated
            ),
        )
    } else if report.pairs_evaluated > 0 && report.estimated_factor >= 1.05 {
        (
            Verdict::Refuted,
            format!(
                "fitted update expands with factor {:.4}",
                report.estimated_factor
            ),
        )
    } else {
        (
            Verdict::Inconclusive,
            format!(
                "contraction factor {:.4} too close to 1 to certify",
                report.estimated_factor
            ),
        )
    };
    Check {
        name: NAME,
        precondition: PRE,
        verdict,
        evidence,
        detail,
    }
}

/// Check 4 — top Lyapunov exponent of the fitted model update.
pub fn lyapunov_check(
    surrogate: Option<&ModelSurrogate>,
    checkpoints: &[Vec<f64>],
    rng: &mut SimRng,
) -> Check {
    const NAME: &str = "lyapunov";
    const PRE: &str = "top Lyapunov exponent of the model update is negative (a.s. stability)";
    let Some(s) = surrogate else {
        return Check {
            name: NAME,
            precondition: PRE,
            verdict: Verdict::Inconclusive,
            evidence: vec![("checkpoints", checkpoints.len() as f64)],
            detail: "too few checkpoints to fit the model dynamics".to_string(),
        };
    };
    let est = lyapunov_exponent(
        std::slice::from_ref(&s.a),
        &[1.0],
        LYAP_STEPS,
        LYAP_REPLICAS,
        rng,
    );
    let evidence = vec![
        ("checkpoints", checkpoints.len() as f64),
        ("fit_r2", s.r2),
        ("exponent", est.exponent),
        ("std_error", est.std_error),
        ("steps", est.steps as f64),
        ("replicas", est.replicas as f64),
    ];
    let (verdict, detail) = if s.r2 < MIN_FIT_R2 {
        (
            Verdict::Inconclusive,
            format!("surrogate fit R2 {:.3} too weak to trust", s.r2),
        )
    } else if est.is_stable() {
        (
            Verdict::Certified,
            format!(
                "exponent {:.4} +/- {:.4} is negative with margin",
                est.exponent, est.std_error
            ),
        )
    } else if est.exponent - 2.0 * est.std_error > 0.0 {
        (
            Verdict::Refuted,
            format!("exponent {:.4} is positive with margin", est.exponent),
        )
    } else {
        (
            Verdict::Inconclusive,
            format!(
                "exponent {:.4} +/- {:.4} straddles zero",
                est.exponent, est.std_error
            ),
        )
    };
    Check {
        name: NAME,
        precondition: PRE,
        verdict,
        evidence,
        detail,
    }
}

/// Check 5 — incremental input-to-state stability of the filter channel.
pub fn iss_check(ex: &Extraction, rng: &mut SimRng) -> Check {
    const NAME: &str = "iss";
    const PRE: &str =
        "filter channel is incrementally ISS (class-KL beta, finite gain; Angeli 2002)";
    let surrogate = if ex.filter_fit.samples >= MIN_FIT_SAMPLES {
        ex.filter_fit.solve()
    } else {
        None
    };
    let Some(s) = surrogate else {
        return Check {
            name: NAME,
            precondition: PRE,
            verdict: Verdict::Inconclusive,
            evidence: vec![("fit_samples", ex.filter_fit.samples as f64)],
            detail: format!(
                "only {} filter samples (need {MIN_FIT_SAMPLES})",
                ex.filter_fit.samples
            ),
        };
    };
    let (mut u_lo, mut u_hi) = (ex.action_lo, ex.action_hi);
    if !(u_hi - u_lo).is_finite() || u_hi - u_lo < 1e-9 {
        let base = if u_lo.is_finite() { u_lo } else { 0.0 };
        u_lo = base - 0.5;
        u_hi = base + 0.5;
    }
    let (a, b, c) = (s.a, s.b, s.c);
    let report = estimate_iss(
        |x: &[f64], u: f64| vec![a * x[0] + b * u + c],
        1,
        ISS_HORIZON,
        ISS_PAIRS,
        rng,
        box_sampler(vec![ex.spec.state_lo], vec![ex.spec.state_hi]),
        move |r: &mut SimRng| r.uniform_in(u_lo, u_hi),
    );
    let evidence = vec![
        ("fit_samples", s.samples as f64),
        ("fit_r2", s.r2),
        ("filter_a", a),
        ("filter_b", b),
        ("beta_c", report.beta.c),
        ("beta_lambda", report.beta.lambda),
        ("gamma_gain", report.gamma.g),
        ("validation_pass_rate", report.validation_pass_rate),
    ];
    let (verdict, detail) = if s.r2 < MIN_FIT_R2 {
        (
            Verdict::Inconclusive,
            format!("filter surrogate fit R2 {:.3} too weak to trust", s.r2),
        )
    } else if report.consistent {
        (
            Verdict::Certified,
            format!(
                "KL decay {:.4}, gain {:.4}, pass rate {:.3}",
                report.beta.lambda, report.gamma.g, report.validation_pass_rate
            ),
        )
    } else if !report.beta.is_kl() {
        (
            Verdict::Refuted,
            format!(
                "fitted decay factor {:.4} >= 1: state differences do not contract",
                report.beta.lambda
            ),
        )
    } else {
        (
            Verdict::Inconclusive,
            format!(
                "envelopes fit but validation pass rate {:.3} below threshold",
                report.validation_pass_rate
            ),
        )
    };
    Check {
        name: NAME,
        precondition: PRE,
        verdict,
        evidence,
        detail,
    }
}

/// Runs all five analysis passes over one extraction. Deterministic for a
/// fixed `rng` seed; each pass draws from its own split stream.
pub fn analyze_extraction(ex: &Extraction, config: &CertifyConfig, rng: &SimRng) -> Vec<Check> {
    let chain = build_chain(ex);
    let surrogate = fit_model_surrogate(&ex.checkpoints);
    vec![
        primitivity_check(ex),
        ergodicity_check(ex, chain.as_ref(), config, &mut rng.split(10)),
        contraction_check(
            surrogate.as_ref(),
            &ex.checkpoints,
            config,
            &mut rng.split(11),
        ),
        lyapunov_check(surrogate.as_ref(), &ex.checkpoints, &mut rng.split(12)),
        iss_check(ex, &mut rng.split(13)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractionSpec};

    fn spec() -> ExtractionSpec {
        ExtractionSpec {
            state_lo: 0.0,
            state_hi: 1.0,
            bins: 4,
            threshold: 0.0,
            model_fields: &["model.w"],
            sampled_trajectories: 2,
        }
    }

    fn test_header() -> eqimpact_trace::TraceHeader {
        use eqimpact_core::recorder::RecordPolicy;
        use eqimpact_core::scenario::{Scale, TraceMeta};
        eqimpact_trace::TraceHeader::from_meta(&TraceMeta {
            scenario: "synthetic".to_string(),
            variant: "mixing".to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: 7,
            shards: 1,
            delay: 0,
            policy: RecordPolicy::Full,
        })
        .with_checkpoints()
    }

    fn synthetic_extraction() -> Extraction {
        use eqimpact_core::checkpoint::ModelCheckpoint;
        use eqimpact_core::FeatureMatrix;
        use eqimpact_stats::SimRng;
        use eqimpact_trace::TraceWriter;

        let mut buf = Vec::new();
        let mut writer = TraceWriter::new(&mut buf, &test_header()).unwrap();
        let mut rng = SimRng::new(7);
        let users = 40usize;
        let mut state: Vec<f64> = (0..users).map(|_| rng.uniform()).collect();
        let mut w = vec![0.4f64, -0.2];
        for step in 0..60usize {
            // Contractive toward 0.5 with mixing noise: visits every bin.
            for x in &mut state {
                *x = (0.5 + 0.6 * (*x - 0.5) + 0.35 * (rng.uniform() - 0.5)).clamp(0.0, 1.0);
            }
            let signals: Vec<f64> = state.iter().map(|&x| x - 0.5).collect();
            let actions: Vec<f64> = state.iter().map(|&x| 0.5 - x).collect();
            let visible = FeatureMatrix::from_nested(&vec![vec![0.0]; users]);
            writer
                .write_step(&visible, &signals, &actions, &state)
                .unwrap();
            for wi in &mut w {
                *wi = 0.8 * *wi + 0.01;
            }
            let mut cp = ModelCheckpoint::new();
            cp.reset(step);
            cp.push_field("model.w", &w);
            writer.write_checkpoint(&cp).unwrap();
        }
        writer.finish().unwrap();
        extract(&spec(), &mut buf.as_slice()).unwrap()
    }

    #[test]
    fn mixing_trace_certifies_the_core_checks() {
        let ex = synthetic_extraction();
        assert!(ex.transition_count() > 1000);
        assert_eq!(ex.checkpoints.len(), 60);
        let config = CertifyConfig::default();
        let rng = SimRng::new(42);
        let checks = analyze_extraction(&ex, &config, &rng);
        let by_name = |n: &str| checks.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("primitivity").verdict, Verdict::Certified);
        assert_eq!(by_name("unique-ergodicity").verdict, Verdict::Certified);
        assert_eq!(by_name("contraction").verdict, Verdict::Certified);
        assert_eq!(by_name("lyapunov").verdict, Verdict::Certified);
        assert_eq!(by_name("iss").verdict, Verdict::Certified);
    }

    #[test]
    fn analysis_is_deterministic_for_a_fixed_seed() {
        let ex = synthetic_extraction();
        let config = CertifyConfig::default();
        let a = analyze_extraction(&ex, &config, &SimRng::new(42));
        let b = analyze_extraction(&ex, &config, &SimRng::new(42));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.verdict, y.verdict);
            assert_eq!(x.evidence, y.evidence);
            assert_eq!(x.detail, y.detail);
        }
    }

    #[test]
    fn empty_extraction_is_inconclusive_everywhere() {
        let ex = Extraction {
            header: test_header(),
            spec: spec(),
            steps: 0,
            users: 0,
            transitions: vec![0; 16],
            group_labels: Vec::new(),
            group_transitions: Vec::new(),
            group_positive: Vec::new(),
            group_decisions: Vec::new(),
            occupancy: vec![0; 4],
            trajectories: Vec::new(),
            checkpoints: Vec::new(),
            filter_fit: Default::default(),
            action_lo: f64::INFINITY,
            action_hi: f64::NEG_INFINITY,
            clamped: 0,
        };
        let config = CertifyConfig::default();
        let checks = analyze_extraction(&ex, &config, &SimRng::new(1));
        assert_eq!(checks.len(), 5);
        for c in &checks {
            assert_eq!(c.verdict, Verdict::Inconclusive, "check {}", c.name);
            for &(k, v) in &c.evidence {
                assert!(!v.is_infinite(), "evidence {k} infinite");
            }
        }
    }

    #[test]
    fn verdict_combine_is_refute_dominant() {
        use Verdict::*;
        assert_eq!(Certified.combine(Certified), Certified);
        assert_eq!(Certified.combine(Inconclusive), Inconclusive);
        assert_eq!(Inconclusive.combine(Refuted), Refuted);
        assert_eq!(Refuted.combine(Certified), Refuted);
    }

    #[test]
    fn two_state_periodic_chain_refutes_primitivity() {
        let mut ex = Extraction {
            header: test_header(),
            spec: spec(),
            steps: 100,
            users: 1,
            transitions: vec![0; 16],
            group_labels: Vec::new(),
            group_transitions: Vec::new(),
            group_positive: Vec::new(),
            group_decisions: Vec::new(),
            occupancy: vec![50, 0, 0, 50],
            trajectories: Vec::new(),
            checkpoints: Vec::new(),
            filter_fit: Default::default(),
            action_lo: 0.0,
            action_hi: 1.0,
            clamped: 0,
        };
        // Pure alternation 0 <-> 3: irreducible, period 2.
        ex.transitions[3] = 50; // 0 -> 3
        ex.transitions[3 * 4] = 50; // 3 -> 0
        let check = primitivity_check(&ex);
        assert_eq!(check.verdict, Verdict::Refuted);
        let period = check
            .evidence
            .iter()
            .find(|(k, _)| *k == "period")
            .unwrap()
            .1;
        assert_eq!(period, 2.0);
    }
}
