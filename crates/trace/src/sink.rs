//! The bridge from the core scenario machinery to trace files on disk.
//!
//! [`TraceDirFactory`] implements
//! [`TraceSinkFactory`](eqimpact_core::scenario::TraceSinkFactory): attach
//! one to a [`ScenarioConfig`](eqimpact_core::ScenarioConfig) and every
//! loop of every trial streams into
//! `<dir>/<scenario>-<variant>-trial<t>.eqtrace`. Trials run on worker
//! threads, so sinks are self-contained; I/O failures never panic a
//! trial — they are collected in the factory and surfaced by
//! `run_scenario` as a single `ScenarioError::Trace`.

use crate::store::{TraceHeader, TraceWriter};
use crate::TraceError;
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::StepSink;
use eqimpact_core::scenario::{TraceMeta, TraceSinkFactory};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A [`StepSink`] writing one trace stream through a [`TraceWriter`].
/// The first error latches: subsequent steps are dropped and the error
/// is reported by [`Self::finish`] (or forwarded to a shared collector
/// by the owning factory's sink on drop).
pub struct TraceStepSink<W: Write> {
    writer: Option<TraceWriter<W>>,
    error: Option<TraceError>,
    checkpoints: bool,
}

impl<W: Write> TraceStepSink<W> {
    /// Starts a trace stream on `out` (writes the header immediately).
    /// When the header was built [`TraceHeader::with_checkpoints`], the
    /// sink asks the runners for per-retrain model checkpoints and
    /// writes them as checkpoint frames.
    pub fn new(out: W, header: &TraceHeader) -> Result<Self, TraceError> {
        Ok(TraceStepSink {
            writer: Some(TraceWriter::new(out, header)?),
            error: None,
            checkpoints: header.checkpoints,
        })
    }

    /// Writes the footer and returns the underlying writer, or the first
    /// error hit anywhere in the stream.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        match self.writer.take() {
            Some(writer) => writer.finish(),
            None => unreachable!("writer present whenever no error latched"),
        }
    }

    fn latch<T>(&mut self, result: Result<T, TraceError>) {
        if let Err(e) = result {
            self.error = Some(e);
            self.writer = None;
        }
    }
}

impl<W: Write> StepSink for TraceStepSink<W> {
    fn on_groups(&mut self, labels: &[&str], codes: &[u32]) {
        if let Some(writer) = self.writer.as_mut() {
            let result = writer.write_groups(labels, codes);
            self.latch(result);
        }
    }

    fn on_step(
        &mut self,
        _k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        filtered: &[f64],
    ) {
        if let Some(writer) = self.writer.as_mut() {
            let result = writer.write_step(visible, signals, actions, filtered);
            self.latch(result);
        }
    }

    fn wants_checkpoints(&self) -> bool {
        self.checkpoints
    }

    fn on_checkpoint(&mut self, _k: usize, checkpoint: &eqimpact_core::ModelCheckpoint) {
        if let Some(writer) = self.writer.as_mut() {
            let result = writer.write_checkpoint(checkpoint);
            self.latch(result);
        }
    }
}

/// The directory-backed sink factory behind `experiments record`: one
/// `.eqtrace` file per recorded loop, named
/// `<scenario>-<variant>-trial<t>.eqtrace`.
pub struct TraceDirFactory {
    dir: PathBuf,
    checkpoints: bool,
    errors: Arc<Mutex<Vec<String>>>,
    written: Arc<Mutex<Vec<PathBuf>>>,
}

impl TraceDirFactory {
    /// Creates the output directory (so unwritable destinations fail
    /// up front, before any trial runs) and returns the factory.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Arc<Self>> {
        Self::create_with(dir, false)
    }

    /// [`Self::create`] with control over checkpoint frames: when
    /// `checkpoints` is true every recorded trace carries per-retrain
    /// model checkpoints (format version 2) for fast replay.
    pub fn create_with(dir: impl Into<PathBuf>, checkpoints: bool) -> std::io::Result<Arc<Self>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(TraceDirFactory {
            dir,
            checkpoints,
            errors: Arc::new(Mutex::new(Vec::new())),
            written: Arc::new(Mutex::new(Vec::new())),
        }))
    }

    /// The file name a loop's trace is stored under.
    pub fn file_name(meta: &TraceMeta) -> String {
        format!(
            "{}-{}-trial{}.eqtrace",
            meta.scenario, meta.variant, meta.trial
        )
    }

    /// Every trace file successfully finished so far, sorted by path
    /// (trials complete on worker threads in nondeterministic order, so
    /// the sort is what keeps `experiments record` output stable).
    pub fn written(&self) -> Vec<PathBuf> {
        let mut paths = self
            .written
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        paths.sort();
        paths
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The per-loop sink handed out by [`TraceDirFactory`]: a
/// [`TraceStepSink`] over a buffered file, finishing (footer + flush) on
/// drop and reporting any failure into the factory's collector.
struct DirSink {
    sink: Option<TraceStepSink<BufWriter<std::fs::File>>>,
    path: PathBuf,
    errors: Arc<Mutex<Vec<String>>>,
    written: Arc<Mutex<Vec<PathBuf>>>,
}

impl StepSink for DirSink {
    fn on_groups(&mut self, labels: &[&str], codes: &[u32]) {
        if let Some(sink) = self.sink.as_mut() {
            sink.on_groups(labels, codes);
        }
    }

    fn on_step(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        filtered: &[f64],
    ) {
        if let Some(sink) = self.sink.as_mut() {
            sink.on_step(k, visible, signals, actions, filtered);
        }
    }

    fn wants_checkpoints(&self) -> bool {
        self.sink
            .as_ref()
            .is_some_and(|sink| sink.wants_checkpoints())
    }

    fn on_checkpoint(&mut self, k: usize, checkpoint: &eqimpact_core::ModelCheckpoint) {
        if let Some(sink) = self.sink.as_mut() {
            sink.on_checkpoint(k, checkpoint);
        }
    }
}

impl Drop for DirSink {
    fn drop(&mut self) {
        // A drop during panic unwinding (a trial crashed mid-loop) must
        // NOT write the footer: that would turn a partial recording
        // into a complete-looking short trace. Left footerless, the
        // file replays as the named `Truncated` error instead.
        if std::thread::panicking() {
            return;
        }
        if let Some(sink) = self.sink.take() {
            match sink.finish() {
                Ok(_) => self
                    .written
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(self.path.clone()),
                Err(e) => self
                    .errors
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(format!("{}: {e}", self.path.display())),
            }
        }
    }
}

impl TraceSinkFactory for TraceDirFactory {
    fn sink(&self, meta: &TraceMeta) -> Box<dyn StepSink + Send> {
        let path = self.dir.join(Self::file_name(meta));
        let mut header = TraceHeader::from_meta(meta);
        if self.checkpoints {
            header = header.with_checkpoints();
        }
        let open = std::fs::File::create(&path)
            .map_err(TraceError::Io)
            .and_then(|file| TraceStepSink::new(BufWriter::new(file), &header));
        match open {
            Ok(sink) => Box::new(DirSink {
                sink: Some(sink),
                path,
                errors: Arc::clone(&self.errors),
                written: Arc::clone(&self.written),
            }),
            Err(e) => {
                self.errors
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(format!("{}: {e}", path.display()));
                Box::new(())
            }
        }
    }

    fn take_errors(&self) -> Vec<String> {
        std::mem::take(&mut self.errors.lock().unwrap_or_else(|e| e.into_inner()))
    }
}
