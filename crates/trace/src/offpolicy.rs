//! Off-policy counterfactual evaluation: score an *alternative* policy
//! against a recorded trajectory, without re-simulating the population.
//!
//! The evaluator walks the trace once. At every step the alternative AI
//! sees exactly the visible features the behaviour policy saw and emits
//! its own signals; the recorded actions stand in for the population's
//! responses (the classical logged-bandit reading: the log is the data,
//! the candidate policy is the question), the alternative filter digests
//! them, and the delayed feedback retrains the alternative AI — so the
//! candidate adapts over the trajectory just as it would have in the
//! live loop. The result is a pair of [`LoopRecord`]s over identical
//! actions — recorded behaviour vs counterfactual decisions — which
//! [`off_policy_report`] turns into fairness and impact deltas through
//! [`eqimpact_core::fairness`].
//!
//! The one caveat of any off-policy read-out is confounding: the
//! recorded actions were taken *under the behaviour policy's signals*,
//! so second-order feedback effects of the candidate are out of scope —
//! exactly the gap the paper's closed-loop analysis warns about, and the
//! reason the report carries the decision-agreement rate as a validity
//! measure alongside the deltas.

use crate::store::{TraceGroups, TraceReader};
use crate::TraceError;
use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::closed_loop::{AiSystem, Feedback, FeedbackFilter};
use eqimpact_core::fairness::{demographic_parity, equal_opportunity};
use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
use eqimpact_core::scenario::Scale;
use eqimpact_stats::{Json, ToJson};
use std::collections::VecDeque;
use std::io::Read;

/// The raw material of an off-policy evaluation: the recorded behaviour
/// and the counterfactual decisions, over the same logged actions.
#[derive(Debug, Clone)]
pub struct OffPolicyOutcome {
    /// The recorded run (signals, actions, filter outputs as logged).
    pub baseline: LoopRecord,
    /// The counterfactual run: the alternative policy's signals and
    /// filter outputs over the logged actions.
    pub counterfactual: LoopRecord,
    /// Group metadata carried by the trace, when present.
    pub groups: Option<TraceGroups>,
    /// Fraction of (step, user) decisions on which the two policies
    /// agree (both positive or both non-positive).
    pub agreement: f64,
}

/// Knobs of [`evaluate_off_policy_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OffPolicyOptions {
    /// Replace the candidate's retrains with recorded model checkpoints
    /// wherever the candidate accepts them ([`AiSystem::restore_checkpoint`]
    /// returns `true`). Only sound when the candidate shares the logged
    /// policy's learner (e.g. threshold variants of the recorded
    /// scorecard) — a candidate that learns differently must keep
    /// retraining, which the per-checkpoint fallback guarantees.
    pub use_checkpoints: bool,
}

/// Walks the trace once, driving `alt_ai`/`alt_filter` over the recorded
/// features and actions (see the module docs). `decision_threshold`
/// defines a positive decision (`signal > threshold`) for the agreement
/// statistic. Both returned records are [`RecordPolicy::Full`] so the
/// fairness auditors can read them regardless of the original policy.
pub fn evaluate_off_policy<S: AiSystem, F: FeedbackFilter, R: Read>(
    reader: TraceReader<R>,
    alt_ai: S,
    alt_filter: F,
    decision_threshold: f64,
) -> Result<OffPolicyOutcome, TraceError> {
    evaluate_off_policy_with(
        reader,
        alt_ai,
        alt_filter,
        decision_threshold,
        OffPolicyOptions::default(),
    )
}

/// [`evaluate_off_policy`] with explicit [`OffPolicyOptions`] (e.g. the
/// checkpoint fast-path for candidates that share the logged learner).
pub fn evaluate_off_policy_with<S: AiSystem, F: FeedbackFilter, R: Read>(
    mut reader: TraceReader<R>,
    mut alt_ai: S,
    mut alt_filter: F,
    decision_threshold: f64,
    options: OffPolicyOptions,
) -> Result<OffPolicyOutcome, TraceError> {
    let delay = reader.header().delay;
    let mut checkpoint = ModelCheckpoint::new();
    let mut frame = crate::store::StepFrame::default();
    let mut baseline: Option<LoopRecord> = None;
    let mut counterfactual: Option<LoopRecord> = None;
    let mut signals = Vec::new();
    let mut pending: VecDeque<Feedback> = VecDeque::new();
    let mut spare: Vec<Feedback> = Vec::new();
    let mut agree = 0usize;
    let mut total = 0usize;

    while reader.next_step(&mut frame)? {
        let k = frame.step;
        let n = frame.signals.len();
        let baseline =
            baseline.get_or_insert_with(|| LoopRecord::with_policy(n, RecordPolicy::Full));
        let counterfactual =
            counterfactual.get_or_insert_with(|| LoopRecord::with_policy(n, RecordPolicy::Full));

        baseline.push_step(&frame.signals, &frame.actions, &frame.filtered);

        alt_ai.signals_into(k, &frame.visible, &mut signals);
        assert_eq!(
            signals.len(),
            n,
            "alternative AI must emit one signal per user"
        );
        for (a, b) in signals.iter().zip(&frame.signals) {
            total += 1;
            if (*a > decision_threshold) == (*b > decision_threshold) {
                agree += 1;
            }
        }

        let mut feedback = spare.pop().unwrap_or_default();
        alt_filter.apply_into(k, &frame.visible, &signals, &frame.actions, &mut feedback);
        counterfactual.push_step(&signals, &frame.actions, &feedback.per_user);

        pending.push_back(feedback);
        if pending.len() > delay {
            let due = pending.pop_front().expect("non-empty by check");
            let mut restored = false;
            if options.use_checkpoints && reader.next_checkpoint(&mut checkpoint)? {
                restored = alt_ai.restore_checkpoint(&checkpoint);
            }
            if !restored {
                alt_ai.retrain(k, &due);
            }
            spare.push(due);
        }
    }

    let users = reader.groups().map(|g| g.codes.len()).unwrap_or(0);
    Ok(OffPolicyOutcome {
        baseline: baseline.unwrap_or_else(|| LoopRecord::with_policy(users, RecordPolicy::Full)),
        counterfactual: counterfactual
            .unwrap_or_else(|| LoopRecord::with_policy(users, RecordPolicy::Full)),
        groups: reader.groups().cloned(),
        agreement: if total == 0 {
            f64::NAN
        } else {
            agree as f64 / total as f64
        },
    })
}

/// One policy's fairness read-out within an [`OffPolicyReport`].
#[derive(Debug, Clone)]
pub struct PolicyFairness {
    /// Pooled positive-decision rate.
    pub positive_rate: f64,
    /// Per-group positive-decision rates, in group-label order.
    pub group_rates: Vec<f64>,
    /// Largest pairwise demographic-parity gap.
    pub parity_gap: f64,
    /// Largest pairwise equal-opportunity gap (among favourable
    /// actions).
    pub opportunity_gap: f64,
    /// Final filter output (e.g. ADR / track record) per group — the
    /// impact channel.
    pub group_final_filtered: Vec<f64>,
}

impl ToJson for PolicyFairness {
    fn to_json(&self) -> Json {
        Json::obj([
            ("positive_rate", self.positive_rate.to_json()),
            ("group_rates", self.group_rates.to_json()),
            ("parity_gap", self.parity_gap.to_json()),
            ("opportunity_gap", self.opportunity_gap.to_json()),
            ("group_final_filtered", self.group_final_filtered.to_json()),
        ])
    }
}

/// The rendered verdict of an off-policy evaluation: behaviour vs
/// candidate, with fairness/impact deltas (candidate − behaviour).
#[derive(Debug, Clone)]
pub struct OffPolicyReport {
    /// Scenario the trace was recorded from.
    pub scenario: String,
    /// The recorded loop variant (the behaviour policy).
    pub variant: String,
    /// The evaluated alternative policy.
    pub policy: String,
    /// Scale of the recorded run.
    pub scale: Scale,
    /// Seed of the recorded run.
    pub seed: u64,
    /// Steps evaluated.
    pub steps: usize,
    /// Users in the trace.
    pub users: usize,
    /// Decision-agreement rate between the two policies.
    pub agreement: f64,
    /// Group labels behind the per-group vectors.
    pub group_labels: Vec<String>,
    /// The behaviour policy's fairness read-out.
    pub baseline: PolicyFairness,
    /// The candidate policy's fairness read-out.
    pub candidate: PolicyFairness,
    /// `candidate.parity_gap - baseline.parity_gap` (negative = the
    /// candidate is more demographically even).
    pub parity_gap_delta: f64,
    /// `candidate.opportunity_gap - baseline.opportunity_gap`.
    pub opportunity_gap_delta: f64,
}

impl ToJson for OffPolicyReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.as_str().to_json()),
            ("variant", self.variant.as_str().to_json()),
            ("policy", self.policy.as_str().to_json()),
            (
                "scale",
                match self.scale {
                    Scale::Paper => "paper",
                    Scale::Quick => "quick",
                }
                .to_json(),
            ),
            ("seed", self.seed.to_string().as_str().to_json()),
            ("steps", self.steps.to_json()),
            ("users", self.users.to_json()),
            ("agreement", self.agreement.to_json()),
            (
                "group_labels",
                Json::Arr(
                    self.group_labels
                        .iter()
                        .map(|l| l.as_str().to_json())
                        .collect(),
                ),
            ),
            ("baseline", self.baseline.to_json()),
            ("candidate", self.candidate.to_json()),
            ("parity_gap_delta", self.parity_gap_delta.to_json()),
            (
                "opportunity_gap_delta",
                self.opportunity_gap_delta.to_json(),
            ),
        ])
    }
}

fn fairness_of(
    record: &LoopRecord,
    groups: &[Vec<usize>],
    decision_threshold: f64,
) -> PolicyFairness {
    let steps = record.steps();
    let users = record.user_count();
    let positive: usize = (0..steps)
        .map(|k| {
            record
                .signals(k)
                .iter()
                .filter(|&&s| s > decision_threshold)
                .count()
        })
        .sum();
    let positive_rate = if steps * users == 0 {
        f64::NAN
    } else {
        positive as f64 / (steps * users) as f64
    };
    let parity = demographic_parity(record, groups, decision_threshold);
    let opportunity = equal_opportunity(record, groups, decision_threshold, 0.5);
    let group_final_filtered = groups
        .iter()
        .map(|members| {
            if steps == 0 || members.is_empty() {
                f64::NAN
            } else {
                let last = record.filtered(steps - 1);
                members.iter().map(|&i| last[i]).sum::<f64>() / members.len() as f64
            }
        })
        .collect();
    PolicyFairness {
        positive_rate,
        group_rates: parity.group_rates.iter().map(|r| r.rate).collect(),
        parity_gap: parity.max_gap,
        opportunity_gap: opportunity.max_gap,
        group_final_filtered,
    }
}

/// Renders an [`OffPolicyOutcome`] into the report the CLI prints and
/// persists. `header` supplies provenance; `policy` names the evaluated
/// candidate.
pub fn off_policy_report(
    outcome: &OffPolicyOutcome,
    header: &crate::store::TraceHeader,
    policy: &str,
    decision_threshold: f64,
) -> OffPolicyReport {
    let (labels, groups) = match &outcome.groups {
        Some(g) => (g.labels.clone(), g.index_sets()),
        None => (Vec::new(), Vec::new()),
    };
    let baseline = fairness_of(&outcome.baseline, &groups, decision_threshold);
    let candidate = fairness_of(&outcome.counterfactual, &groups, decision_threshold);
    OffPolicyReport {
        scenario: header.scenario.clone(),
        variant: header.variant.clone(),
        policy: policy.to_string(),
        scale: header.scale,
        seed: header.seed,
        steps: outcome.baseline.steps(),
        users: outcome.baseline.user_count(),
        agreement: outcome.agreement,
        group_labels: labels,
        parity_gap_delta: candidate.parity_gap - baseline.parity_gap,
        opportunity_gap_delta: candidate.opportunity_gap - baseline.opportunity_gap,
        baseline,
        candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TraceHeader;
    use crate::TraceStepSink;
    use eqimpact_core::features::FeatureMatrix;
    use eqimpact_core::recorder::StepSink;
    use eqimpact_core::scenario::TraceMeta;

    /// Echoes the first visible feature column as its signal — by
    /// construction in [`synthetic_trace`], identical to the recorded
    /// behaviour policy. Retrains are counted, never needed for output.
    struct EchoAi {
        retrains: usize,
    }

    impl AiSystem for EchoAi {
        fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
            out.clear();
            out.extend_from_slice(visible.col(0));
        }
        fn retrain(&mut self, _k: usize, _feedback: &Feedback) {
            self.retrains += 1;
        }
    }

    /// Emits a constant signal for every user.
    struct ConstAi(f64);

    impl AiSystem for ConstAi {
        fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
            out.clear();
            out.extend(std::iter::repeat_n(self.0, visible.row_count()));
        }
        fn retrain(&mut self, _k: usize, _feedback: &Feedback) {
            panic!("a single-step trace must never reach a retrain");
        }
    }

    /// Passes the raw actions through as the per-user filter output.
    struct IdentityFilter;

    impl FeedbackFilter for IdentityFilter {
        fn apply_into(
            &mut self,
            k: usize,
            visible: &FeatureMatrix,
            signals: &[f64],
            actions: &[f64],
            out: &mut Feedback,
        ) {
            out.step = k;
            out.per_user.clear();
            out.per_user.extend_from_slice(actions);
            out.aggregate = actions.iter().sum::<f64>() / actions.len().max(1) as f64;
            out.visible.fill_from(visible);
            out.actions.clear();
            out.actions.extend_from_slice(actions);
            out.signals.clear();
            out.signals.extend_from_slice(signals);
        }
    }

    /// A delay-1 trace over four users (group codes `codes`, labels
    /// `labels`): the behaviour policy signals +1 for the first two users
    /// and −1 for the rest, every step; positive signals become
    /// favourable (1.0) actions. The signal is mirrored into the visible
    /// feature column so [`EchoAi`] reproduces it exactly.
    fn synthetic_trace(steps: usize, labels: &[&str], codes: &[u32]) -> (Vec<u8>, TraceHeader) {
        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: "synthetic".to_string(),
            variant: "fixed".to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: 1,
            shards: 1,
            delay: 1,
            policy: RecordPolicy::Full,
        });
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        sink.on_groups(labels, codes);
        let n = codes.len();
        let signals: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { -1.0 }).collect();
        let actions: Vec<f64> = signals
            .iter()
            .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let mut visible = FeatureMatrix::new(1);
        for &s in &signals {
            visible.push_row(&[s]);
        }
        for k in 0..steps {
            sink.on_step(k, &visible, &signals, &actions, &actions);
        }
        (sink.finish().expect("trace finishes"), header)
    }

    fn evaluate<S: AiSystem>(bytes: &[u8], ai: S) -> OffPolicyOutcome {
        let mut input: &[u8] = bytes;
        let reader = TraceReader::new(&mut input).expect("trace reads back");
        evaluate_off_policy(reader, ai, IdentityFilter, 0.0).expect("evaluation runs")
    }

    #[test]
    fn single_step_trace_evaluates_without_ever_retraining() {
        // One step at delay 1: the feedback stays in the delay line, so
        // the candidate's (panicking) retrain hook must never fire, and
        // the statistics still come out well-defined.
        let (bytes, header) = synthetic_trace(1, &["alpha", "beta"], &[0, 0, 1, 1]);
        let outcome = evaluate(&bytes, ConstAi(2.0));
        assert_eq!(outcome.baseline.steps(), 1);
        assert_eq!(outcome.counterfactual.steps(), 1);
        // ConstAi(2.0) is positive everywhere; the log is positive for
        // exactly half the users.
        assert!((outcome.agreement - 0.5).abs() < 1e-12);
        let report = off_policy_report(&outcome, &header, "const", 0.0);
        assert_eq!(report.steps, 1);
        assert_eq!(report.users, 4);
        assert!((report.candidate.positive_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.candidate.parity_gap, 0.0);
    }

    #[test]
    fn absent_group_rates_are_nan_and_excluded_from_gaps() {
        // The "ghost" label has no members in the trace: its rate column
        // is NaN, and the parity/opportunity gaps are computed over the
        // populated groups only instead of poisoning to NaN.
        let (bytes, header) = synthetic_trace(3, &["alpha", "beta", "ghost"], &[0, 0, 1, 1]);
        let outcome = evaluate(&bytes, EchoAi { retrains: 0 });
        let report = off_policy_report(&outcome, &header, "echo", 0.0);
        assert_eq!(report.group_labels.len(), 3);
        assert_eq!(report.candidate.group_rates.len(), 3);
        assert!(report.candidate.group_rates[2].is_nan());
        assert!(report.candidate.group_final_filtered[2].is_nan());
        // alpha decides 1.0, beta 0.0 — the gap over the live groups.
        assert!((report.candidate.parity_gap - 1.0).abs() < 1e-12);
        assert!(report.candidate.opportunity_gap.is_finite());
    }

    #[test]
    fn full_agreement_candidate_scores_one_with_zero_deltas() {
        // A candidate that reproduces every logged decision: agreement
        // is exactly 1.0 and every fairness delta is exactly zero.
        let (bytes, header) = synthetic_trace(4, &["alpha", "beta"], &[0, 0, 1, 1]);
        let outcome = evaluate(&bytes, EchoAi { retrains: 0 });
        assert_eq!(outcome.agreement, 1.0);
        assert_eq!(
            outcome.counterfactual.signals(0),
            outcome.baseline.signals(0)
        );
        let report = off_policy_report(&outcome, &header, "echo", 0.0);
        assert_eq!(report.parity_gap_delta, 0.0);
        assert_eq!(report.opportunity_gap_delta, 0.0);
        assert_eq!(
            report.candidate.positive_rate,
            report.baseline.positive_rate
        );
    }
}
