//! Off-policy counterfactual evaluation: score an *alternative* policy
//! against a recorded trajectory, without re-simulating the population.
//!
//! The evaluator walks the trace once. At every step the alternative AI
//! sees exactly the visible features the behaviour policy saw and emits
//! its own signals; the recorded actions stand in for the population's
//! responses (the classical logged-bandit reading: the log is the data,
//! the candidate policy is the question), the alternative filter digests
//! them, and the delayed feedback retrains the alternative AI — so the
//! candidate adapts over the trajectory just as it would have in the
//! live loop. The result is a pair of [`LoopRecord`]s over identical
//! actions — recorded behaviour vs counterfactual decisions — which
//! [`off_policy_report`] turns into fairness and impact deltas through
//! [`eqimpact_core::fairness`].
//!
//! The one caveat of any off-policy read-out is confounding: the
//! recorded actions were taken *under the behaviour policy's signals*,
//! so second-order feedback effects of the candidate are out of scope —
//! exactly the gap the paper's closed-loop analysis warns about, and the
//! reason the report carries the decision-agreement rate as a validity
//! measure alongside the deltas.

use crate::store::{TraceGroups, TraceReader};
use crate::TraceError;
use eqimpact_core::closed_loop::{AiSystem, Feedback, FeedbackFilter};
use eqimpact_core::fairness::{demographic_parity, equal_opportunity};
use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
use eqimpact_core::scenario::Scale;
use eqimpact_stats::{Json, ToJson};
use std::collections::VecDeque;
use std::io::Read;

/// The raw material of an off-policy evaluation: the recorded behaviour
/// and the counterfactual decisions, over the same logged actions.
#[derive(Debug, Clone)]
pub struct OffPolicyOutcome {
    /// The recorded run (signals, actions, filter outputs as logged).
    pub baseline: LoopRecord,
    /// The counterfactual run: the alternative policy's signals and
    /// filter outputs over the logged actions.
    pub counterfactual: LoopRecord,
    /// Group metadata carried by the trace, when present.
    pub groups: Option<TraceGroups>,
    /// Fraction of (step, user) decisions on which the two policies
    /// agree (both positive or both non-positive).
    pub agreement: f64,
}

/// Walks the trace once, driving `alt_ai`/`alt_filter` over the recorded
/// features and actions (see the module docs). `decision_threshold`
/// defines a positive decision (`signal > threshold`) for the agreement
/// statistic. Both returned records are [`RecordPolicy::Full`] so the
/// fairness auditors can read them regardless of the original policy.
pub fn evaluate_off_policy<S: AiSystem, F: FeedbackFilter, R: Read>(
    mut reader: TraceReader<R>,
    mut alt_ai: S,
    mut alt_filter: F,
    decision_threshold: f64,
) -> Result<OffPolicyOutcome, TraceError> {
    let delay = reader.header().delay;
    let mut frame = crate::store::StepFrame::default();
    let mut baseline: Option<LoopRecord> = None;
    let mut counterfactual: Option<LoopRecord> = None;
    let mut signals = Vec::new();
    let mut pending: VecDeque<Feedback> = VecDeque::new();
    let mut spare: Vec<Feedback> = Vec::new();
    let mut agree = 0usize;
    let mut total = 0usize;

    while reader.next_step(&mut frame)? {
        let k = frame.step;
        let n = frame.signals.len();
        let baseline =
            baseline.get_or_insert_with(|| LoopRecord::with_policy(n, RecordPolicy::Full));
        let counterfactual =
            counterfactual.get_or_insert_with(|| LoopRecord::with_policy(n, RecordPolicy::Full));

        baseline.push_step(&frame.signals, &frame.actions, &frame.filtered);

        alt_ai.signals_into(k, &frame.visible, &mut signals);
        assert_eq!(
            signals.len(),
            n,
            "alternative AI must emit one signal per user"
        );
        for (a, b) in signals.iter().zip(&frame.signals) {
            total += 1;
            if (*a > decision_threshold) == (*b > decision_threshold) {
                agree += 1;
            }
        }

        let mut feedback = spare.pop().unwrap_or_default();
        alt_filter.apply_into(k, &frame.visible, &signals, &frame.actions, &mut feedback);
        counterfactual.push_step(&signals, &frame.actions, &feedback.per_user);

        pending.push_back(feedback);
        if pending.len() > delay {
            let due = pending.pop_front().expect("non-empty by check");
            alt_ai.retrain(k, &due);
            spare.push(due);
        }
    }

    let users = reader.groups().map(|g| g.codes.len()).unwrap_or(0);
    Ok(OffPolicyOutcome {
        baseline: baseline.unwrap_or_else(|| LoopRecord::with_policy(users, RecordPolicy::Full)),
        counterfactual: counterfactual
            .unwrap_or_else(|| LoopRecord::with_policy(users, RecordPolicy::Full)),
        groups: reader.groups().cloned(),
        agreement: if total == 0 {
            f64::NAN
        } else {
            agree as f64 / total as f64
        },
    })
}

/// One policy's fairness read-out within an [`OffPolicyReport`].
#[derive(Debug, Clone)]
pub struct PolicyFairness {
    /// Pooled positive-decision rate.
    pub positive_rate: f64,
    /// Per-group positive-decision rates, in group-label order.
    pub group_rates: Vec<f64>,
    /// Largest pairwise demographic-parity gap.
    pub parity_gap: f64,
    /// Largest pairwise equal-opportunity gap (among favourable
    /// actions).
    pub opportunity_gap: f64,
    /// Final filter output (e.g. ADR / track record) per group — the
    /// impact channel.
    pub group_final_filtered: Vec<f64>,
}

impl ToJson for PolicyFairness {
    fn to_json(&self) -> Json {
        Json::obj([
            ("positive_rate", self.positive_rate.to_json()),
            ("group_rates", self.group_rates.to_json()),
            ("parity_gap", self.parity_gap.to_json()),
            ("opportunity_gap", self.opportunity_gap.to_json()),
            ("group_final_filtered", self.group_final_filtered.to_json()),
        ])
    }
}

/// The rendered verdict of an off-policy evaluation: behaviour vs
/// candidate, with fairness/impact deltas (candidate − behaviour).
#[derive(Debug, Clone)]
pub struct OffPolicyReport {
    /// Scenario the trace was recorded from.
    pub scenario: String,
    /// The recorded loop variant (the behaviour policy).
    pub variant: String,
    /// The evaluated alternative policy.
    pub policy: String,
    /// Scale of the recorded run.
    pub scale: Scale,
    /// Seed of the recorded run.
    pub seed: u64,
    /// Steps evaluated.
    pub steps: usize,
    /// Users in the trace.
    pub users: usize,
    /// Decision-agreement rate between the two policies.
    pub agreement: f64,
    /// Group labels behind the per-group vectors.
    pub group_labels: Vec<String>,
    /// The behaviour policy's fairness read-out.
    pub baseline: PolicyFairness,
    /// The candidate policy's fairness read-out.
    pub candidate: PolicyFairness,
    /// `candidate.parity_gap - baseline.parity_gap` (negative = the
    /// candidate is more demographically even).
    pub parity_gap_delta: f64,
    /// `candidate.opportunity_gap - baseline.opportunity_gap`.
    pub opportunity_gap_delta: f64,
}

impl ToJson for OffPolicyReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.as_str().to_json()),
            ("variant", self.variant.as_str().to_json()),
            ("policy", self.policy.as_str().to_json()),
            (
                "scale",
                match self.scale {
                    Scale::Paper => "paper",
                    Scale::Quick => "quick",
                }
                .to_json(),
            ),
            ("seed", self.seed.to_string().as_str().to_json()),
            ("steps", self.steps.to_json()),
            ("users", self.users.to_json()),
            ("agreement", self.agreement.to_json()),
            (
                "group_labels",
                Json::Arr(
                    self.group_labels
                        .iter()
                        .map(|l| l.as_str().to_json())
                        .collect(),
                ),
            ),
            ("baseline", self.baseline.to_json()),
            ("candidate", self.candidate.to_json()),
            ("parity_gap_delta", self.parity_gap_delta.to_json()),
            (
                "opportunity_gap_delta",
                self.opportunity_gap_delta.to_json(),
            ),
        ])
    }
}

fn fairness_of(
    record: &LoopRecord,
    groups: &[Vec<usize>],
    decision_threshold: f64,
) -> PolicyFairness {
    let steps = record.steps();
    let users = record.user_count();
    let positive: usize = (0..steps)
        .map(|k| {
            record
                .signals(k)
                .iter()
                .filter(|&&s| s > decision_threshold)
                .count()
        })
        .sum();
    let positive_rate = if steps * users == 0 {
        f64::NAN
    } else {
        positive as f64 / (steps * users) as f64
    };
    let parity = demographic_parity(record, groups, decision_threshold);
    let opportunity = equal_opportunity(record, groups, decision_threshold, 0.5);
    let group_final_filtered = groups
        .iter()
        .map(|members| {
            if steps == 0 || members.is_empty() {
                f64::NAN
            } else {
                let last = record.filtered(steps - 1);
                members.iter().map(|&i| last[i]).sum::<f64>() / members.len() as f64
            }
        })
        .collect();
    PolicyFairness {
        positive_rate,
        group_rates: parity.group_rates.iter().map(|r| r.rate).collect(),
        parity_gap: parity.max_gap,
        opportunity_gap: opportunity.max_gap,
        group_final_filtered,
    }
}

/// Renders an [`OffPolicyOutcome`] into the report the CLI prints and
/// persists. `header` supplies provenance; `policy` names the evaluated
/// candidate.
pub fn off_policy_report(
    outcome: &OffPolicyOutcome,
    header: &crate::store::TraceHeader,
    policy: &str,
    decision_threshold: f64,
) -> OffPolicyReport {
    let (labels, groups) = match &outcome.groups {
        Some(g) => (g.labels.clone(), g.index_sets()),
        None => (Vec::new(), Vec::new()),
    };
    let baseline = fairness_of(&outcome.baseline, &groups, decision_threshold);
    let candidate = fairness_of(&outcome.counterfactual, &groups, decision_threshold);
    OffPolicyReport {
        scenario: header.scenario.clone(),
        variant: header.variant.clone(),
        policy: policy.to_string(),
        scale: header.scale,
        seed: header.seed,
        steps: outcome.baseline.steps(),
        users: outcome.baseline.user_count(),
        agreement: outcome.agreement,
        group_labels: labels,
        parity_gap_delta: candidate.parity_gap - baseline.parity_gap,
        opportunity_gap_delta: candidate.opportunity_gap - baseline.opportunity_gap,
        baseline,
        candidate,
    }
}
