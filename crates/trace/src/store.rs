//! The on-disk trace format: CRC-framed blocks around the column codec.
//!
//! ```text
//! magic  "EQTRACE1"                      (8 bytes)
//! frame* kind u8 | len u32 LE | crc32 u32 LE | payload[len]
//! ```
//!
//! Frame kinds, in stream order:
//!
//! 1. **header** — a compact JSON object (`version`, `scenario`,
//!    `variant`, `trial`, `scale`, `seed`, `shards`, `delay`, `policy`,
//!    `checkpoints`), so a trace is self-describing and the header stays
//!    extensible;
//! 2. **groups** (optional) — per-user group metadata: the labels and a
//!    column of group codes (e.g. race per user);
//! 3. **step** (repeated) — one loop step: the step index, the row/width
//!    shape, and four column blocks (visible features, signals, actions,
//!    filter outputs), each length-prefixed;
//! 4. **checkpoint** (optional, format version 2, after the step whose
//!    retrain it captures) — a [`ModelCheckpoint`]: the retrain step and
//!    named float columns of learned state (logistic weights, per-user
//!    memory, filter state), so replay can restore instead of retrain;
//! 5. **footer** — the step count and final shape, closing the stream; a
//!    missing footer is reported as a truncated trace.
//!
//! Traces without checkpoint frames are written as format version 1 —
//! exactly the pre-checkpoint format, so older readers keep reading
//! them; checkpointed traces carry version 2, which older readers
//! reject with the named [`TraceError::UnsupportedVersion`].
//!
//! Every payload is covered by a CRC-32; a flipped bit anywhere surfaces
//! as [`TraceError::ChecksumMismatch`] instead of bad data. The reader
//! is streaming — one frame is resident at a time, so memory is bounded
//! by the widest step, not the trace length.

use crate::column::{
    decode_column, decode_f64_column, encode_column, encode_f64_column, TAG_MASK, TAG_RLE_BIT,
    TAG_SWAP_BIT,
};
use crate::TraceError;
use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::{LoopRecord, RecordPolicy};
use eqimpact_core::scenario::{Scale, TraceMeta};
use eqimpact_stats::codec::{crc32, read_varint, write_varint};
use eqimpact_stats::json::{parse, Json, ToJson};
use eqimpact_telemetry::metrics as tm;
use std::io::{Read, Write};

/// The stream magic.
pub const MAGIC: &[u8; 8] = b"EQTRACE1";

/// The newest format version this crate reads and writes.
pub const FORMAT_VERSION: u32 = 2;

/// The version written for traces that use no optional feature — the
/// pre-checkpoint format, readable by version-1 readers.
const BASE_VERSION: u32 = 1;

const KIND_HEADER: u8 = 1;
const KIND_GROUPS: u8 = 2;
const KIND_STEP: u8 = 3;
const KIND_FOOTER: u8 = 4;
const KIND_CHECKPOINT: u8 = 5;

/// Hard cap on the fields a checkpoint frame may declare (a corrupt
/// count must not size buffers).
const MAX_CHECKPOINT_FIELDS: usize = 1 << 16;

/// Hard cap on a single frame's payload, so a corrupt length field
/// cannot ask the reader to allocate the universe.
const MAX_FRAME_LEN: u32 = 1 << 30;

/// Hard cap on the *cells* a step or groups frame may declare
/// (`rows × width`, or group codes). Distinct from — and much lower
/// than — the byte cap: run-length encoding means a legitimately tiny
/// frame can expand to many values, so the bound is on elements, and it
/// is sized so even a deliberately crafted frame cannot demand more
/// than ~512 MiB of decoded buffer (CRC-32 is integrity, not
/// authentication). 2^26 cells still covers tens of millions of users
/// per step.
const MAX_FRAME_CELLS: usize = 1 << 26;

/// The self-describing provenance of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Format version of the stream.
    pub version: u32,
    /// Registry name of the recorded scenario.
    pub scenario: String,
    /// Which of the scenario's loops was recorded (e.g. `scorecard`).
    pub variant: String,
    /// Trial index within the recorded run.
    pub trial: usize,
    /// Scale of the recorded run.
    pub scale: Scale,
    /// Effective base seed of the recorded run.
    pub seed: u64,
    /// Intra-trial shard count of the recorded run (provenance only —
    /// records are shard-invariant).
    pub shards: usize,
    /// Feedback delay of the recorded loop, in steps.
    pub delay: usize,
    /// Record policy of the recorded run.
    pub policy: RecordPolicy,
    /// Whether the stream carries per-retrain model-checkpoint frames
    /// (a format-version-2 feature).
    pub checkpoints: bool,
}

impl TraceHeader {
    /// Builds a header from the scenario machinery's [`TraceMeta`]. The
    /// header starts at the base (checkpoint-free) format version; opt
    /// into checkpoint frames with [`Self::with_checkpoints`].
    pub fn from_meta(meta: &TraceMeta) -> Self {
        TraceHeader {
            version: BASE_VERSION,
            scenario: meta.scenario.clone(),
            variant: meta.variant.clone(),
            trial: meta.trial,
            scale: meta.scale,
            seed: meta.seed,
            shards: meta.shards,
            delay: meta.delay,
            policy: meta.policy,
            checkpoints: false,
        }
    }

    /// Declares that the stream will carry model-checkpoint frames,
    /// bumping the format version to [`FORMAT_VERSION`] (version-1
    /// readers reject such traces with a named
    /// [`TraceError::UnsupportedVersion`]).
    pub fn with_checkpoints(mut self) -> Self {
        self.checkpoints = true;
        self.version = FORMAT_VERSION;
        self
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("version", (self.version as usize).to_json()),
            ("scenario", self.scenario.as_str().to_json()),
            ("variant", self.variant.as_str().to_json()),
            ("trial", self.trial.to_json()),
            (
                "scale",
                match self.scale {
                    Scale::Paper => "paper",
                    Scale::Quick => "quick",
                }
                .to_json(),
            ),
            // Seeds are full u64s; JSON numbers are f64, so the seed
            // travels as a string to survive values above 2^53.
            ("seed", self.seed.to_string().as_str().to_json()),
            ("shards", self.shards.to_json()),
            ("delay", self.delay.to_json()),
            (
                "policy",
                match self.policy {
                    RecordPolicy::Full => "full",
                    RecordPolicy::Thin => "thin",
                }
                .to_json(),
            ),
            ("checkpoints", self.checkpoints.to_json()),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, TraceError> {
        let corrupt = |what: &str| TraceError::Corrupt {
            what: format!("header: {what}"),
        };
        let field = |name: &'static str| {
            doc.get(name)
                .ok_or_else(|| corrupt(&format!("missing {name}")))
        };
        let int = |name: &'static str| -> Result<usize, TraceError> {
            field(name)?
                .as_usize()
                .ok_or_else(|| corrupt(&format!("{name} is not an integer")))
        };
        let text = |name: &'static str| -> Result<String, TraceError> {
            Ok(field(name)?
                .as_str()
                .ok_or_else(|| corrupt(&format!("{name} is not a string")))?
                .to_string())
        };
        let version = int("version")? as u32;
        if version > FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let scale = match text("scale")?.as_str() {
            "paper" => Scale::Paper,
            "quick" => Scale::Quick,
            other => return Err(corrupt(&format!("unknown scale `{other}`"))),
        };
        let policy = match text("policy")?.as_str() {
            "full" => RecordPolicy::Full,
            "thin" => RecordPolicy::Thin,
            other => return Err(corrupt(&format!("unknown policy `{other}`"))),
        };
        let seed = text("seed")?
            .parse::<u64>()
            .map_err(|_| corrupt("seed is not a u64"))?;
        // Absent in version-1 headers; defaults to no checkpoints.
        let checkpoints = matches!(doc.get("checkpoints"), Some(Json::Bool(true)));
        Ok(TraceHeader {
            version,
            scenario: text("scenario")?,
            variant: text("variant")?,
            trial: int("trial")?,
            scale,
            seed,
            shards: int("shards")?,
            delay: int("delay")?,
            policy,
            checkpoints,
        })
    }
}

/// Per-user group metadata of a trace (e.g. race per user).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceGroups {
    /// Group labels; `codes[i]` indexes into them.
    pub labels: Vec<String>,
    /// One group code per user.
    pub codes: Vec<u32>,
}

impl TraceGroups {
    /// The users of each group, as index sets in label order (the shape
    /// `eqimpact_core::fairness` takes).
    pub fn index_sets(&self) -> Vec<Vec<usize>> {
        let mut sets = vec![Vec::new(); self.labels.len()];
        for (i, &code) in self.codes.iter().enumerate() {
            if let Some(set) = sets.get_mut(code as usize) {
                set.push(i);
            }
        }
        sets
    }
}

/// One decoded step of a trace, with reusable buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepFrame {
    /// The step index `k`.
    pub step: usize,
    /// The visible features the AI saw at this step.
    pub visible: FeatureMatrix,
    /// The broadcast signals `π(k, ·)`.
    pub signals: Vec<f64>,
    /// The population's actions `y(k)`.
    pub actions: Vec<f64>,
    /// The feedback filter's per-user output.
    pub filtered: Vec<f64>,
}

fn write_frame<W: Write>(out: &mut W, kind: u8, payload: &[u8]) -> Result<usize, TraceError> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    out.write_all(&[kind])?;
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    out.write_all(payload)?;
    tm::TRACE_FRAMES_WRITTEN.incr();
    tm::TRACE_FRAME_BYTES.observe(payload.len() as u64);
    Ok(1 + 4 + 4 + payload.len())
}

/// Tallies one encoded f64 column into the per-codec-choice byte
/// counters (raw = 8 bytes per value; the block's first byte is its
/// codec tag).
fn note_column_encoding(values: usize, block: &[u8]) {
    if !eqimpact_telemetry::enabled() {
        return;
    }
    let raw = (values as u64) * 8;
    let encoded = block.len() as u64;
    let (raw_counter, enc_counter) = match block.first().map_or(0, |tag| tag & TAG_MASK) {
        0 => (&tm::TRACE_RAW_BYTES_PLAIN, &tm::TRACE_ENC_BYTES_PLAIN),
        TAG_RLE_BIT => (&tm::TRACE_RAW_BYTES_RLE, &tm::TRACE_ENC_BYTES_RLE),
        TAG_SWAP_BIT => (&tm::TRACE_RAW_BYTES_SWAP, &tm::TRACE_ENC_BYTES_SWAP),
        _ => (&tm::TRACE_RAW_BYTES_SWAP_RLE, &tm::TRACE_ENC_BYTES_SWAP_RLE),
    };
    raw_counter.add(raw);
    enc_counter.add(encoded);
}

/// Streaming writer of the trace format. Create with a header, feed it
/// [`Self::write_groups`] (optional, before the first step) and one
/// [`Self::write_step`] per loop step, and close it with
/// [`Self::finish`] — dropping an unfinished writer leaves a trace
/// without a footer, which readers report as truncated.
pub struct TraceWriter<W: Write> {
    out: W,
    steps: usize,
    rows: usize,
    width: usize,
    bytes: u64,
    payload: Vec<u8>,
    block: Vec<u8>,
    words: Vec<u64>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the magic and the header frame.
    pub fn new(mut out: W, header: &TraceHeader) -> Result<Self, TraceError> {
        out.write_all(MAGIC)?;
        let payload = header.to_json().render().into_bytes();
        let mut bytes = MAGIC.len() as u64;
        bytes += write_frame(&mut out, KIND_HEADER, &payload)? as u64;
        Ok(TraceWriter {
            out,
            steps: 0,
            rows: 0,
            width: 0,
            bytes,
            payload: Vec::new(),
            block: Vec::new(),
            words: Vec::new(),
        })
    }

    /// Writes the group-metadata frame. Call at most once, before the
    /// first step.
    pub fn write_groups(&mut self, labels: &[&str], codes: &[u32]) -> Result<(), TraceError> {
        self.payload.clear();
        write_varint(&mut self.payload, labels.len() as u64);
        for label in labels {
            write_varint(&mut self.payload, label.len() as u64);
            self.payload.extend_from_slice(label.as_bytes());
        }
        write_varint(&mut self.payload, codes.len() as u64);
        self.words.clear();
        self.words.extend(codes.iter().map(|&c| c as u64));
        let mut block = std::mem::take(&mut self.block);
        block.clear();
        encode_column(&self.words, &mut block);
        self.payload.extend_from_slice(&block);
        self.block = block;
        self.bytes += write_frame(&mut self.out, KIND_GROUPS, &self.payload)? as u64;
        Ok(())
    }

    /// Writes one step frame.
    ///
    /// # Panics
    /// Panics when the channel lengths disagree with each other (the
    /// runner invariant), not on I/O — I/O failures are `Err`.
    pub fn write_step(
        &mut self,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        filtered: &[f64],
    ) -> Result<(), TraceError> {
        let n = signals.len();
        assert_eq!(visible.row_count(), n, "visible rows");
        assert_eq!(actions.len(), n, "actions length");
        assert_eq!(filtered.len(), n, "filtered length");
        self.rows = n;
        self.width = visible.width();
        self.payload.clear();
        write_varint(&mut self.payload, self.steps as u64);
        write_varint(&mut self.payload, n as u64);
        write_varint(&mut self.payload, visible.width() as u64);
        let mut block = std::mem::take(&mut self.block);
        // One column per visible feature — the run's columnar layout is
        // already the trace layout, so each column encodes straight from
        // its storage with no gather — then the three per-user channels.
        for j in 0..visible.width() {
            block.clear();
            encode_f64_column(visible.col(j), &mut self.words, &mut block);
            note_column_encoding(visible.col(j).len(), &block);
            write_varint(&mut self.payload, block.len() as u64);
            self.payload.extend_from_slice(&block);
        }
        for channel in [signals, actions, filtered] {
            block.clear();
            encode_f64_column(channel, &mut self.words, &mut block);
            note_column_encoding(channel.len(), &block);
            write_varint(&mut self.payload, block.len() as u64);
            self.payload.extend_from_slice(&block);
        }
        self.block = block;
        self.bytes += write_frame(&mut self.out, KIND_STEP, &self.payload)? as u64;
        self.steps += 1;
        Ok(())
    }

    /// Writes one model-checkpoint frame (format version 2). Call right
    /// after the [`Self::write_step`] whose retrain the checkpoint
    /// captures; the header should have been built
    /// [`TraceHeader::with_checkpoints`] so readers expect the frames.
    pub fn write_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> Result<(), TraceError> {
        self.payload.clear();
        write_varint(&mut self.payload, checkpoint.step as u64);
        write_varint(&mut self.payload, checkpoint.field_count() as u64);
        let mut block = std::mem::take(&mut self.block);
        for (name, values) in checkpoint.fields() {
            write_varint(&mut self.payload, name.len() as u64);
            self.payload.extend_from_slice(name.as_bytes());
            write_varint(&mut self.payload, values.len() as u64);
            block.clear();
            encode_f64_column(values, &mut self.words, &mut block);
            note_column_encoding(values.len(), &block);
            write_varint(&mut self.payload, block.len() as u64);
            self.payload.extend_from_slice(&block);
        }
        self.block = block;
        self.bytes += write_frame(&mut self.out, KIND_CHECKPOINT, &self.payload)? as u64;
        Ok(())
    }

    /// Steps written so far.
    pub fn steps_written(&self) -> usize {
        self.steps
    }

    /// Bytes emitted so far (magic and frame overhead included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Writes the footer, flushes, and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.payload.clear();
        write_varint(&mut self.payload, self.steps as u64);
        write_varint(&mut self.payload, self.rows as u64);
        write_varint(&mut self.payload, self.width as u64);
        self.bytes += write_frame(&mut self.out, KIND_FOOTER, &self.payload)? as u64;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader of the trace format: validates the magic and the
/// header eagerly, then yields one [`StepFrame`] at a time —
/// bounded-memory iteration regardless of trace length.
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    groups: Option<TraceGroups>,
    /// The next frame, already read (one-frame lookahead so the optional
    /// groups frame can be consumed during construction).
    pending: Option<(u8, Vec<u8>)>,
    frame_index: usize,
    steps_read: usize,
    done: bool,
    /// Reused scratch: frame payloads, decoded words, one gathered
    /// feature column.
    payload: Vec<u8>,
    words: Vec<u64>,
    column: Vec<f64>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace: reads the magic, the header frame and (if present)
    /// the groups frame.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        read_exact_or(&mut input, &mut magic, "magic")?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut frame_index = 0usize;
        let (kind, payload) = read_frame(&mut input, &mut frame_index)?
            .ok_or(TraceError::Truncated { what: "header" })?;
        if kind != KIND_HEADER {
            return Err(TraceError::Corrupt {
                what: format!("first frame has kind {kind}, expected header"),
            });
        }
        let text = std::str::from_utf8(&payload).map_err(|_| TraceError::Corrupt {
            what: "header is not UTF-8".to_string(),
        })?;
        let doc = parse(text).map_err(|e| TraceError::Corrupt {
            what: format!("header JSON: {e}"),
        })?;
        let header = TraceHeader::from_json(&doc)?;

        let mut reader = TraceReader {
            input,
            header,
            groups: None,
            pending: None,
            frame_index,
            steps_read: 0,
            done: false,
            payload: Vec::new(),
            words: Vec::new(),
            column: Vec::new(),
        };
        reader.pending = read_frame(&mut reader.input, &mut reader.frame_index)?;
        if let Some((KIND_GROUPS, payload)) = &reader.pending {
            let groups = decode_groups(payload)?;
            reader.groups = Some(groups);
            reader.pending = read_frame(&mut reader.input, &mut reader.frame_index)?;
        }
        Ok(reader)
    }

    /// The trace's provenance header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The per-user group metadata, when the trace carries any.
    pub fn groups(&self) -> Option<&TraceGroups> {
        self.groups.as_ref()
    }

    /// Steps decoded so far.
    pub fn steps_read(&self) -> usize {
        self.steps_read
    }

    /// Decodes the next step into `frame` (buffers reused). Returns
    /// `Ok(false)` once the footer is reached; a stream that ends
    /// without a footer is a [`TraceError::Truncated`].
    pub fn next_step(&mut self, frame: &mut StepFrame) -> Result<bool, TraceError> {
        if self.done {
            return Ok(false);
        }
        loop {
            let kind = match self.pending.take() {
                Some((kind, payload)) => {
                    self.payload = payload;
                    Some(kind)
                }
                None => read_frame_into(&mut self.input, &mut self.frame_index, &mut self.payload)?,
            };
            let kind = kind.ok_or(TraceError::Truncated {
                what: "step or footer frame",
            })?;
            match kind {
                KIND_STEP => {
                    decode_step(&self.payload, &mut self.words, &mut self.column, frame)?;
                    if frame.step != self.steps_read {
                        return Err(TraceError::Corrupt {
                            what: format!(
                                "step frame out of order: found step {}, expected {}",
                                frame.step, self.steps_read
                            ),
                        });
                    }
                    self.steps_read += 1;
                    return Ok(true);
                }
                KIND_FOOTER => {
                    let mut pos = 0;
                    let steps =
                        read_varint(&self.payload, &mut pos).ok_or(TraceError::Truncated {
                            what: "footer step count",
                        })?;
                    if steps as usize != self.steps_read {
                        return Err(TraceError::Corrupt {
                            what: format!(
                                "footer declares {steps} steps but {} were read",
                                self.steps_read
                            ),
                        });
                    }
                    self.done = true;
                    return Ok(false);
                }
                // Checkpoint frames are transparent to step iteration:
                // callers that don't ask for them (read_record, legacy
                // replay) skip straight to the next step.
                KIND_CHECKPOINT => continue,
                other => {
                    return Err(TraceError::Corrupt {
                        what: format!("unexpected frame kind {other} in the step stream"),
                    })
                }
            }
        }
    }

    /// Decodes the next frame **if** it is a model checkpoint (buffers
    /// reused), leaving step iteration untouched otherwise. The
    /// checkpoint of step `k`'s retrain sits between the step-`k` frame
    /// and the next step frame, so a replayer calls this right after
    /// consuming step `k`.
    pub fn next_checkpoint(
        &mut self,
        checkpoint: &mut ModelCheckpoint,
    ) -> Result<bool, TraceError> {
        if self.done {
            return Ok(false);
        }
        if self.pending.is_none() {
            self.pending = read_frame(&mut self.input, &mut self.frame_index)?;
        }
        match &self.pending {
            Some((KIND_CHECKPOINT, _)) => {
                let (_, payload) = self.pending.take().expect("matched above");
                self.payload = payload;
                decode_checkpoint(&self.payload, &mut self.words, checkpoint)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Reads the remaining steps into a [`LoopRecord`] under the
    /// header's record policy (streaming, so peak memory is one frame
    /// plus the record itself).
    pub fn read_record(&mut self) -> Result<LoopRecord, TraceError> {
        let mut frame = StepFrame::default();
        let mut record: Option<LoopRecord> = None;
        while self.next_step(&mut frame)? {
            let r = record.get_or_insert_with(|| {
                LoopRecord::with_policy(frame.signals.len(), self.header.policy)
            });
            r.push_step(&frame.signals, &frame.actions, &frame.filtered);
        }
        Ok(record.unwrap_or_else(|| {
            let users = self.groups.as_ref().map(|g| g.codes.len()).unwrap_or(0);
            LoopRecord::with_policy(users, self.header.policy)
        }))
    }
}

fn read_exact_or<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { what }
        } else {
            TraceError::Io(e)
        }
    })
}

/// Reads one frame into the reusable `payload` buffer; `Ok(None)` at a
/// clean end-of-stream boundary (no bytes at all), `Err(Truncated)`
/// mid-frame.
fn read_frame_into<R: Read>(
    input: &mut R,
    frame_index: &mut usize,
    payload: &mut Vec<u8>,
) -> Result<Option<u8>, TraceError> {
    let mut kind = [0u8; 1];
    match input.read_exact(&mut kind) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(TraceError::Io(e)),
    }
    let mut word = [0u8; 4];
    read_exact_or(input, &mut word, "frame length")?;
    let len = u32::from_le_bytes(word);
    if len > MAX_FRAME_LEN {
        return Err(TraceError::Corrupt {
            what: format!("frame {} declares an absurd length {len}", frame_index),
        });
    }
    read_exact_or(input, &mut word, "frame checksum")?;
    let expected = u32::from_le_bytes(word);
    payload.clear();
    payload.resize(len as usize, 0);
    read_exact_or(input, payload, "frame payload")?;
    if crc32(payload) != expected {
        tm::TRACE_CHECKSUM_FAILURES.incr();
        return Err(TraceError::ChecksumMismatch {
            frame: *frame_index,
        });
    }
    *frame_index += 1;
    tm::TRACE_FRAMES_READ.incr();
    Ok(Some(kind[0]))
}

/// [`read_frame_into`] with an owned payload (the construction-time
/// lookahead path).
fn read_frame<R: Read>(
    input: &mut R,
    frame_index: &mut usize,
) -> Result<Option<(u8, Vec<u8>)>, TraceError> {
    let mut payload = Vec::new();
    Ok(read_frame_into(input, frame_index, &mut payload)?.map(|kind| (kind, payload)))
}

fn decode_groups(payload: &[u8]) -> Result<TraceGroups, TraceError> {
    let truncated = TraceError::Truncated {
        what: "groups frame",
    };
    let mut pos = 0;
    let label_count = read_varint(payload, &mut pos).ok_or(truncated)?;
    let mut labels = Vec::with_capacity(label_count.min(64) as usize);
    for _ in 0..label_count {
        let len = read_varint(payload, &mut pos).ok_or(TraceError::Truncated {
            what: "group label",
        })? as usize;
        let end =
            pos.checked_add(len)
                .filter(|&e| e <= payload.len())
                .ok_or(TraceError::Truncated {
                    what: "group label bytes",
                })?;
        let label = std::str::from_utf8(&payload[pos..end]).map_err(|_| TraceError::Corrupt {
            what: "group label is not UTF-8".to_string(),
        })?;
        labels.push(label.to_string());
        pos = end;
    }
    let count = read_varint(payload, &mut pos).ok_or(TraceError::Truncated {
        what: "group code count",
    })? as usize;
    // Same absurd-shape guard as step frames: a corrupt count must be
    // rejected before the decoder sizes buffers for it (no-panic
    // contract; RLE means a *valid* count can exceed the byte length).
    if count > MAX_FRAME_CELLS {
        return Err(TraceError::Corrupt {
            what: format!("groups frame declares an absurd code count {count}"),
        });
    }
    let mut words = Vec::new();
    decode_column(payload, &mut pos, count, &mut words).ok_or(TraceError::Corrupt {
        what: "group code column does not decode".to_string(),
    })?;
    let codes = words
        .iter()
        .map(|&w| u32::try_from(w))
        .collect::<Result<Vec<u32>, _>>()
        .map_err(|_| TraceError::Corrupt {
            what: "group code exceeds u32".to_string(),
        })?;
    Ok(TraceGroups { labels, codes })
}

fn decode_checkpoint(
    payload: &[u8],
    words: &mut Vec<u64>,
    checkpoint: &mut ModelCheckpoint,
) -> Result<(), TraceError> {
    let truncated = |what: &'static str| TraceError::Truncated { what };
    let mut pos = 0;
    let step = read_varint(payload, &mut pos).ok_or(truncated("checkpoint step"))? as usize;
    let field_count =
        read_varint(payload, &mut pos).ok_or(truncated("checkpoint field count"))? as usize;
    if field_count > MAX_CHECKPOINT_FIELDS {
        return Err(TraceError::Corrupt {
            what: format!("checkpoint frame declares an absurd field count {field_count}"),
        });
    }
    checkpoint.reset(step);
    for _ in 0..field_count {
        let name_len =
            read_varint(payload, &mut pos).ok_or(truncated("checkpoint field name"))? as usize;
        let end = pos
            .checked_add(name_len)
            .filter(|&e| e <= payload.len())
            .ok_or(truncated("checkpoint field name bytes"))?;
        let name = std::str::from_utf8(&payload[pos..end]).map_err(|_| TraceError::Corrupt {
            what: "checkpoint field name is not UTF-8".to_string(),
        })?;
        pos = end;
        let count =
            read_varint(payload, &mut pos).ok_or(truncated("checkpoint value count"))? as usize;
        if count > MAX_FRAME_CELLS {
            return Err(TraceError::Corrupt {
                what: format!("checkpoint field declares an absurd value count {count}"),
            });
        }
        let block_len =
            read_varint(payload, &mut pos).ok_or(truncated("checkpoint block length"))? as usize;
        let end = pos
            .checked_add(block_len)
            .filter(|&e| e <= payload.len())
            .ok_or(truncated("checkpoint block"))?;
        let mut block_pos = pos;
        let column = checkpoint.field_mut(name);
        decode_f64_column(&payload[..end], &mut block_pos, count, words, column).ok_or(
            TraceError::Corrupt {
                what: "checkpoint column does not decode".to_string(),
            },
        )?;
        if block_pos != end {
            return Err(TraceError::Corrupt {
                what: "checkpoint block has trailing bytes".to_string(),
            });
        }
        pos = end;
    }
    Ok(())
}

fn decode_step(
    payload: &[u8],
    words: &mut Vec<u64>,
    column: &mut Vec<f64>,
    frame: &mut StepFrame,
) -> Result<(), TraceError> {
    let truncated = |what: &'static str| TraceError::Truncated { what };
    let mut pos = 0;
    frame.step = read_varint(payload, &mut pos).ok_or(truncated("step index"))? as usize;
    let rows = read_varint(payload, &mut pos).ok_or(truncated("step row count"))? as usize;
    let width = read_varint(payload, &mut pos).ok_or(truncated("step width"))? as usize;
    let sane = rows
        .checked_mul(width.max(1))
        .map(|cells| cells <= MAX_FRAME_CELLS)
        .unwrap_or(false);
    if !sane {
        return Err(TraceError::Corrupt {
            what: format!("step frame declares an absurd shape {rows} x {width}"),
        });
    }

    // Decodes one length-prefixed float column block of `len` values
    // into `column`, leaving `pos` just past the block.
    let channel = |pos: &mut usize,
                   len: usize,
                   words: &mut Vec<u64>,
                   column: &mut Vec<f64>|
     -> Result<(), TraceError> {
        let block_len =
            read_varint(payload, pos).ok_or(truncated("channel block length"))? as usize;
        let end = pos
            .checked_add(block_len)
            .filter(|&e| e <= payload.len())
            .ok_or(truncated("channel block"))?;
        let mut block_pos = *pos;
        decode_f64_column(&payload[..end], &mut block_pos, len, words, column).ok_or(
            TraceError::Corrupt {
                what: "channel column does not decode".to_string(),
            },
        )?;
        if block_pos != end {
            return Err(TraceError::Corrupt {
                what: "channel block has trailing bytes".to_string(),
            });
        }
        *pos = end;
        Ok(())
    };

    frame.visible.reshape(rows, width);
    for j in 0..width {
        channel(&mut pos, rows, words, column)?;
        frame.visible.col_mut(j).copy_from_slice(column);
    }
    channel(&mut pos, rows, words, &mut frame.signals)?;
    channel(&mut pos, rows, words, &mut frame.actions)?;
    channel(&mut pos, rows, words, &mut frame.filtered)?;
    Ok(())
}
