//! The replay face a workload exposes to the CLI: given a trace file,
//! rebuild the blocks that produced it and re-drive or re-evaluate it.
//!
//! Recording needs no per-workload code beyond honouring
//! [`ScenarioConfig::trace`](eqimpact_core::ScenarioConfig) — the sink
//! sees everything. Replay is the asymmetric half: only the workload
//! knows how to construct the AI system and feedback filter its trace
//! was recorded against (and which *alternative* policies make sense for
//! off-policy evaluation), so each traceable workload implements
//! [`TraceReplayer`] and registers it next to its scenario.

use crate::offpolicy::OffPolicyReport;
use crate::store::{TraceHeader, TraceReader};
use crate::TraceError;
use eqimpact_core::recorder::LoopRecord;
use std::io::Read;

/// One alternative policy a workload can evaluate off-policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicySpec {
    /// Stable name, as selected by `experiments replay --policy`.
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
}

/// The result of a verified replay.
#[derive(Debug, Clone)]
pub struct ReplaySummary {
    /// The trace's provenance header.
    pub header: TraceHeader,
    /// The reconstructed record — byte-identical to the original run's
    /// (the replay verified every recomputed signal and filter output
    /// against the recorded bits).
    pub record: LoopRecord,
}

/// A workload that can rebuild its loop blocks from a trace header, for
/// verified replay and off-policy evaluation. Implemented by the
/// traceable scenarios (credit, hiring) and registered in the bench
/// crate's tracer registry, which `experiments replay` dispatches on.
pub trait TraceReplayer: Sync {
    /// The scenario name this replayer handles (matches both the
    /// scenario registry and trace headers' `scenario` field).
    fn name(&self) -> &'static str;

    /// The alternative policies available for off-policy evaluation.
    fn policies(&self) -> &'static [PolicySpec];

    /// Replays the trace byte-identically against freshly built blocks,
    /// verifying every recomputed value against the recorded bits.
    fn replay(&self, reader: TraceReader<&mut dyn Read>) -> Result<ReplaySummary, TraceError>;

    /// Evaluates the named alternative policy against the trace,
    /// returning fairness/impact deltas vs the recorded behaviour.
    fn evaluate(
        &self,
        reader: TraceReader<&mut dyn Read>,
        policy: &str,
    ) -> Result<OffPolicyReport, TraceError>;
}

/// Helper for [`TraceReplayer::evaluate`] implementations: the
/// unknown-policy error listing a workload's known names.
pub fn unknown_policy(policy: &str, specs: &'static [PolicySpec]) -> TraceError {
    TraceError::UnknownPolicy {
        policy: policy.to_string(),
        known: specs.iter().map(|s| s.name).collect(),
    }
}
