//! Columnar trace store for closed-loop runs: record once, replay and
//! re-evaluate forever.
//!
//! Every question about a recorded run — "what happened?", "does it
//! reproduce?", "what if a *different* lender had seen the same
//! signals?" — previously required re-simulating the population from
//! scratch. This crate turns one trial into a compact, self-describing,
//! replayable asset with three layers:
//!
//! * **Storage** ([`column`], [`store`]) — a dependency-free binary
//!   columnar format for [`LoopRecord`](eqimpact_core::LoopRecord) /
//!   [`FeatureMatrix`](eqimpact_core::FeatureMatrix) streams: per-column
//!   delta + zigzag-varint encoding with optional run-length encoding,
//!   CRC-32-checksummed length-framed blocks, and a versioned JSON header
//!   carrying scenario name, scale, seed, shard count and record policy.
//!   [`TraceWriter`] streams steps out as they happen; [`TraceReader`]
//!   iterates them back with bounded memory.
//! * **Replay** ([`replay`], [`offpolicy`]) — [`ReplayRunner`] re-drives
//!   the loop from the recorded signals instead of simulating the
//!   population, producing a record **byte-identical** to the original
//!   run (recomputed signals and filter outputs are verified against the
//!   recorded ones step by step); [`RecordedPopulation`] is the same idea
//!   as a drop-in [`UserPopulation`](eqimpact_core::UserPopulation)
//!   block for the standard runners. On top, [`evaluate_off_policy`]
//!   swaps in an alternative AI/filter pair and scores it against the
//!   recorded trajectory, reporting fairness and impact deltas through
//!   `eqimpact_core::fairness`.
//! * **Integration** ([`sink`], [`scenario`]) — [`TraceDirFactory`]
//!   plugs into [`ScenarioConfig::trace`](eqimpact_core::ScenarioConfig)
//!   so `run_scenario` records every loop of every trial to disk, and
//!   the [`TraceReplayer`] trait is what workload crates implement to
//!   wire `experiments record` / `experiments replay` through the
//!   registry.
//!
//! # Determinism contract
//!
//! A trace stores, per step, the visible features, broadcast signals,
//! actions and filter outputs exactly as `f64` bit patterns. Replay
//! rebuilds the workload's AI system and feedback filter from their
//! deterministic initial state, feeds them the recorded features and
//! actions, and checks that every recomputed signal and filter output
//! matches the recorded bits. Because both runners emit telemetry at the
//! sequential step barrier, a trace recorded under **any shard count**
//! replays byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod offpolicy;
pub mod replay;
pub mod scenario;
pub mod sink;
pub mod store;

pub use column::{decode_column, encode_column};
pub use offpolicy::{
    evaluate_off_policy, evaluate_off_policy_with, off_policy_report, OffPolicyOptions,
    OffPolicyOutcome, OffPolicyReport,
};
pub use replay::{RecordedPopulation, ReplayRunner};
pub use scenario::{PolicySpec, ReplaySummary, TraceReplayer};
pub use sink::{TraceDirFactory, TraceStepSink};
pub use store::{StepFrame, TraceGroups, TraceHeader, TraceReader, TraceWriter, FORMAT_VERSION};

use std::fmt;

/// Errors from writing, reading, replaying or evaluating traces.
///
/// Every malformed-input condition is a named variant — truncated or
/// corrupted traces never panic the readers.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The input does not start with the trace magic.
    BadMagic,
    /// The header's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// A frame's payload does not match its CRC-32 checksum.
    ChecksumMismatch {
        /// Zero-based index of the corrupt frame.
        frame: usize,
    },
    /// The input ended mid-structure.
    Truncated {
        /// What was being read when the input ran out.
        what: &'static str,
    },
    /// The input decoded but is structurally invalid.
    Corrupt {
        /// What is wrong.
        what: String,
    },
    /// Replay recomputed a value that differs from the recorded one —
    /// the workload's blocks are not deterministic, or the trace does
    /// not belong to them.
    ReplayMismatch {
        /// The step at which replay diverged.
        step: usize,
        /// The channel that diverged (`signals` or `filtered`).
        channel: &'static str,
    },
    /// The trace's recorded variant is not one this workload can rebuild.
    UnknownVariant {
        /// Scenario named in the header.
        scenario: String,
        /// The unrecognized variant.
        variant: String,
    },
    /// An off-policy evaluation named a policy the workload doesn't have.
    UnknownPolicy {
        /// The unrecognized policy.
        policy: String,
        /// Every policy the workload offers.
        known: Vec<&'static str>,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (reader supports {FORMAT_VERSION})"
                )
            }
            TraceError::ChecksumMismatch { frame } => {
                write!(f, "checksum mismatch in frame {frame} (corrupted trace)")
            }
            TraceError::Truncated { what } => write!(f, "truncated trace while reading {what}"),
            TraceError::Corrupt { what } => write!(f, "corrupt trace: {what}"),
            TraceError::ReplayMismatch { step, channel } => write!(
                f,
                "replay diverged from the recorded {channel} at step {step}"
            ),
            TraceError::UnknownVariant { scenario, variant } => write!(
                f,
                "scenario `{scenario}` cannot rebuild recorded variant `{variant}`"
            ),
            TraceError::UnknownPolicy { policy, known } => {
                write!(f, "unknown policy `{policy}` (known: {})", known.join(", "))
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
