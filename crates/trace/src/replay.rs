//! Deterministic replay: re-driving the closed loop from a recorded
//! trace instead of simulating the population.
//!
//! Two faces of the same idea:
//!
//! * [`ReplayRunner`] is the Result-based driver: it mirrors
//!   [`LoopRunner::run`](eqimpact_core::closed_loop::LoopRunner::run)'s
//!   step order exactly — observe (from the trace) → signal (from the
//!   replayed AI) → respond (from the trace) → filter → record → delayed
//!   retrain — and, by default, **verifies** every recomputed signal and
//!   filter output against the recorded bits, so a successful replay is
//!   a proof of byte-identity, and a corrupt or foreign trace surfaces
//!   as a named [`TraceError`] instead of bad data.
//! * [`RecordedPopulation`] implements the core
//!   [`UserPopulation`] contract directly, so a trace can stand in for a
//!   live population anywhere a runner takes one (the cross-runner
//!   property tests drive a standard `LoopRunner` over it).

use crate::store::{StepFrame, TraceHeader, TraceReader};
use crate::TraceError;
use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::closed_loop::{AiSystem, Feedback, FeedbackFilter, UserPopulation};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::LoopRecord;
use eqimpact_stats::SimRng;
use std::collections::VecDeque;
use std::io::Read;

/// Bitwise equality over float slices (NaN == NaN, +0 != -0): replay
/// verification is about byte-identity, not numeric closeness.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Re-drives a recorded loop against a freshly built AI system and
/// feedback filter (see the module docs). The delay line and record
/// policy come from the trace header, so the produced [`LoopRecord`] is
/// byte-identical to the original run's.
pub struct ReplayRunner<S, F, R: Read> {
    reader: TraceReader<R>,
    ai: S,
    filter: F,
    verify: bool,
    use_checkpoints: bool,
    restored: usize,
    checkpoint: ModelCheckpoint,
    frame: StepFrame,
    signals: Vec<f64>,
    pending: VecDeque<Feedback>,
    spare: Vec<Feedback>,
}

impl<S: AiSystem, F: FeedbackFilter, R: Read> ReplayRunner<S, F, R> {
    /// Wraps an opened trace with the blocks to replay it against.
    /// Verification is on by default, and so is the checkpoint
    /// fast-path (a no-op on checkpoint-free traces).
    pub fn new(reader: TraceReader<R>, ai: S, filter: F) -> Self {
        ReplayRunner {
            reader,
            ai,
            filter,
            verify: true,
            use_checkpoints: true,
            restored: 0,
            checkpoint: ModelCheckpoint::new(),
            frame: StepFrame::default(),
            signals: Vec::new(),
            pending: VecDeque::new(),
            spare: Vec::new(),
        }
    }

    /// Enables or disables per-step verification of the recomputed
    /// signals and filter outputs against the recorded ones.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Enables or disables the checkpoint fast-path: when on (the
    /// default) a recorded model checkpoint replaces the corresponding
    /// `retrain` call wherever the AI system accepts it, skipping
    /// training entirely. Per-step verification still applies, so a
    /// restored model that diverges from the recorded signals surfaces
    /// as a [`TraceError::ReplayMismatch`].
    pub fn use_checkpoints(mut self, on: bool) -> Self {
        self.use_checkpoints = on;
        self
    }

    /// How many retrains were replaced by checkpoint restores so far.
    pub fn checkpoints_restored(&self) -> usize {
        self.restored
    }

    /// The trace's provenance header.
    pub fn header(&self) -> &TraceHeader {
        self.reader.header()
    }

    /// Replays the whole trace, returning the reconstructed record.
    pub fn run(&mut self) -> Result<LoopRecord, TraceError> {
        let delay = self.reader.header().delay;
        let policy = self.reader.header().policy;
        let mut record: Option<LoopRecord> = None;
        while self.reader.next_step(&mut self.frame)? {
            let k = self.frame.step;
            let record = record
                .get_or_insert_with(|| LoopRecord::with_policy(self.frame.signals.len(), policy));

            self.ai
                .signals_into(k, &self.frame.visible, &mut self.signals);
            if self.verify && !bits_equal(&self.signals, &self.frame.signals) {
                return Err(TraceError::ReplayMismatch {
                    step: k,
                    channel: "signals",
                });
            }

            let mut feedback = self.spare.pop().unwrap_or_default();
            self.filter.apply_into(
                k,
                &self.frame.visible,
                &self.signals,
                &self.frame.actions,
                &mut feedback,
            );
            if self.verify && !bits_equal(&feedback.per_user, &self.frame.filtered) {
                return Err(TraceError::ReplayMismatch {
                    step: k,
                    channel: "filtered",
                });
            }
            record.push_step(&self.signals, &self.frame.actions, &feedback.per_user);

            self.pending.push_back(feedback);
            if self.pending.len() > delay {
                let due = self.pending.pop_front().expect("non-empty by check");
                // The checkpoint of step k's retrain sits directly after
                // the step-k frame; restore it instead of retraining
                // when present and accepted. A missing or rejected
                // checkpoint falls back to the real retrain, so partial
                // support degrades to correctness, not corruption.
                let mut restored = false;
                if self.use_checkpoints && self.reader.next_checkpoint(&mut self.checkpoint)? {
                    restored = self.ai.restore_checkpoint(&self.checkpoint);
                    if restored {
                        let _ = self.filter.restore_checkpoint(&self.checkpoint);
                    }
                }
                if restored {
                    self.restored += 1;
                } else {
                    self.ai.retrain(k, &due);
                }
                self.spare.push(due);
            }
        }
        Ok(record.unwrap_or_else(|| {
            let users = self.reader.groups().map(|g| g.codes.len()).unwrap_or(0);
            LoopRecord::with_policy(users, policy)
        }))
    }

    /// Decomposes the runner back into its blocks (e.g. to inspect the
    /// replayed AI's final model).
    pub fn into_parts(self) -> (S, F) {
        (self.ai, self.filter)
    }
}

/// A recorded trace as a drop-in [`UserPopulation`] block: `observe`
/// serves the recorded visible features, `respond` the recorded actions,
/// and the runner's RNG is ignored (the trace *is* the randomness).
///
/// This is the bridge into the infallible runner APIs, so trace errors
/// mid-run **panic** with the underlying [`TraceError`] message; use
/// [`ReplayRunner`] for Result-based replay of untrusted inputs.
pub struct RecordedPopulation<R: Read> {
    reader: TraceReader<R>,
    frame: StepFrame,
    users: usize,
    /// Whether `frame` holds a step not yet consumed by `observe`.
    primed: bool,
}

impl<R: Read> RecordedPopulation<R> {
    /// Opens a recorded population, priming the first step (so the user
    /// count is known up front). Zero-step traces yield an empty
    /// population.
    pub fn new(mut reader: TraceReader<R>) -> Result<Self, TraceError> {
        let mut frame = StepFrame::default();
        let primed = reader.next_step(&mut frame)?;
        let users = if primed {
            frame.signals.len()
        } else {
            reader.groups().map(|g| g.codes.len()).unwrap_or(0)
        };
        Ok(RecordedPopulation {
            reader,
            frame,
            users,
            primed,
        })
    }

    /// The trace's provenance header.
    pub fn header(&self) -> &TraceHeader {
        self.reader.header()
    }

    fn frame_for(&mut self, k: usize, what: &str) -> &StepFrame {
        while self.primed && self.frame.step < k {
            self.primed = self
                .reader
                .next_step(&mut self.frame)
                .unwrap_or_else(|e| panic!("RecordedPopulation: {e}"));
        }
        assert!(
            self.primed && self.frame.step == k,
            "RecordedPopulation: {what} asked for step {k} but the trace has no such step"
        );
        &self.frame
    }
}

impl<R: Read> UserPopulation for RecordedPopulation<R> {
    fn user_count(&self) -> usize {
        self.users
    }

    fn observe_into(&mut self, k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
        let frame = self.frame_for(k, "observe");
        out.fill_from(&frame.visible);
    }

    fn respond_into(&mut self, k: usize, _signals: &[f64], _rng: &mut SimRng, out: &mut Vec<f64>) {
        let frame = self.frame_for(k, "respond");
        out.clear();
        out.extend_from_slice(&frame.actions);
    }
}
