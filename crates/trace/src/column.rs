//! The per-column codec: delta + zigzag-varint with optional run-length
//! encoding.
//!
//! A column is a sequence of `u64` words (`f64` bit patterns for the
//! telemetry channels, raw codes for group metadata). Encoding is
//! delta-first — each word is stored as its wrapping difference from the
//! previous one, zigzag-mapped so small signed deltas become short
//! varints — and the encoder then picks, per column, between the plain
//! delta stream and a run-length form `(run length, delta)` that
//! collapses constant stretches (identical consecutive values are runs
//! of delta 0). The block's 1-byte tag records every choice, so decoding
//! needs no configuration.
//!
//! Float columns get one extra per-column choice of *word domain*:
//!
//! * **raw** — the plain `f64` bit pattern. Values of similar magnitude
//!   share sign/exponent/top-mantissa bits, so their pattern deltas
//!   drop the shared high bits and varint-encode in ~8 bytes instead of
//!   10 — the better domain for full-mantissa data (sampled incomes,
//!   running averages).
//! * **swapped** — the byte-reversed pattern. "Simple" constants (0.0,
//!   1.0, 50.0, …) have trailing-zero mantissa bytes, which
//!   byte-reversal turns into leading zeros that varints drop entirely —
//!   the better domain for indicator/step-function columns.
//!
//! The encoder sizes all four (domain × run-length) candidates and keeps
//! the smallest; every choice is a bijection, so encoding is lossless
//! down to NaN payloads and signed zeros.

use eqimpact_stats::codec::{read_varint, write_varint, zigzag_decode, zigzag_encode};

/// Tag bit selecting the run-length form (`(run, delta)` pairs).
pub(crate) const TAG_RLE_BIT: u8 = 1;

/// Tag bit selecting the byte-swapped word domain (float columns only).
pub(crate) const TAG_SWAP_BIT: u8 = 2;

/// All tag bits a valid block may carry.
pub(crate) const TAG_MASK: u8 = TAG_RLE_BIT | TAG_SWAP_BIT;

/// Appends the zigzag varint of the delta `current - previous` (wrapping).
#[inline]
fn push_delta(out: &mut Vec<u8>, previous: u64, current: u64) {
    write_varint(out, zigzag_encode(current.wrapping_sub(previous) as i64));
}

/// Encodes `values` as one block appended to `out`: a 1-byte tag
/// (`tag_bits` plus the run-length bit when that form is smaller)
/// followed by the delta stream.
fn encode_words(values: &[u64], tag_bits: u8, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(tag_bits);
    let mut previous = 0u64;
    for &v in values {
        push_delta(out, previous, v);
        previous = v;
    }
    let plain_len = out.len() - start;

    // RLE alternative: runs of equal *deltas*, so both constant
    // stretches (delta 0) and affine ramps collapse.
    let mut rle = Vec::with_capacity(plain_len.min(64));
    rle.push(tag_bits | TAG_RLE_BIT);
    let mut previous = 0u64;
    let mut i = 0;
    while i < values.len() {
        let delta = values[i].wrapping_sub(previous) as i64;
        let mut run = 1usize;
        while i + run < values.len()
            && values[i + run].wrapping_sub(values[i + run - 1]) as i64 == delta
        {
            run += 1;
        }
        write_varint(&mut rle, run as u64);
        write_varint(&mut rle, zigzag_encode(delta));
        previous = values[i + run - 1];
        i += run;
    }

    if rle.len() < plain_len {
        out.truncate(start);
        out.extend_from_slice(&rle);
    }
}

/// Decodes one block of exactly `len` words starting at `*pos` in
/// `bytes`, advancing `*pos` past it. The words come back in the block's
/// *encoded domain*; the returned tag tells the caller whether that
/// domain is byte-swapped. Returns `None` on an unknown tag, truncated
/// varints, or run lengths not summing to `len` — never panics.
fn decode_words(bytes: &[u8], pos: &mut usize, len: usize, out: &mut Vec<u64>) -> Option<u8> {
    out.clear();
    // Reserve no more than the input could plausibly describe up front
    // (a plain stream needs >= 1 byte per value); a hostile `len` with a
    // short RLE stream then grows geometrically instead of asking for
    // one absurd allocation.
    out.reserve(len.min(bytes.len().saturating_sub(*pos)));
    let &tag = bytes.get(*pos)?;
    if tag & !TAG_MASK != 0 {
        return None;
    }
    *pos += 1;
    let mut previous = 0u64;
    if tag & TAG_RLE_BIT == 0 {
        for _ in 0..len {
            let delta = zigzag_decode(read_varint(bytes, pos)?);
            previous = previous.wrapping_add(delta as u64);
            out.push(previous);
        }
    } else {
        while out.len() < len {
            let run = read_varint(bytes, pos)?;
            let delta = zigzag_decode(read_varint(bytes, pos)?);
            if run == 0 || run > (len - out.len()) as u64 {
                return None;
            }
            for _ in 0..run {
                previous = previous.wrapping_add(delta as u64);
                out.push(previous);
            }
        }
    }
    Some(tag)
}

/// Encodes a `u64` column (raw word domain) as one block appended to
/// `out` — the form group-code metadata uses.
pub fn encode_column(values: &[u64], out: &mut Vec<u8>) {
    encode_words(values, 0, out);
}

/// Decodes a raw-domain `u64` column of `len` values (inverse of
/// [`encode_column`]). Returns `None` on malformed input or a
/// swapped-domain tag (raw columns never carry one).
pub fn decode_column(bytes: &[u8], pos: &mut usize, len: usize, out: &mut Vec<u64>) -> Option<()> {
    let tag = decode_words(bytes, pos, len, out)?;
    if tag & TAG_SWAP_BIT != 0 {
        return None;
    }
    Some(())
}

/// Encodes a float column as one block, trying both word domains (see
/// the module docs) and keeping the smaller. `scratch` is reused for the
/// word buffer.
pub fn encode_f64_column(values: &[f64], scratch: &mut Vec<u64>, out: &mut Vec<u8>) {
    scratch.clear();
    scratch.extend(values.iter().map(|v| v.to_bits()));
    let start = out.len();
    encode_words(scratch, 0, out);
    let raw_len = out.len() - start;

    for w in scratch.iter_mut() {
        *w = w.swap_bytes();
    }
    let mut swapped = Vec::with_capacity(raw_len);
    encode_words(scratch, TAG_SWAP_BIT, &mut swapped);
    if swapped.len() < raw_len {
        out.truncate(start);
        out.extend_from_slice(&swapped);
    }
}

/// Decodes a float column of `len` values into `out` (cleared first),
/// reusing `scratch` for the word buffer. Inverse of
/// [`encode_f64_column`]; never panics on malformed input.
pub fn decode_f64_column(
    bytes: &[u8],
    pos: &mut usize,
    len: usize,
    scratch: &mut Vec<u64>,
    out: &mut Vec<f64>,
) -> Option<()> {
    let tag = decode_words(bytes, pos, len, scratch)?;
    out.clear();
    if tag & TAG_SWAP_BIT != 0 {
        out.extend(scratch.iter().map(|&w| f64::from_bits(w.swap_bytes())));
    } else {
        out.extend(scratch.iter().map(|&w| f64::from_bits(w)));
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) -> Vec<u8> {
        let mut bytes = Vec::new();
        encode_column(values, &mut bytes);
        let mut pos = 0;
        let mut back = Vec::new();
        decode_column(&bytes, &mut pos, values.len(), &mut back).expect("decodes");
        assert_eq!(pos, bytes.len(), "block fully consumed");
        assert_eq!(back, values);
        bytes
    }

    fn roundtrip_f64(values: &[f64]) -> Vec<u8> {
        let mut scratch = Vec::new();
        let mut bytes = Vec::new();
        encode_f64_column(values, &mut scratch, &mut bytes);
        let mut pos = 0;
        let mut back = Vec::new();
        decode_f64_column(&bytes, &mut pos, values.len(), &mut scratch, &mut back)
            .expect("decodes");
        assert_eq!(pos, bytes.len(), "block fully consumed");
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, back_bits);
        bytes
    }

    #[test]
    fn roundtrips_plain_and_rle_shapes() {
        roundtrip(&[]);
        roundtrip(&[42]);
        roundtrip(&[0, 0, 0, 0]);
        roundtrip(&[1, 2, 3, 4, 5, 6]); // affine ramp -> one RLE run
        roundtrip(&[u64::MAX, 0, u64::MAX, 1, 7]);
        let mixed: Vec<u64> = (0..200)
            .map(|i| if i % 7 == 0 { 0 } else { i * 0x9E37_79B9 })
            .collect();
        roundtrip(&mixed);
    }

    #[test]
    fn constant_columns_collapse() {
        let constant = vec![0x3FF0_0000_0000_0000u64; 10_000];
        let bytes = roundtrip(&constant);
        // Tag + one (run, delta) pair: a handful of bytes for 10k values.
        assert!(
            bytes.len() < 16,
            "constant column took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn float_columns_roundtrip_lossless() {
        roundtrip_f64(&[]);
        roundtrip_f64(&[
            0.0,
            -0.0,
            1.0,
            -1.0,
            50.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
            f64::from_bits(0x7FF8_DEAD_BEEF_0001), // NaN payload
        ]);
    }

    #[test]
    fn indicator_columns_pick_the_swapped_domain() {
        // 0/1 step functions: the swapped domain turns every transition
        // into a ~3-byte varint instead of 10.
        let values: Vec<f64> = (0..1000)
            .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
            .collect();
        let bytes = roundtrip_f64(&values);
        assert!(
            bytes.len() < 4 * values.len(),
            "indicator column took {} bytes for {} values",
            bytes.len(),
            values.len()
        );
    }

    #[test]
    fn similar_magnitude_columns_beat_the_ten_byte_worst_case() {
        // Full-mantissa values in one magnitude range: raw-pattern deltas
        // drop the shared sign/exponent bits.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let values: Vec<f64> = (0..1000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                20.0 + 480.0 * ((x >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect();
        let bytes = roundtrip_f64(&values);
        assert!(
            bytes.len() <= 9 * values.len(),
            "similar-magnitude column took {} bytes for {} values",
            bytes.len(),
            values.len()
        );
    }

    #[test]
    fn decoder_rejects_malformed_blocks() {
        let mut out = Vec::new();
        // Unknown tag.
        let mut pos = 0;
        assert!(decode_column(&[9, 0], &mut pos, 1, &mut out).is_none());
        // Swapped-domain tag on a raw u64 column.
        pos = 0;
        assert!(decode_column(&[TAG_SWAP_BIT, 0], &mut pos, 1, &mut out).is_none());
        // Truncated varint.
        pos = 0;
        assert!(decode_column(&[0, 0x80], &mut pos, 1, &mut out).is_none());
        // RLE run overshooting the expected length.
        let mut bad = vec![TAG_RLE_BIT];
        eqimpact_stats::codec::write_varint(&mut bad, 5); // run of 5
        eqimpact_stats::codec::write_varint(&mut bad, 0);
        pos = 0;
        assert!(decode_column(&bad, &mut pos, 3, &mut out).is_none());
        // Zero-length run.
        let mut zero = vec![TAG_RLE_BIT];
        eqimpact_stats::codec::write_varint(&mut zero, 0);
        eqimpact_stats::codec::write_varint(&mut zero, 0);
        pos = 0;
        assert!(decode_column(&zero, &mut pos, 3, &mut out).is_none());
        // Empty input.
        pos = 0;
        assert!(decode_column(&[], &mut pos, 1, &mut out).is_none());
    }
}
