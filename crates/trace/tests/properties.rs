//! Property-based tests of the trace store: codec round-trips over
//! random bit-pattern streams, end-to-end write→read equality, and the
//! no-panic contract on corrupted or truncated inputs.

use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::RecordPolicy;
use eqimpact_core::scenario::Scale;
use eqimpact_trace::{
    decode_column, encode_column, StepFrame, TraceError, TraceHeader, TraceReader, TraceWriter,
    FORMAT_VERSION,
};
use proptest::prelude::*;

/// One step's channels: visible (flat, width 2), signals, actions,
/// filtered.
type StepData = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

fn header() -> TraceHeader {
    TraceHeader {
        version: FORMAT_VERSION,
        scenario: "synthetic".to_string(),
        variant: "test".to_string(),
        trial: 3,
        scale: Scale::Quick,
        seed: u64::MAX - 17,
        shards: 4,
        delay: 1,
        policy: RecordPolicy::Full,
        checkpoints: false,
    }
}

/// Writes a synthetic trace of the given step channels (each step: one
/// row of width 2 per user) and returns the bytes.
fn write_trace(steps: &[StepData]) -> Vec<u8> {
    let mut writer = TraceWriter::new(Vec::new(), &header()).expect("header");
    if let Some((visible, _, _, _)) = steps.first() {
        let codes: Vec<u32> = (0..visible.len() / 2).map(|i| (i % 3) as u32).collect();
        writer
            .write_groups(&["a", "b", "c"], &codes)
            .expect("groups");
    }
    for (visible, signals, actions, filtered) in steps {
        let mut matrix = FeatureMatrix::new(2);
        for row in visible.chunks(2) {
            matrix.push_row(row);
        }
        writer
            .write_step(&matrix, signals, actions, filtered)
            .expect("step");
    }
    writer.finish().expect("footer")
}

/// `users` rows of width 2 plus the three channels, from raw u64 bit
/// patterns (so NaNs, infinities and signed zeros all occur).
fn step_strategy(users: usize) -> impl Strategy<Value = StepData> {
    let channel = move |len: usize| {
        prop::collection::vec(0u64..=u64::MAX, len..=len)
            .prop_map(|bits| bits.into_iter().map(f64::from_bits).collect::<Vec<f64>>())
    };
    (
        channel(users * 2),
        channel(users),
        channel(users),
        channel(users),
    )
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #[test]
    fn u64_columns_roundtrip_any_stream(values in prop::collection::vec(0u64..=u64::MAX, 0..200)) {
        let mut bytes = Vec::new();
        encode_column(&values, &mut bytes);
        let mut pos = 0;
        let mut back = Vec::new();
        prop_assert!(decode_column(&bytes, &mut pos, values.len(), &mut back).is_some());
        prop_assert_eq!(pos, bytes.len());
        prop_assert_eq!(back, values);
    }

    #[test]
    fn runny_columns_roundtrip_and_compress(
        runs in prop::collection::vec((1usize..20, 0u64..=u64::MAX), 1..20)
    ) {
        let values: Vec<u64> = runs
            .iter()
            .flat_map(|&(len, v)| std::iter::repeat_n(v, len))
            .collect();
        let mut bytes = Vec::new();
        encode_column(&values, &mut bytes);
        let mut pos = 0;
        let mut back = Vec::new();
        prop_assert!(decode_column(&bytes, &mut pos, values.len(), &mut back).is_some());
        prop_assert_eq!(back, values);
        // RLE caps the cost at ~one (run, delta) pair per run.
        prop_assert!(bytes.len() <= 1 + runs.len() * 21 + 16);
    }

    #[test]
    fn trace_roundtrips_random_bit_patterns(step_data in prop::collection::vec(step_strategy(5), 0..6)) {
        let bytes = write_trace(&step_data);
        let mut input: &[u8] = &bytes;
        let mut reader = TraceReader::new(&mut input).expect("opens");
        prop_assert_eq!(reader.header(), &header());
        let mut frame = StepFrame::default();
        for (k, (visible, signals, actions, filtered)) in step_data.iter().enumerate() {
            prop_assert!(reader.next_step(&mut frame).expect("step"));
            prop_assert_eq!(frame.step, k);
            prop_assert_eq!(bits(&frame.visible.to_row_major()), bits(visible));
            prop_assert_eq!(bits(&frame.signals), bits(signals));
            prop_assert_eq!(bits(&frame.actions), bits(actions));
            prop_assert_eq!(bits(&frame.filtered), bits(filtered));
        }
        prop_assert!(!reader.next_step(&mut frame).expect("footer"));
    }

    #[test]
    fn corrupted_byte_never_panics_and_flips_are_checksum_errors(
        step_data in prop::collection::vec(step_strategy(3), 1..4),
        position in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let bytes = write_trace(&step_data);
        let mut corrupted = bytes.clone();
        let at = position % corrupted.len();
        corrupted[at] ^= flip;
        // Reading a corrupted trace must never panic: every outcome is
        // Ok (the flip landed outside a read path we exercise) or a
        // named TraceError.
        let mut input: &[u8] = &corrupted;
        match TraceReader::new(&mut input) {
            Err(_) => {}
            Ok(mut reader) => {
                let mut frame = StepFrame::default();
                while let Ok(true) = reader.next_step(&mut frame) {}
            }
        }
        // A flip inside a frame *payload* is specifically a checksum
        // mismatch (the magic is 8 bytes, each frame starts with a
        // 9-byte header). Corrupt the first header payload byte:
        let mut payload_hit = bytes.clone();
        payload_hit[8 + 9] ^= flip;
        let mut input: &[u8] = &payload_hit;
        match TraceReader::new(&mut input) {
            Err(TraceError::ChecksumMismatch { frame: 0 }) => {}
            other => prop_assert!(false, "expected ChecksumMismatch, got {:?}", other.err()),
        }
    }

    #[test]
    fn truncated_traces_are_named_errors_not_panics(
        step_data in prop::collection::vec(step_strategy(3), 1..4),
        keep_fraction in 0.0f64..1.0,
    ) {
        let bytes = write_trace(&step_data);
        let keep = ((bytes.len() as f64) * keep_fraction) as usize;
        prop_assume!(keep < bytes.len());
        let cut = &bytes[..keep];
        let mut input: &[u8] = cut;
        let outcome = TraceReader::new(&mut input).and_then(|mut reader| {
            let mut frame = StepFrame::default();
            while reader.next_step(&mut frame)? {}
            Ok(())
        });
        // Dropping the footer (or more) must surface as an error —
        // a truncated trace can never read back as complete.
        match outcome {
            Err(
                TraceError::Truncated { .. }
                | TraceError::ChecksumMismatch { .. }
                | TraceError::BadMagic
                | TraceError::Corrupt { .. },
            ) => {}
            other => prop_assert!(false, "truncation must be a named error, got {other:?}"),
        }
    }
}

#[test]
fn empty_trace_reads_back_header_and_groups() {
    let bytes = write_trace(&[]);
    let mut input: &[u8] = &bytes;
    let mut reader = TraceReader::new(&mut input).unwrap();
    assert_eq!(reader.header().seed, u64::MAX - 17, "u64 seeds survive");
    assert!(reader.groups().is_none(), "no steps -> no groups written");
    let mut frame = StepFrame::default();
    assert!(!reader.next_step(&mut frame).unwrap());
    let record = reader.read_record().unwrap();
    assert_eq!(record.steps(), 0);
}

#[test]
fn groups_roundtrip_with_labels() {
    let steps = vec![(
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        vec![1.0, 0.0, 1.0],
        vec![0.0, 1.0, 0.0],
        vec![0.5, 0.25, 0.125],
    )];
    let bytes = write_trace(&steps);
    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input).unwrap();
    let groups = reader.groups().expect("groups frame present");
    assert_eq!(groups.labels, vec!["a", "b", "c"]);
    assert_eq!(groups.codes, vec![0, 1, 2]);
    assert_eq!(groups.index_sets(), vec![vec![0], vec![1], vec![2]]);
}

#[test]
fn bad_magic_is_a_named_error() {
    let mut input: &[u8] = b"NOTATRACE-AT-ALL";
    match TraceReader::new(&mut input) {
        Err(TraceError::BadMagic) => {}
        other => panic!("expected BadMagic, got {:?}", other.err()),
    }
}

#[test]
fn checkpoint_frames_roundtrip_and_are_transparent_to_steps() {
    use eqimpact_core::ModelCheckpoint;
    let steps = [
        (
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.5, 0.25],
        ),
        (
            vec![5.0, 6.0, 7.0, 8.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.25, 0.5],
        ),
    ];
    let checkpointed_header = header().with_checkpoints();
    assert_eq!(checkpointed_header.version, FORMAT_VERSION);
    let mut writer = TraceWriter::new(Vec::new(), &checkpointed_header).expect("header");
    let mut cp = ModelCheckpoint::new();
    for (k, (visible, signals, actions, filtered)) in steps.iter().enumerate() {
        let mut matrix = FeatureMatrix::new(2);
        for row in visible.chunks(2) {
            matrix.push_row(row);
        }
        writer
            .write_step(&matrix, signals, actions, filtered)
            .expect("step");
        cp.reset(k);
        cp.push_field("weights", &[0.5 + k as f64, -1.0]);
        cp.push_scalar("intercept", k as f64);
        writer.write_checkpoint(&cp).expect("checkpoint");
    }
    let bytes = writer.finish().expect("footer");

    // Interleaved read: step, then its checkpoint.
    let mut input: &[u8] = &bytes;
    let mut reader = TraceReader::new(&mut input).expect("opens");
    assert!(reader.header().checkpoints);
    let mut frame = StepFrame::default();
    let mut got = ModelCheckpoint::new();
    for k in 0..steps.len() {
        assert!(!reader.next_checkpoint(&mut got).expect("no checkpoint yet"));
        assert!(reader.next_step(&mut frame).expect("step"));
        assert!(reader.next_checkpoint(&mut got).expect("checkpoint"));
        assert_eq!(got.step, k);
        assert_eq!(got.field("weights"), Some(&[0.5 + k as f64, -1.0][..]));
        assert_eq!(got.scalar("intercept"), Some(k as f64));
    }
    assert!(!reader.next_step(&mut frame).expect("footer"));
    assert!(!reader.next_checkpoint(&mut got).expect("done"));

    // Step-only read: checkpoints are skipped transparently, the record
    // is unchanged.
    let mut input: &[u8] = &bytes;
    let mut reader = TraceReader::new(&mut input).expect("opens");
    let record = reader.read_record().expect("record");
    assert_eq!(record.steps(), steps.len());
    assert_eq!(record.signals(1), &steps[1].1[..]);
}

#[test]
fn checkpoint_free_headers_stay_base_version() {
    use eqimpact_core::scenario::TraceMeta;
    let meta = TraceMeta {
        scenario: "synthetic".to_string(),
        variant: "test".to_string(),
        trial: 0,
        scale: Scale::Quick,
        seed: 7,
        shards: 1,
        delay: 1,
        policy: RecordPolicy::Full,
    };
    let plain = TraceHeader::from_meta(&meta);
    assert_eq!(
        plain.version, 1,
        "plain traces keep the version-1 format for old readers"
    );
    assert!(!plain.checkpoints);
    let writer = TraceWriter::new(Vec::new(), &plain).unwrap();
    let bytes = writer.finish().unwrap();
    let mut input: &[u8] = &bytes;
    let reader = TraceReader::new(&mut input).unwrap();
    assert_eq!(reader.header().version, 1);
    assert!(!reader.header().checkpoints);
    assert_eq!(
        TraceHeader::from_meta(&meta).with_checkpoints().version,
        FORMAT_VERSION
    );
}

#[test]
fn future_versions_are_rejected_by_name() {
    // A header frame claiming version 99: the writer stamps whatever
    // the header says, the reader rejects it by name.
    let writer = TraceWriter::new(
        Vec::new(),
        &TraceHeader {
            version: 99,
            ..header()
        },
    )
    .unwrap();
    let bytes = writer.finish().unwrap();
    let mut input: &[u8] = &bytes;
    match TraceReader::new(&mut input) {
        Err(TraceError::UnsupportedVersion(99)) => {}
        other => panic!("expected UnsupportedVersion, got {:?}", other.err()),
    }
}
