//! A4: regenerates the feedback-delay sensitivity sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{ablate_delay, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_delay");
    group.sample_size(10);
    group.bench_function("delay_sweep_quick", |b| {
        b.iter(|| {
            let a4 = ablate_delay(Scale::Quick, None).expect("ablate_delay");
            assert_eq!(a4.delays.len(), 4);
            a4
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
