//! F4: regenerates the per-user ADR trajectories of Fig. 4.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{credit_outcomes, fig4_series, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    let outcomes = credit_outcomes(Scale::Quick);
    group.bench_function("user_adr_extraction", |b| {
        b.iter(|| {
            let series = fig4_series(&outcomes);
            assert!(!series.is_empty());
            series
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
