//! P1-P4: performance microbenchmarks of the building blocks (not paper
//! artifacts): loop step throughput, IRLS fitting, Markov operator
//! application, and invariant-measure estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqimpact_core::closed_loop::{
    AiSystem, DynLoopRunner, Feedback, FeedbackFilter, LoopBuilder, LoopRunner, MeanFilter,
    UserPopulation,
};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::RecordPolicy;
use eqimpact_credit::sim::{run_trial, CreditConfig, LenderKind};
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::invariant::estimate_invariant_measure;
use eqimpact_markov::operator::{markov_operator_apply, ParticleMeasure};
use eqimpact_ml::logistic::{sigmoid, LogisticRegression};
use eqimpact_ml::Dataset;
use eqimpact_stats::SimRng;

/// Synthetic AI block implementing the in-place hook (zero allocation).
struct ThresholdAi;

impl AiSystem for ThresholdAi {
    fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            visible
                .rows()
                .map(|row| if row[0] > 0.5 { 1.0 } else { 0.3 }),
        );
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

/// The same AI through the owned-return path (allocates per step), as the
/// pre-redesign boxed runner did.
struct ThresholdAiAlloc;

impl AiSystem for ThresholdAiAlloc {
    fn signals(&mut self, _k: usize, visible: &FeatureMatrix) -> Vec<f64> {
        visible
            .rows()
            .map(|row| if row[0] > 0.5 { 1.0 } else { 0.3 })
            .collect()
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

/// Synthetic width-2 population with in-place hooks.
struct SyntheticUsers {
    n: usize,
}

impl SyntheticUsers {
    fn feature(&self, k: usize, i: usize, j: usize) -> f64 {
        ((i * 31 + k * 17 + j * 7) % 100) as f64 / 100.0
    }
}

impl UserPopulation for SyntheticUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe_into(&mut self, k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.n, 2);
        for i in 0..self.n {
            let row = out.row_mut(i);
            row[0] = self.feature(k, i, 0);
            row[1] = self.feature(k, i, 1);
        }
    }
    fn respond_into(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            signals
                .iter()
                .map(|&s| if rng.bernoulli(0.2 + 0.6 * s) { 1.0 } else { 0.0 }),
        );
    }
}

/// [`MeanFilter`] forced through the owned-return path: only `apply` is
/// implemented, so the runner's defaulted `apply_into` replaces the whole
/// recycled [`Feedback`] with a freshly allocated one every step — the
/// pre-redesign filter cost (per-step per_user/visible/signals/actions
/// allocations).
struct MeanFilterAlloc(MeanFilter);

impl FeedbackFilter for MeanFilterAlloc {
    fn apply(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback {
        self.0.apply(k, visible, signals, actions)
    }
}

/// The same population through the owned-return path (allocates per step).
struct SyntheticUsersAlloc {
    inner: SyntheticUsers,
}

impl UserPopulation for SyntheticUsersAlloc {
    fn user_count(&self) -> usize {
        self.inner.n
    }
    fn observe(&mut self, k: usize, rng: &mut SimRng) -> FeatureMatrix {
        let mut out = FeatureMatrix::default();
        self.inner.observe_into(k, rng, &mut out);
        out
    }
    fn respond(&mut self, k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        let mut out = Vec::new();
        self.inner.respond_into(k, signals, rng, &mut out);
        out
    }
}

/// P0: the API-redesign headline — generic in-place runner vs the fully
/// boxed owned-return runner (the pre-redesign shape) on the same
/// synthetic loop.
fn bench_loop_api(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/loop_api");
    group.sample_size(20);
    for &(users, steps) in &[(1_000usize, 200usize), (10_000, 50)] {
        let label = format!("{users}users_{steps}steps");
        group.bench_function(BenchmarkId::new("generic_inplace", &label), |b| {
            b.iter(|| {
                let mut runner = LoopBuilder::new(ThresholdAi, SyntheticUsers { n: users })
                    .filter(MeanFilter::default())
                    .delay(1)
                    .record(RecordPolicy::Thin)
                    .build();
                runner.run(steps, &mut SimRng::new(42))
            })
        });
        group.bench_function(BenchmarkId::new("dyn_boxed_alloc", &label), |b| {
            b.iter(|| {
                let mut runner: DynLoopRunner = LoopRunner::new(
                    Box::new(ThresholdAiAlloc),
                    Box::new(SyntheticUsersAlloc {
                        inner: SyntheticUsers { n: users },
                    }),
                    Box::new(MeanFilterAlloc(MeanFilter::default())),
                    1,
                );
                runner.set_record_policy(RecordPolicy::Thin);
                runner.run(steps, &mut SimRng::new(42))
            })
        });
    }
    group.finish();
}

fn bench_loop_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/credit_loop");
    group.sample_size(10);
    for &users in &[100usize, 500, 1000] {
        group.bench_with_input(BenchmarkId::new("full_run_19_steps", users), &users, |b, &n| {
            let config = CreditConfig {
                users: n,
                steps: 19,
                trials: 1,
                seed: 1,
                lender: LenderKind::Scorecard,
                delay: 1,
            };
            b.iter(|| run_trial(&config, 0));
        });
    }
    group.finish();
}

fn bench_irls(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/irls");
    for &n in &[1_000usize, 10_000] {
        let mut rng = SimRng::new(3);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.uniform(), rng.uniform_in(-1.0, 1.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| {
                if rng.bernoulli(sigmoid(-4.0 * r[0] + 3.0 * r[1])) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::new(&rows, &labels).unwrap();
        group.bench_with_input(BenchmarkId::new("fit", n), &data, |b, data| {
            let fitter = LogisticRegression::default();
            b.iter(|| fitter.fit(data).unwrap());
        });
    }
    group.finish();
}

fn bench_markov_operator(c: &mut Criterion) {
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();
    let mut group = c.benchmark_group("perf/markov");
    group.bench_function("operator_apply", |b| {
        b.iter(|| markov_operator_apply(&ms, |x| x[0] * x[0], &[0.37]))
    });
    group.bench_function("trajectory_10k_steps", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(5);
            ms.trajectory(&[0.5], 10_000, &mut rng)
        })
    });
    group.finish();
}

fn bench_invariant_measure(c: &mut Criterion) {
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();
    let mut group = c.benchmark_group("perf/invariant");
    group.sample_size(10);
    group.bench_function("particle_estimation_1k", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(6);
            estimate_invariant_measure(
                &ms,
                &ParticleMeasure::dirac(&[0.9]),
                1_000,
                100,
                0.02,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_loop_api,
    bench_loop_step,
    bench_irls,
    bench_markov_operator,
    bench_invariant_measure
);
criterion_main!(benches);
