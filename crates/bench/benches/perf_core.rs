//! P0-P8: performance microbenchmarks of the building blocks (not paper
//! artifacts): loop step throughput, intra-trial sharding speedup, the
//! trace store, the counterfactual lab, the columnar feature plane, IRLS
//! fitting, Markov operator application, and invariant-measure
//! estimation.
//!
//! The sharding bench (P5) additionally writes `BENCH_shard.json` (path
//! overridable via `BENCH_SHARD_OUT`) with the measured wall-clock per
//! shard count at the 100k-user x 50-step scale, so the speedup is
//! recorded, not asserted — except for one invariant that must hold on
//! any hardware: the pooled 1-shard `ShardedRunner` stays within noise
//! of the sequential `LoopRunner` (the pool's submit/barrier overhead is
//! per step, not per thread spawn, so it cannot regress the sequential
//! path). The trace bench (P6) writes
//! `BENCH_trace.json` (`BENCH_TRACE_OUT`): replay-vs-resimulate
//! wall-clock of one credit trial plus the trace's on-disk bytes against
//! the equivalent JSON dump. The counterfactual-lab bench (P7) writes
//! `BENCH_sweep.json` (`BENCH_SWEEP_OUT`): checkpointed-replay vs
//! re-simulate wall-clock plus the timing of a default-grid off-policy
//! sweep over the recorded trace. The certification bench (P9) writes
//! `BENCH_certify.json` (`BENCH_CERTIFY_OUT`): certification wall-time
//! over one checkpointed credit trace, split into its
//! streaming-extraction and theory-analysis halves. The columnar
//! bench (P8) writes
//! `BENCH_columnar.json` (`BENCH_COLUMNAR_OUT`): batched column-kernel
//! scoring versus a row-gathering baseline replicating the pre-redesign
//! row-major hot path, on the same loop at the same scale. The
//! observability bench (P10) writes `BENCH_obs.json` (`BENCH_OBS_OUT`):
//! the instrumented `LoopRunner` with the telemetry recorder disabled
//! and enabled against a hand-rolled uninstrumented twin of the same
//! loop, asserting the disabled-recorder overhead stays within
//! measurement noise of the twin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqimpact_core::closed_loop::{
    AiSystem, DynLoopRunner, Feedback, FeedbackFilter, LoopBuilder, LoopRunner, MeanFilter,
    UserPopulation,
};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::recorder::RecordPolicy;
use eqimpact_core::shard::{
    shard_bounds, ColsMut, ColsView, PopulationShard, RowStreams, ShardableAi, ShardablePopulation,
};
use eqimpact_credit::sim::{run_trial, CreditConfig, LenderKind};
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::invariant::estimate_invariant_measure;
use eqimpact_markov::operator::{markov_operator_apply, ParticleMeasure};
use eqimpact_ml::logistic::{sigmoid, LogisticModel, LogisticRegression};
use eqimpact_ml::Dataset;
use eqimpact_stats::SimRng;
use std::ops::Range;
use std::time::Instant;

/// Synthetic AI block implementing the in-place hook (zero allocation).
struct ThresholdAi;

impl AiSystem for ThresholdAi {
    fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            visible
                .col(0)
                .iter()
                .map(|&v| if v > 0.5 { 1.0 } else { 0.3 }),
        );
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

/// The same AI through the owned-return path (allocates per step), as the
/// pre-redesign boxed runner did.
struct ThresholdAiAlloc;

impl AiSystem for ThresholdAiAlloc {
    fn signals(&mut self, _k: usize, visible: &FeatureMatrix) -> Vec<f64> {
        visible
            .col(0)
            .iter()
            .map(|&v| if v > 0.5 { 1.0 } else { 0.3 })
            .collect()
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

/// Synthetic width-2 population with in-place hooks.
struct SyntheticUsers {
    n: usize,
}

impl SyntheticUsers {
    fn feature(&self, k: usize, i: usize, j: usize) -> f64 {
        ((i * 31 + k * 17 + j * 7) % 100) as f64 / 100.0
    }
}

impl UserPopulation for SyntheticUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe_into(&mut self, k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.n, 2);
        let (c0, c1) = out.cols_pair_mut(0, 1);
        for i in 0..self.n {
            c0[i] = self.feature(k, i, 0);
            c1[i] = self.feature(k, i, 1);
        }
    }
    fn respond_into(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        out.clear();
        out.extend(signals.iter().map(|&s| {
            if rng.bernoulli(0.2 + 0.6 * s) {
                1.0
            } else {
                0.0
            }
        }));
    }
}

/// [`MeanFilter`] forced through the owned-return path: only `apply` is
/// implemented, so the runner's defaulted `apply_into` replaces the whole
/// recycled [`Feedback`] with a freshly allocated one every step — the
/// pre-redesign filter cost (per-step per_user/visible/signals/actions
/// allocations).
struct MeanFilterAlloc(MeanFilter);

impl FeedbackFilter for MeanFilterAlloc {
    fn apply(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback {
        self.0.apply(k, visible, signals, actions)
    }
}

/// The same population through the owned-return path (allocates per step).
struct SyntheticUsersAlloc {
    inner: SyntheticUsers,
}

impl UserPopulation for SyntheticUsersAlloc {
    fn user_count(&self) -> usize {
        self.inner.n
    }
    fn observe(&mut self, k: usize, rng: &mut SimRng) -> FeatureMatrix {
        let mut out = FeatureMatrix::default();
        self.inner.observe_into(k, rng, &mut out);
        out
    }
    fn respond(&mut self, k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        let mut out = Vec::new();
        self.inner.respond_into(k, signals, rng, &mut out);
        out
    }
}

/// P0: the API-redesign headline — generic in-place runner vs the fully
/// boxed owned-return runner (the pre-redesign shape) on the same
/// synthetic loop.
fn bench_loop_api(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/loop_api");
    group.sample_size(20);
    for &(users, steps) in &[(1_000usize, 200usize), (10_000, 50)] {
        let label = format!("{users}users_{steps}steps");
        group.bench_function(BenchmarkId::new("generic_inplace", &label), |b| {
            b.iter(|| {
                let mut runner = LoopBuilder::new(ThresholdAi, SyntheticUsers { n: users })
                    .filter(MeanFilter::default())
                    .delay(1)
                    .record(RecordPolicy::Thin)
                    .build();
                runner.run(steps, &mut SimRng::new(42))
            })
        });
        group.bench_function(BenchmarkId::new("dyn_boxed_alloc", &label), |b| {
            b.iter(|| {
                let mut runner: DynLoopRunner = LoopRunner::new(
                    Box::new(ThresholdAiAlloc),
                    Box::new(SyntheticUsersAlloc {
                        inner: SyntheticUsers { n: users },
                    }),
                    Box::new(MeanFilterAlloc(MeanFilter::default())),
                    1,
                );
                runner.set_record_policy(RecordPolicy::Thin);
                runner.run(steps, &mut SimRng::new(42))
            })
        });
    }
    group.finish();
}

/// Shard-invariant synthetic population for the sharding bench: the
/// per-user work (an index-keyed stream, a resample-like draw, a
/// Bernoulli response) mirrors the credit population's per-household
/// cost, so the measured scaling is representative.
struct ShardSynthUsers {
    n: usize,
}

struct ShardSynthShard {
    rows: Range<usize>,
}

fn synth_observe(k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
    // Row-major draw order (all of row i's draws from row i's stream)
    // with columnar writes.
    let rows = out.rows();
    let (gate, income_col) = out.cols_pair_mut(0, 1);
    for (j, i) in rows.enumerate() {
        let mut rng = streams.for_row(i);
        let income = 10.0 + 40.0 * rng.uniform() + rng.standard_normal().abs();
        gate[j] = if income >= 15.0 { 1.0 } else { 0.0 };
        income_col[j] = income + 0.001 * k as f64;
    }
}

fn synth_respond(rows: Range<usize>, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
    for (j, i) in rows.enumerate() {
        let mut rng = streams.for_row(i);
        let p = (0.1 + 0.015 * signals[j]).clamp(0.0, 1.0);
        out[j] = if rng.bernoulli(p) { 1.0 } else { 0.0 };
    }
}

impl UserPopulation for ShardSynthUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe_into(
        &mut self,
        k: usize,
        rng: &mut eqimpact_stats::SimRng,
        out: &mut FeatureMatrix,
    ) {
        out.reshape(self.n, 2);
        let streams = RowStreams::observe(rng, k);
        synth_observe(k, &streams, &mut ColsMut::full(out));
    }
    fn respond_into(
        &mut self,
        k: usize,
        signals: &[f64],
        rng: &mut eqimpact_stats::SimRng,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(self.n, 0.0);
        let streams = RowStreams::respond(rng, k);
        synth_respond(0..self.n, signals, &streams, out);
    }
}

impl ShardablePopulation for ShardSynthUsers {
    type Shard = ShardSynthShard;
    fn feature_width(&self) -> usize {
        2
    }
    fn into_row_shards(self, parts: usize) -> Vec<ShardSynthShard> {
        shard_bounds(self.n, parts)
            .into_iter()
            .map(|rows| ShardSynthShard { rows })
            .collect()
    }
    fn from_row_shards(shards: Vec<ShardSynthShard>) -> Self {
        ShardSynthUsers {
            n: shards.last().map(|s| s.rows.end).unwrap_or(0),
        }
    }
}

impl PopulationShard for ShardSynthShard {
    fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }
    fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
        synth_observe(k, streams, out);
    }
    fn respond_rows(&mut self, _k: usize, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
        synth_respond(self.rows.clone(), signals, streams, out);
    }
}

/// Income-multiple-style lender with per-row signals (cheap retrain, so
/// the parallel sweep dominates, as in a production serving loop).
struct ShardThresholdAi;

impl AiSystem for ShardThresholdAi {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        self.signals_full(k, visible, out);
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

impl ShardableAi for ShardThresholdAi {
    fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        let gate = visible.col(0);
        let income = visible.col(1);
        for (j, o) in out.iter_mut().enumerate() {
            *o = if gate[j] > 0.5 { 3.5 * income[j] } else { 0.0 };
        }
    }
}

/// One timed sharded run (`shards == 0` times the sequential
/// [`LoopRunner`] instead — the pre-sharding hot path).
fn time_one_run(users: usize, steps: usize, shards: usize) -> f64 {
    let builder = LoopBuilder::new(ShardThresholdAi, ShardSynthUsers { n: users })
        .filter(MeanFilter::default())
        .delay(1)
        .record(RecordPolicy::Thin);
    if shards == 0 {
        let mut runner = builder.build();
        let start = Instant::now();
        let record = runner.run(steps, &mut eqimpact_stats::SimRng::new(7));
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(record.steps(), steps);
        elapsed
    } else {
        let mut runner = builder.shards(shards).build_sharded();
        let start = Instant::now();
        let record = runner.run(steps, &mut eqimpact_stats::SimRng::new(7));
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(record.steps(), steps);
        elapsed
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// P5: intra-trial sharding at the 100k-user scale. Self-timed (one full
/// run per sample) and exported to `BENCH_shard.json`. Samples are taken
/// **round-robin** over the configurations, with the starting
/// configuration **rotated** every round, so neither slow phases of a
/// shared host nor a fixed within-round position can bias a leg — the
/// legs do identical work on a 1-lane budget, so any ordered-measurement
/// difference is pure drift.
fn bench_sharded_loop(_c: &mut Criterion) {
    use eqimpact_stats::json::{Json, ToJson};

    let quick = criterion::is_quick();
    let (users, steps) = (100_000usize, 50usize);
    let reps = if quick { 2 } else { 10 };
    let cores = eqimpact_core::pool::ThreadBudget::global().capacity();
    let mut shard_counts: Vec<usize> = if quick {
        vec![1, cores]
    } else {
        vec![1, 2, 4, 8, cores]
    };
    shard_counts.sort_unstable();
    shard_counts.dedup();

    println!("\n-- group: perf/sharded_loop ({users} users x {steps} steps, {cores} cores) --");

    // configs[0] is the sequential LoopRunner baseline (shards == 0
    // sentinel); the rest are the sharded legs.
    let configs: Vec<usize> = std::iter::once(0)
        .chain(shard_counts.iter().copied())
        .collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); configs.len()];
    // One warm-up pass, then the recorded rotated round-robin passes.
    time_one_run(users, steps, 0);
    for rep in 0..reps {
        for j in 0..configs.len() {
            let c = (j + rep) % configs.len();
            samples[c].push(time_one_run(users, steps, configs[c]));
        }
    }

    let baseline_ms = median(&mut samples[0]);
    println!("perf/sharded_loop/loop_runner_sequential           median {baseline_ms:>10.2} ms");

    let mut single_shard_ms = f64::NAN;
    let mut rows = Vec::new();
    for (c, &shards) in configs.iter().enumerate().skip(1) {
        let ms = median(&mut samples[c]);
        if shards == 1 {
            single_shard_ms = ms;
        }
        let speedup = single_shard_ms / ms;
        println!(
            "perf/sharded_loop/shards={shards:<3}                        median {ms:>10.2} ms  speedup x{speedup:.2}"
        );
        rows.push(Json::obj([
            ("shards", shards.to_json()),
            ("median_ms", ms.to_json()),
            ("speedup_vs_1_shard", speedup.to_json()),
        ]));
    }

    // The pool invariant (hardware-independent): driving 1 shard through
    // the pooled runner must stay within measurement noise of the plain
    // sequential LoopRunner. Before the worker pool, per-step thread
    // spawns made small shard counts a *slowdown* (8 shards ran at
    // 0.94x on 1 core); a pooled run leases zero workers there, so any
    // systematic gap is a regression.
    assert!(
        single_shard_ms <= baseline_ms * 1.25 + 5.0,
        "pooled 1-shard ShardedRunner ({single_shard_ms:.2} ms) regressed \
         vs the sequential LoopRunner ({baseline_ms:.2} ms)"
    );

    let doc = Json::obj([
        ("users", users.to_json()),
        ("steps", steps.to_json()),
        ("record_policy", "thin".to_json()),
        ("reps", reps.to_json()),
        ("cores", cores.to_json()),
        (
            "note",
            "worker-pool runner: one pool per run, parked workers per step. \
             On a 1-lane budget (this container has 1 core) every shard count \
             leases zero workers and sweeps inline, so ~1.0x is the expected \
             ratio; multicore hosts record real scaling."
                .to_json(),
        ),
        ("loop_runner_sequential_ms", baseline_ms.to_json()),
        ("sharded", Json::Arr(rows)),
    ]);
    // Default to the workspace root (cargo bench runs with the package
    // root as cwd), so CI uploads and repo diffs see one canonical path.
    let path = std::env::var("BENCH_SHARD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").to_string()
    });
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_shard.json");
    println!("perf/sharded_loop: wrote {path}");
}

/// P6: the trace store. Records one credit trial to an in-memory trace,
/// then times verified replay against re-simulation and compares the
/// trace's bytes with the equivalent JSON dump. Self-measured through
/// `eqimpact_bench::perf_trace` and exported to `BENCH_trace.json`
/// (path overridable via `BENCH_TRACE_OUT`).
fn bench_trace_store(_c: &mut Criterion) {
    use eqimpact_bench::perf_trace;
    use eqimpact_core::scenario::Scale as ScenarioScale;
    use eqimpact_stats::json::ToJson;

    let quick = criterion::is_quick();
    let scale = if quick {
        ScenarioScale::Quick
    } else {
        ScenarioScale::Paper
    };
    println!("\n-- group: perf/trace_store ({scale:?} credit trial) --");
    let r = perf_trace(scale, None).expect("perf_trace");
    println!(
        "perf/trace_store/resimulate                        median {:>10.2} ms",
        r.resimulate_ms
    );
    println!(
        "perf/trace_store/verified_replay                   median {:>10.2} ms  speedup x{:.2}",
        r.replay_ms, r.replay_speedup
    );
    println!(
        "perf/trace_store/bytes: trace {} vs pretty JSON {} (x{:.2}) vs compact JSON {} (x{:.2})",
        r.trace_bytes, r.json_bytes, r.json_ratio, r.compact_json_bytes, r.compact_json_ratio
    );
    let path = std::env::var("BENCH_TRACE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json").to_string()
    });
    std::fs::write(&path, r.to_json().render_pretty()).expect("write BENCH_trace.json");
    println!("perf/trace_store: wrote {path}");
}

/// P7: the counterfactual lab. Records one **checkpointed** credit trial
/// to an in-memory trace, then times checkpointed replay (model states
/// restored at each retrain) against re-simulation, plus a default-grid
/// off-policy sweep through the lab engine. Self-measured through
/// `eqimpact_bench::perf_sweep` and exported to `BENCH_sweep.json`
/// (path overridable via `BENCH_SWEEP_OUT`).
fn bench_sweep(_c: &mut Criterion) {
    use eqimpact_bench::perf_sweep;
    use eqimpact_core::scenario::Scale as ScenarioScale;
    use eqimpact_stats::json::ToJson;

    let quick = criterion::is_quick();
    let scale = if quick {
        ScenarioScale::Quick
    } else {
        ScenarioScale::Paper
    };
    println!("\n-- group: perf/sweep ({scale:?} checkpointed credit trial) --");
    let r = perf_sweep(scale, None).expect("perf_sweep");
    println!(
        "perf/sweep/resimulate                              median {:>10.2} ms",
        r.resimulate_ms
    );
    println!(
        "perf/sweep/checkpointed_replay                     median {:>10.2} ms  speedup x{:.2} ({} checkpoints)",
        r.checkpointed_replay_ms, r.replay_speedup, r.checkpoints_restored
    );
    println!(
        "perf/sweep/default_grid: {} candidates in {:.2} ms",
        r.candidates, r.sweep_ms
    );
    let path = std::env::var("BENCH_SWEEP_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").to_string()
    });
    std::fs::write(&path, r.to_json().render_pretty()).expect("write BENCH_sweep.json");
    println!("perf/sweep: wrote {path}");
}

/// P9: the certification plane. Records one **checkpointed** credit
/// trial to an in-memory trace, then times the plane over it: streaming
/// extraction alone, the theory-analysis passes alone, and the full
/// engine run. Self-measured through `eqimpact_bench::perf_certify` and
/// exported to `BENCH_certify.json` (path overridable via
/// `BENCH_CERTIFY_OUT`).
fn bench_certify(_c: &mut Criterion) {
    use eqimpact_bench::perf_certify;
    use eqimpact_core::scenario::Scale as ScenarioScale;
    use eqimpact_stats::json::ToJson;

    let quick = criterion::is_quick();
    let scale = if quick {
        ScenarioScale::Quick
    } else {
        ScenarioScale::Paper
    };
    println!("\n-- group: perf/certify ({scale:?} checkpointed credit trial) --");
    let r = perf_certify(scale, None).expect("perf_certify");
    println!(
        "perf/certify/extract                               median {:>10.2} ms  ({} states, {} transitions)",
        r.extract_ms, r.states, r.transitions
    );
    println!(
        "perf/certify/analyze                               median {:>10.2} ms  ({} checks)",
        r.analyze_ms, r.checks
    );
    println!(
        "perf/certify/full_engine: {} bytes certified in {:.2} ms",
        r.trace_bytes, r.certify_ms
    );
    let path = std::env::var("BENCH_CERTIFY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_certify.json").to_string()
    });
    std::fs::write(&path, r.to_json().render_pretty()).expect("write BENCH_certify.json");
    println!("perf/certify: wrote {path}");
}

/// Feature width of the columnar bench population: wide enough that the
/// per-column kernel passes dominate the fixed loop overhead.
const COLUMNAR_WIDTH: usize = 8;

/// Deterministic wide population for the columnar bench (no RNG in the
/// observe sweep, so the measured difference is pure scoring cost).
struct WideUsers {
    n: usize,
}

impl UserPopulation for WideUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe_into(&mut self, k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.n, COLUMNAR_WIDTH);
        for j in 0..COLUMNAR_WIDTH {
            for (i, cell) in out.col_mut(j).iter_mut().enumerate() {
                *cell = ((i * 31 + k * 17 + j * 7) % 100) as f64 / 100.0;
            }
        }
    }
    fn respond_into(&mut self, _k: usize, signals: &[f64], _rng: &mut SimRng, out: &mut Vec<f64>) {
        out.clear();
        out.extend(signals.iter().map(|&s| if s > 0.0 { 1.0 } else { 0.0 }));
    }
}

fn columnar_model() -> LogisticModel {
    LogisticModel {
        intercept: -0.25,
        coefficients: (0..COLUMNAR_WIDTH)
            .map(|j| 0.05 * (j + 1) as f64 * if j % 2 == 0 { 1.0 } else { -1.0 })
            .collect(),
        iterations: 0,
        converged: true,
    }
}

/// The pre-redesign row-major hot path: gather each row into a scratch
/// buffer, fold the dot product per row.
struct RowScoredAi {
    model: LogisticModel,
    buf: Vec<f64>,
}

impl AiSystem for RowScoredAi {
    fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(visible.row_count());
        for i in 0..visible.row_count() {
            visible.copy_row_into(i, &mut self.buf);
            out.push(self.model.linear_score(&self.buf));
        }
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

/// The columnar hot path: one batched kernel sweep over the column
/// slices ([`LogisticModel::linear_scores_into`]).
struct BatchScoredAi {
    model: LogisticModel,
}

impl AiSystem for BatchScoredAi {
    fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(visible.row_count(), 0.0);
        self.model.linear_scores_into(&visible.col_slices(), out);
    }
    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

/// One timed run of the columnar-vs-row loop (`columnar` picks the arm).
fn time_columnar_run(users: usize, steps: usize, columnar: bool) -> f64 {
    fn timed(mut runner: impl FnMut() -> usize, steps: usize) -> f64 {
        let start = Instant::now();
        let recorded = runner();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(recorded, steps);
        elapsed
    }
    if columnar {
        let mut runner = LoopBuilder::new(
            BatchScoredAi {
                model: columnar_model(),
            },
            WideUsers { n: users },
        )
        .filter(MeanFilter::default())
        .delay(1)
        .record(RecordPolicy::Thin)
        .build();
        timed(|| runner.run(steps, &mut SimRng::new(11)).steps(), steps)
    } else {
        let mut runner = LoopBuilder::new(
            RowScoredAi {
                model: columnar_model(),
                buf: Vec::with_capacity(COLUMNAR_WIDTH),
            },
            WideUsers { n: users },
        )
        .filter(MeanFilter::default())
        .delay(1)
        .record(RecordPolicy::Thin)
        .build();
        timed(|| runner.run(steps, &mut SimRng::new(11)).steps(), steps)
    }
}

/// P8: the columnar feature plane. The same loop scored twice — once
/// through a row-gathering AI replicating the pre-redesign row-major hot
/// path, once through the batched column kernels — with the two paths
/// proven bit-identical on a small run before anything is timed.
/// Samples rotate round-robin as in P5 and the medians land in
/// `BENCH_columnar.json` (path overridable via `BENCH_COLUMNAR_OUT`).
fn bench_columnar(_c: &mut Criterion) {
    use eqimpact_stats::json::{Json, ToJson};

    let quick = criterion::is_quick();
    let (users, steps) = (100_000usize, 50usize);
    let reps = if quick { 2 } else { 10 };

    println!(
        "\n-- group: perf/columnar ({users} users x {steps} steps, width {COLUMNAR_WIDTH}) --"
    );

    // The two arms are the same computation by the kernel bit-identity
    // contract — proven here, so the timing compares equal work.
    {
        let mut batched = LoopBuilder::new(
            BatchScoredAi {
                model: columnar_model(),
            },
            WideUsers { n: 1_000 },
        )
        .filter(MeanFilter::default())
        .delay(1)
        .build();
        let mut gathered = LoopBuilder::new(
            RowScoredAi {
                model: columnar_model(),
                buf: Vec::new(),
            },
            WideUsers { n: 1_000 },
        )
        .filter(MeanFilter::default())
        .delay(1)
        .build();
        assert_eq!(
            batched.run(5, &mut SimRng::new(11)),
            gathered.run(5, &mut SimRng::new(11)),
            "columnar and row-gathered scoring diverged"
        );
    }

    let mut samples: Vec<Vec<f64>> = (0..2).map(|_| Vec::with_capacity(reps)).collect();
    time_columnar_run(users, steps, true); // warm-up
    for rep in 0..reps {
        for j in 0..2 {
            let c = (j + rep) % 2;
            samples[c].push(time_columnar_run(users, steps, c == 1));
        }
    }

    let row_ms = median(&mut samples[0]);
    let col_ms = median(&mut samples[1]);
    let speedup = row_ms / col_ms;
    let throughput = |ms: f64| users as f64 * steps as f64 / (ms / 1e3);
    println!("perf/columnar/row_gather                           median {row_ms:>10.2} ms");
    println!(
        "perf/columnar/batch_kernels                        median {col_ms:>10.2} ms  speedup x{speedup:.2}"
    );

    // Hardware-independent invariant: the batched kernels must not lose
    // to the row gather they replaced — same math, strictly less work
    // per row (no gather, no per-row call) — modulo measurement noise.
    assert!(
        col_ms <= row_ms * 1.10 + 5.0,
        "columnar batch scoring ({col_ms:.2} ms) regressed vs the \
         row-gather baseline ({row_ms:.2} ms)"
    );

    let doc = Json::obj([
        ("users", users.to_json()),
        ("steps", steps.to_json()),
        ("feature_width", COLUMNAR_WIDTH.to_json()),
        ("record_policy", "thin".to_json()),
        ("reps", reps.to_json()),
        (
            "note",
            "same loop, same logistic scores (bit-identical, asserted): \
             row_gather replicates the pre-redesign row-major hot path \
             (per-row gather + dot fold); batch_kernels is the columnar \
             fill/axpy/offset sweep over the column slices."
                .to_json(),
        ),
        ("row_gather_ms", row_ms.to_json()),
        ("batch_kernels_ms", col_ms.to_json()),
        ("row_gather_ms_per_step", (row_ms / steps as f64).to_json()),
        (
            "batch_kernels_ms_per_step",
            (col_ms / steps as f64).to_json(),
        ),
        ("row_gather_rows_per_sec", throughput(row_ms).to_json()),
        ("batch_kernels_rows_per_sec", throughput(col_ms).to_json()),
        ("speedup", speedup.to_json()),
    ]);
    let path = std::env::var("BENCH_COLUMNAR_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_columnar.json").to_string()
    });
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_columnar.json");
    println!("perf/columnar: wrote {path}");
}

/// A hand-rolled uninstrumented twin of [`LoopRunner::run`]: the same
/// hooks in the same order with the same buffer recycling, but with no
/// telemetry statements compiled in at all — the baseline the
/// disabled-recorder overhead is measured against. Kept bit-identical to
/// the real runner (asserted in [`bench_observability`] before timing).
fn uninstrumented_twin(users: usize, steps: usize) -> eqimpact_core::recorder::LoopRecord {
    use std::collections::VecDeque;

    let mut ai = ThresholdAi;
    let mut population = SyntheticUsers { n: users };
    let mut filter = MeanFilter::default();
    let delay = 1usize;
    let mut rng = SimRng::new(42);
    let n = population.user_count();
    let mut record = eqimpact_core::recorder::LoopRecord::with_policy(n, RecordPolicy::Thin);
    record.reserve(steps);
    let mut pending: VecDeque<Feedback> = VecDeque::new();
    let mut spare: Vec<Feedback> = Vec::new();
    let mut visible = FeatureMatrix::default();
    let mut signals = Vec::new();
    let mut actions = Vec::new();
    for k in 0..steps {
        population.observe_into(k, &mut rng, &mut visible);
        ai.signals_into(k, &visible, &mut signals);
        population.respond_into(k, &signals, &mut rng, &mut actions);
        let mut feedback = spare.pop().unwrap_or_default();
        filter.apply_into(k, &visible, &signals, &actions, &mut feedback);
        record.push_step(&signals, &actions, &feedback.per_user);
        pending.push_back(feedback);
        if pending.len() > delay {
            let due = pending.pop_front().expect("non-empty by check");
            ai.retrain(k, &due);
            spare.push(due);
        }
    }
    record
}

/// One timed run of the observability bench. Arm 0 is the uninstrumented
/// twin, arm 1 the instrumented [`LoopRunner`] with no recorder
/// installed, arm 2 the same runner with the recorder enabled.
fn time_obs_run(users: usize, steps: usize, arm: usize) -> f64 {
    if arm == 0 {
        let start = Instant::now();
        let record = uninstrumented_twin(users, steps);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(record.steps(), steps);
        return elapsed;
    }
    if arm == 2 {
        eqimpact_telemetry::Recorder::install();
    }
    let mut runner = LoopBuilder::new(ThresholdAi, SyntheticUsers { n: users })
        .filter(MeanFilter::default())
        .delay(1)
        .record(RecordPolicy::Thin)
        .build();
    let start = Instant::now();
    let record = runner.run(steps, &mut SimRng::new(42));
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    if arm == 2 {
        eqimpact_telemetry::Recorder::uninstall();
    }
    assert_eq!(record.steps(), steps);
    elapsed
}

/// P10: the telemetry plane's overhead contract. The instrumented loop
/// with the recorder **disabled** must stay within measurement noise of
/// a hand-rolled uninstrumented twin (the disabled path is one relaxed
/// atomic load per instrument site); the **enabled** cost is recorded
/// for information, not asserted. Samples rotate round-robin as in P5
/// and the medians land in `BENCH_obs.json` (`BENCH_OBS_OUT`).
fn bench_observability(_c: &mut Criterion) {
    use eqimpact_stats::json::{Json, ToJson};

    let quick = criterion::is_quick();
    let (users, steps) = (100_000usize, 50usize);
    let reps = if quick { 2 } else { 10 };

    println!("\n-- group: perf/observability ({users} users x {steps} steps) --");

    // The twin and the real runner are the same computation — proven
    // here (records compare bit-for-bit), so the timing compares equal
    // work and the twin cannot silently drift as the runner evolves.
    {
        let _t = eqimpact_telemetry::test_guard();
        let mut runner = LoopBuilder::new(ThresholdAi, SyntheticUsers { n: 1_000 })
            .filter(MeanFilter::default())
            .delay(1)
            .record(RecordPolicy::Thin)
            .build();
        assert_eq!(
            uninstrumented_twin(1_000, 20),
            runner.run(20, &mut SimRng::new(42)),
            "uninstrumented twin diverged from the instrumented LoopRunner"
        );
    }

    let _t = eqimpact_telemetry::test_guard();
    let mut samples: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(reps)).collect();
    time_obs_run(users, steps, 1); // warm-up
    for rep in 0..reps {
        for j in 0..3 {
            let c = (j + rep) % 3;
            samples[c].push(time_obs_run(users, steps, c));
        }
    }

    let baseline_ms = median(&mut samples[0]);
    let disabled_ms = median(&mut samples[1]);
    let enabled_ms = median(&mut samples[2]);
    println!("perf/observability/uninstrumented_twin            median {baseline_ms:>10.2} ms");
    println!(
        "perf/observability/recorder_disabled               median {disabled_ms:>10.2} ms  overhead x{:.3}",
        disabled_ms / baseline_ms
    );
    println!(
        "perf/observability/recorder_enabled                median {enabled_ms:>10.2} ms  overhead x{:.3}",
        enabled_ms / baseline_ms
    );

    // The hardware-independent invariant the whole plane is built on:
    // while no recorder is installed the instruments are a guaranteed
    // no-op, so the instrumented runner must match the uninstrumented
    // twin modulo measurement noise.
    assert!(
        disabled_ms <= baseline_ms * 1.10 + 5.0,
        "disabled-recorder loop ({disabled_ms:.2} ms) regressed vs the \
         uninstrumented twin ({baseline_ms:.2} ms)"
    );

    let doc = Json::obj([
        ("users", users.to_json()),
        ("steps", steps.to_json()),
        ("record_policy", "thin".to_json()),
        ("reps", reps.to_json()),
        (
            "note",
            "same loop, same record (bit-identical, asserted): the twin \
             is LoopRunner::run with every telemetry statement removed; \
             disabled = instrumented runner with no recorder installed \
             (one relaxed atomic load per site); enabled = recorder \
             installed, phase spans and counters live."
                .to_json(),
        ),
        ("uninstrumented_twin_ms", baseline_ms.to_json()),
        ("recorder_disabled_ms", disabled_ms.to_json()),
        ("recorder_enabled_ms", enabled_ms.to_json()),
        (
            "disabled_overhead_ratio",
            (disabled_ms / baseline_ms).to_json(),
        ),
        (
            "enabled_overhead_ratio",
            (enabled_ms / baseline_ms).to_json(),
        ),
    ]);
    let path = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").to_string()
    });
    std::fs::write(&path, doc.render_pretty()).expect("write BENCH_obs.json");
    println!("perf/observability: wrote {path}");
}

fn bench_loop_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/credit_loop");
    group.sample_size(10);
    for &users in &[100usize, 500, 1000] {
        group.bench_with_input(
            BenchmarkId::new("full_run_19_steps", users),
            &users,
            |b, &n| {
                let config = CreditConfig {
                    users: n,
                    steps: 19,
                    trials: 1,
                    seed: 1,
                    lender: LenderKind::Scorecard,
                    ..Default::default()
                };
                b.iter(|| run_trial(&config, 0));
            },
        );
    }
    group.finish();
}

fn bench_irls(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/irls");
    for &n in &[1_000usize, 10_000] {
        let mut rng = SimRng::new(3);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.uniform(), rng.uniform_in(-1.0, 1.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| {
                if rng.bernoulli(sigmoid(-4.0 * r[0] + 3.0 * r[1])) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::new(&rows, &labels).unwrap();
        group.bench_with_input(BenchmarkId::new("fit", n), &data, |b, data| {
            let fitter = LogisticRegression::default();
            b.iter(|| fitter.fit(data).unwrap());
        });
    }
    group.finish();
}

fn bench_markov_operator(c: &mut Criterion) {
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();
    let mut group = c.benchmark_group("perf/markov");
    group.bench_function("operator_apply", |b| {
        b.iter(|| markov_operator_apply(&ms, |x| x[0] * x[0], &[0.37]))
    });
    group.bench_function("trajectory_10k_steps", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(5);
            ms.trajectory(&[0.5], 10_000, &mut rng)
        })
    });
    group.finish();
}

fn bench_invariant_measure(c: &mut Criterion) {
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();
    let mut group = c.benchmark_group("perf/invariant");
    group.sample_size(10);
    group.bench_function("particle_estimation_1k", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(6);
            estimate_invariant_measure(
                &ms,
                &ParticleMeasure::dirac(&[0.9]),
                1_000,
                100,
                0.02,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_loop_api,
    bench_sharded_loop,
    bench_trace_store,
    bench_sweep,
    bench_certify,
    bench_columnar,
    bench_observability,
    bench_loop_step,
    bench_irls,
    bench_markov_operator,
    bench_invariant_measure
);
criterion_main!(benches);
