//! P1-P4: performance microbenchmarks of the building blocks (not paper
//! artifacts): loop step throughput, IRLS fitting, Markov operator
//! application, and invariant-measure estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqimpact_credit::sim::{run_trial, CreditConfig, LenderKind};
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::invariant::estimate_invariant_measure;
use eqimpact_markov::operator::{markov_operator_apply, ParticleMeasure};
use eqimpact_ml::logistic::{sigmoid, LogisticRegression};
use eqimpact_ml::Dataset;
use eqimpact_stats::SimRng;

fn bench_loop_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/credit_loop");
    group.sample_size(10);
    for &users in &[100usize, 500, 1000] {
        group.bench_with_input(BenchmarkId::new("full_run_19_steps", users), &users, |b, &n| {
            let config = CreditConfig {
                users: n,
                steps: 19,
                trials: 1,
                seed: 1,
                lender: LenderKind::Scorecard,
                delay: 1,
            };
            b.iter(|| run_trial(&config, 0));
        });
    }
    group.finish();
}

fn bench_irls(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/irls");
    for &n in &[1_000usize, 10_000] {
        let mut rng = SimRng::new(3);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.uniform(), rng.uniform_in(-1.0, 1.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| {
                if rng.bernoulli(sigmoid(-4.0 * r[0] + 3.0 * r[1])) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::new(&rows, &labels).unwrap();
        group.bench_with_input(BenchmarkId::new("fit", n), &data, |b, data| {
            let fitter = LogisticRegression::default();
            b.iter(|| fitter.fit(data).unwrap());
        });
    }
    group.finish();
}

fn bench_markov_operator(c: &mut Criterion) {
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();
    let mut group = c.benchmark_group("perf/markov");
    group.bench_function("operator_apply", |b| {
        b.iter(|| markov_operator_apply(&ms, |x| x[0] * x[0], &[0.37]))
    });
    group.bench_function("trajectory_10k_steps", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(5);
            ms.trajectory(&[0.5], 10_000, &mut rng)
        })
    });
    group.finish();
}

fn bench_invariant_measure(c: &mut Criterion) {
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();
    let mut group = c.benchmark_group("perf/invariant");
    group.sample_size(10);
    group.bench_function("particle_estimation_1k", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(6);
            estimate_invariant_measure(
                &ms,
                &ParticleMeasure::dirac(&[0.9]),
                1_000,
                100,
                0.02,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_loop_step,
    bench_irls,
    bench_markov_operator,
    bench_invariant_measure
);
criterion_main!(benches);
