//! A5: regenerates the feedback-filter comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{ablate_filter, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_filter");
    group.sample_size(10);
    group.bench_function("filter_sweep_quick", |b| {
        b.iter(|| {
            let a5 = ablate_filter(Scale::Quick, None);
            assert_eq!(a5.filters.len(), 4);
            a5
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
