//! A3: regenerates the invariant-measure attractivity experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{ablate_markov, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_markov");
    group.sample_size(10);
    group.bench_function("attractivity_quick", |b| {
        b.iter(|| {
            let a3 = ablate_markov(Scale::Quick, None).expect("ablate_markov");
            assert!(a3.ifs_converged);
            a3
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
