//! F5: regenerates the (year x ADR) density histogram of Fig. 5.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{credit_outcomes, fig5_histogram, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let outcomes = credit_outcomes(Scale::Quick);
    group.bench_function("density_histogram", |b| {
        b.iter(|| {
            let hist = fig5_histogram(&outcomes);
            assert_eq!(hist.x_len(), 19);
            hist
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
