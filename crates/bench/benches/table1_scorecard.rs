//! T1: regenerates the Table I scorecard (learned coefficients) and
//! measures the cost of the full retraining loop behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{table1_scorecard, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("scorecard_from_loop_quick", |b| {
        b.iter(|| {
            let t1 = table1_scorecard(Scale::Quick).expect("table1_scorecard");
            assert!(t1.history_points < 0.0);
            assert!(t1.income_points > 0.0);
            t1
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
