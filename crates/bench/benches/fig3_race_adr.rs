//! F3: regenerates the race-wise ADR mean ± std series of Fig. 3.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{credit_outcomes, fig3_series, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("race_adr_series_quick", |b| {
        b.iter(|| {
            let outcomes = credit_outcomes(Scale::Quick);
            let series = fig3_series(&outcomes);
            assert_eq!(series.len(), 3);
            series
        })
    });
    // Extraction alone, amortizing the simulation.
    let outcomes = credit_outcomes(Scale::Quick);
    group.bench_function("race_adr_extraction_only", |b| {
        b.iter(|| fig3_series(&outcomes))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
