//! A2: regenerates the integral-action ergodicity-loss experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{ablate_integral, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_integral");
    group.sample_size(10);
    group.bench_function("integral_vs_proportional_quick", |b| {
        b.iter(|| {
            let a2 = ablate_integral(Scale::Quick, None);
            assert!(a2.integral_gap.max_spread > a2.proportional_gap.max_spread);
            a2
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
