//! F2: regenerates the Fig. 2 income distribution rows.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::fig2_rows;

fn bench(c: &mut Criterion) {
    c.bench_function("fig2/income_distribution_rows", |b| {
        b.iter(|| {
            let rows = fig2_rows();
            assert_eq!(rows.len(), 9);
            rows
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
