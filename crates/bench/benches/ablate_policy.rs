//! A1: regenerates the uniform-vs-income-multiple policy comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use eqimpact_bench::{ablate_policy, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_policy");
    group.sample_size(10);
    group.bench_function("uniform_vs_income_quick", |b| {
        b.iter(|| {
            let a1 = ablate_policy(Scale::Quick, None).expect("ablate_policy");
            assert!(a1.approval_gaps.0 > a1.approval_gaps.1);
            a1
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
