//! Experiment harness: one function per paper artifact (Table I,
//! Figs. 2-5) and per ablation (A1 policy comparison, A2 integral-action
//! ergodicity loss, A3 Markov-system attractivity), shared between the
//! `experiments` binary and the Criterion benches — plus the static
//! scenario [`registry`] the binary is driven by.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod registry;

pub use experiments::*;
