//! Experiment harness: one function per paper artifact (Table I,
//! Figs. 2-5) and per ablation (A1 policy comparison, A2 integral-action
//! ergodicity loss, A3 Markov-system attractivity), shared between the
//! `experiments` binary and the Criterion benches.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
