//! Registry-driven experiments CLI: lists, runs, records and replays the
//! registered closed-loop scenarios (see `eqimpact_bench::registry`).
//!
//! ```text
//! cargo run --release -p eqimpact-bench --bin experiments -- <COMMAND>
//!
//! Commands:
//!   list [--json]
//!       Print every registered scenario with its artifacts; `--json`
//!       emits the scenario names as a deterministically sorted JSON
//!       array (consumed by the CI smoke matrix).
//!   run <scenario> [--quick] [--seed N] [--shards N] [--threads N] [--out DIR] [ARTIFACT...]
//!   run --all      [--quick] [--seed N] [--shards N] [--threads N] [--out DIR]
//!       Run one scenario (optionally restricted to the named artifacts)
//!       or every registered scenario. Requesting shards from a scenario
//!       without intra-trial parallelism exits 3 (a clean "unsupported"
//!       skip for CI), unless --all is downgrading it to sequential.
//!   record <scenario> [--quick] [--seed N] [--shards N] [--threads N] [--out DIR]
//!       Run the scenario while streaming every loop of every trial into
//!       a self-describing `.eqtrace` file under --out (default
//!       `traces/`). Exits 3 for scenarios without trace support.
//!   replay <trace> [--policy NAME] [--out DIR]
//!       Without --policy: re-drive the recorded loop byte-identically
//!       (every recomputed signal and filter output is verified against
//!       the recorded bits). With --policy: off-policy evaluation — score
//!       the named alternative policy against the recorded trajectory
//!       and write the fairness/impact deltas under --out.
//!   sweep <scenario> [--traces DIR] [--grid SPEC] [--quick] [--seed N] [--threads N] [--out DIR]
//!       The counterfactual lab: evaluate a candidate grid (policy x
//!       filter x decision threshold) off-policy over every recorded
//!       trace of the scenario under --traces (default `traces/`), and
//!       write a ranked report with bootstrap confidence intervals on
//!       every fairness gap and outcome delta. `--grid` overrides the
//!       scenario's default axes (`policy=a,b;threshold=0,10`); `--quick`
//!       cuts the bootstrap resamples for CI smoke runs. Exits 3 for
//!       scenarios without sweep support. The ranking is deterministic:
//!       same traces + same seed give the same report at any thread
//!       count.
//!   certify <scenario> [--traces DIR] [--seed N] [--threads N] [--out DIR]
//!       The certification plane: extract the scenario's empirical
//!       transition structure from every recorded trace under --traces
//!       (default `traces/`) and run the theory passes over it —
//!       primitivity, unique ergodicity + equal impact, contractivity,
//!       Lyapunov stability, incremental ISS — writing a per-scenario
//!       verdict artifact (JSON + text). Exits 3 for scenarios without
//!       certify support. The artifact is byte-identical across runs and
//!       thread counts for a fixed seed.
//!
//! Flags:
//!   --quick      reduced CI scale instead of the paper's parameters
//!   --seed N     override the scenario's base seed (trial t uses N + t)
//!   --shards N   intra-trial shard count (0 = auto, the thread budget's
//!                lanes); records are bit-identical for every value
//!   --threads N  cap the process-wide thread budget at N lanes (default:
//!                one per core, or EQIMPACT_THREADS). trials x shards
//!                lease from this one budget, so the host is never
//!                oversubscribed; nested parallelism past the cap runs
//!                sequentially
//!   --out DIR    output directory (default `results/`; `traces/` for
//!                record)
//!   --telemetry  install the in-process telemetry recorder and write a
//!                `telemetry_<scenario>.json` snapshot under --out. The
//!                snapshot's deterministic section (step/frame/byte
//!                counts) is byte-identical across runs and --threads
//!                values; durations and pool scheduling live in the
//!                wall-clock section.
//!   --progress   print a once-a-second progress heartbeat to stderr
//!                (completed units, rate, ETA); implies recording
//! ```
//!
//! Scenario names, artifact names, policies and flags are all validated:
//! a typo like `--quikc` or `fig9` exits with status 2 and the list of
//! known names instead of being silently ignored.

use eqimpact_bench::registry;
use eqimpact_certify::{run_certification, CertifyConfig};
use eqimpact_core::pool::ThreadBudget;
use eqimpact_core::scenario::{write_artifacts, DynScenario, Scale, ScenarioConfig};
use eqimpact_lab::{run_sweep, CandidateGrid, FileTrace, SweepConfig, TraceSource};
use eqimpact_stats::ToJson;
use eqimpact_telemetry::metrics as tm;
use eqimpact_telemetry::progress::{start_heartbeat, Heartbeat};
use eqimpact_telemetry::{ManualTimer, Recorder};
use eqimpact_trace::{TraceDirFactory, TraceReader};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// Flags accepted by `run`, for the unknown-flag error message.
const RUN_FLAGS: &str =
    "--all, --quick, --seed N, --shards N, --threads N, --out DIR, --telemetry, --progress";

/// Flags accepted by `record`.
const RECORD_FLAGS: &str =
    "--quick, --seed N, --shards N, --threads N, --out DIR, --telemetry, --progress";

/// Flags accepted by `replay`.
const REPLAY_FLAGS: &str = "--policy NAME, --out DIR, --telemetry, --progress";

/// Flags accepted by `sweep`.
const SWEEP_FLAGS: &str =
    "--traces DIR, --grid SPEC, --quick, --seed N, --threads N, --out DIR, --telemetry, --progress";

/// Flags accepted by `certify`.
const CERTIFY_FLAGS: &str =
    "--traces DIR, --seed N, --threads N, --out DIR, --telemetry, --progress";

/// A CLI failure, carrying its exit status: 2 for usage/validation
/// errors, 3 for "this scenario lacks the requested capability" — no
/// trace support for `record`, no intra-trial sharding for a sharded
/// `run` — so CI matrix legs can skip unsupported scenarios cleanly
/// without masking real failures.
#[derive(Debug)]
struct CliError {
    message: String,
    code: u8,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn unsupported(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 3,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            eprintln!("run `experiments help` for usage");
            ExitCode::from(e.code)
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print_usage();
            Ok(())
        }
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("certify") => cmd_certify(&args[1..]),
        Some(other) => Err(CliError::usage(format!(
            "unknown command `{other}` (known commands: list, run, record, replay, sweep, certify, help)"
        ))),
    }
}

fn print_usage() {
    println!("experiments — registry-driven paper artifacts and scenarios");
    println!();
    println!("  experiments list [--json]");
    println!(
        "  experiments run <scenario> [--quick] [--seed N] [--shards N] [--threads N] [--out DIR] [ARTIFACT...]"
    );
    println!(
        "  experiments run --all      [--quick] [--seed N] [--shards N] [--threads N] [--out DIR]"
    );
    println!(
        "  experiments record <scenario> [--quick] [--seed N] [--shards N] [--threads N] [--out DIR]"
    );
    println!("  experiments replay <trace> [--policy NAME] [--out DIR]");
    println!(
        "  experiments sweep <scenario> [--traces DIR] [--grid SPEC] [--quick] [--seed N] [--threads N] [--out DIR]"
    );
    println!(
        "  experiments certify <scenario> [--traces DIR] [--seed N] [--threads N] [--out DIR]"
    );
    println!();
    println!("  --threads N caps the process-wide thread budget: trials x shards");
    println!("  lease lanes from it, so the host is never oversubscribed.");
    println!();
    println!("  every command also accepts --telemetry (write a telemetry_<scenario>.json");
    println!("  snapshot under --out; its deterministic section is byte-identical across");
    println!("  runs and --threads values) and --progress (a once-a-second stderr");
    println!("  heartbeat with completed units, rate and ETA).");
    println!();
    print_scenarios();
}

fn print_scenarios() {
    println!("registered scenarios:");
    for scenario in registry::scenarios() {
        println!("  {:<11} {}", scenario.name(), scenario.description());
        for spec in scenario.artifacts() {
            println!("    - {:<16} {}", spec.name, spec.description);
        }
    }
    println!();
    println!("traceable scenarios (experiments record / replay):");
    for tracer in registry::tracers() {
        let policies: Vec<&str> = tracer.policies().iter().map(|p| p.name).collect();
        println!("  {:<11} policies: {}", tracer.name(), policies.join(", "));
    }
    println!();
    println!("sweepable scenarios (experiments sweep):");
    for sweep in registry::sweeps() {
        let grid = sweep.default_grid();
        println!(
            "  {:<11} default grid: {} candidates (policies: {}; filters: {})",
            sweep.name(),
            grid.len(),
            sweep.known_policies().join(", "),
            sweep.known_filters().join(", ")
        );
    }
    println!();
    println!("certifiable scenarios (experiments certify):");
    for target in registry::certifies() {
        let spec = target.spec();
        println!(
            "  {:<11} state range [{}, {}] in {} bins, model fields: {}",
            target.name(),
            spec.state_lo,
            spec.state_hi,
            spec.bins,
            spec.model_fields.join(", ")
        );
    }
}

/// The `list --json` payload: one object per scenario (deterministically
/// sorted by name) with its capability flags, so consumers — the CI
/// smoke matrix — can gate record/sweep/certify legs without hardcoding
/// scenario knowledge.
fn list_json() -> String {
    let entries: Vec<String> = registry::sorted_names()
        .iter()
        .map(|name| {
            // `telemetry` is a CLI-level capability — every scenario can
            // run under the recorder — but it is reported per entry so
            // CI legs gate on the payload alone, like the other flags.
            format!(
                "{{\"name\":\"{name}\",\"trace\":{},\"sweep\":{},\"certify\":{},\"telemetry\":true}}",
                registry::find_tracer(name).is_some(),
                registry::find_sweep(name).is_some(),
                registry::find_certify(name).is_some(),
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn cmd_list(args: &[String]) -> Result<(), CliError> {
    match args {
        [] => {
            print_scenarios();
            Ok(())
        }
        [flag] if flag == "--json" => {
            println!("{}", list_json());
            Ok(())
        }
        _ => Err(CliError::usage(format!(
            "unknown arguments to `list`: {} (known: --json)",
            args.join(" ")
        ))),
    }
}

/// The flags shared by `run` and `record`.
#[derive(Default)]
struct CommonFlags {
    quick: bool,
    all: bool,
    seed: Option<u64>,
    shards: usize,
    threads: Option<usize>,
    out_dir: Option<PathBuf>,
    telemetry: bool,
    progress: bool,
    scenario: Option<String>,
    positionals: Vec<String>,
}

fn parse_common(
    args: &[String],
    known_flags: &str,
    allow_all: bool,
) -> Result<CommonFlags, CliError> {
    let mut flags = CommonFlags {
        shards: 1,
        ..CommonFlags::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => flags.quick = true,
            "--all" if allow_all => flags.all = true,
            "--seed" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--seed requires a u64 value"))?;
                flags.seed = Some(value.parse().map_err(|_| {
                    CliError::usage(format!("--seed requires a u64, got `{value}`"))
                })?);
            }
            "--shards" => {
                let value = iter.next().ok_or_else(|| {
                    CliError::usage("--shards requires a count (0 = auto, one per budget lane)")
                })?;
                flags.shards = value.parse().map_err(|_| {
                    CliError::usage(format!("--shards requires an integer, got `{value}`"))
                })?;
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--threads requires a positive lane count"))?;
                flags.threads = Some(parse_threads(value)?);
            }
            "--out" => {
                flags.out_dir = Some(PathBuf::from(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--out requires a directory argument"))?
                        .clone(),
                ));
            }
            "--telemetry" => flags.telemetry = true,
            "--progress" => flags.progress = true,
            flag if flag.starts_with("--") => {
                // The pre-redesign CLI swallowed unknown flags as artifact
                // names, so a typo silently selected nothing. Reject them.
                return Err(CliError::usage(format!(
                    "unknown flag `{flag}` (known flags: {known_flags})"
                )));
            }
            positional if flags.scenario.is_none() && !flags.all => {
                flags.scenario = Some(positional.to_string());
            }
            positional => flags.positionals.push(positional.to_string()),
        }
    }
    Ok(flags)
}

/// Parses a `--threads` value. `0` is clamped to one lane with a
/// warning — the calling thread always exists, so zero cannot mean "no
/// lanes" and aborting would make `--threads $(nproc --ignore=N)`-style
/// invocations fragile (the same clamp `EQIMPACT_THREADS=0` gets).
fn parse_threads(value: &str) -> Result<usize, CliError> {
    let threads: usize = value
        .parse()
        .map_err(|_| CliError::usage(format!("--threads requires an integer, got `{value}`")))?;
    if threads == 0 {
        eprintln!("warning: --threads 0 clamped to 1 (the calling thread is always a lane)");
        return Ok(1);
    }
    Ok(threads)
}

/// Per-command observability: installs the telemetry [`Recorder`] when
/// requested, runs the stderr progress heartbeat, and times the whole
/// command so every subcommand prints the same timing footer.
/// `--progress` implies recording (the heartbeat reads the catalog's
/// step counters), but only `--telemetry` writes the snapshot artifact.
struct CommandObs {
    telemetry: bool,
    heartbeat: Option<Heartbeat>,
    timer: ManualTimer,
}

impl CommandObs {
    fn start(telemetry: bool, progress: bool) -> Self {
        if telemetry || progress {
            Recorder::install();
        }
        CommandObs {
            telemetry,
            heartbeat: progress.then(|| start_heartbeat(Duration::from_secs(1))),
            timer: tm::CLI_COMMAND.start_timer(),
        }
    }

    /// Prints the timing footer; under `--telemetry` also prints the
    /// thread-budget lease summary (granted vs requested lanes) and
    /// writes `telemetry_<label>.json` under `out_dir`.
    fn finish(self, command: &str, label: &str, out_dir: &Path) -> Result<(), CliError> {
        drop(self.heartbeat);
        let ms = self.timer.stop_ms();
        if self.telemetry {
            let leases = tm::POOL_LEASES.total();
            if leases > 0 {
                println!(
                    "telemetry: budget granted {} of {} requested lanes across {} leases \
                     ({} clamped)",
                    tm::POOL_LANES_GRANTED.total(),
                    tm::POOL_LANES_REQUESTED.total(),
                    leases,
                    tm::POOL_LEASES_CLAMPED.total()
                );
            }
            let snapshot = Recorder::snapshot();
            std::fs::create_dir_all(out_dir).map_err(|e| {
                CliError::usage(format!("cannot create {}: {e}", out_dir.display()))
            })?;
            let path = out_dir.join(format!("telemetry_{label}.json"));
            std::fs::write(&path, snapshot.render_json())
                .map_err(|e| CliError::usage(format!("cannot write {}: {e}", path.display())))?;
            println!("wrote {}", path.display());
        }
        println!("{command} completed in {ms:.1} ms");
        Ok(())
    }
}

fn scale_of(quick: bool) -> Scale {
    if quick {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

fn base_config(flags: &CommonFlags) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(scale_of(flags.quick)).with_shards(flags.shards);
    if let Some(seed) = flags.seed {
        config = config.with_seed(seed);
    }
    config
}

/// Applies `--threads N` by fixing the process-wide [`ThreadBudget`]
/// before anything leases from it. The budget's capacity is set on first
/// use, so this must run before the scenarios do.
fn apply_thread_cap(flags: &CommonFlags) -> Result<(), CliError> {
    if let Some(threads) = flags.threads {
        ThreadBudget::init_global(threads).map_err(|existing| {
            CliError::usage(format!(
                "--threads {threads} rejected: the thread budget was already \
                 fixed at {existing} lanes (set it before any parallel work)"
            ))
        })?;
    }
    Ok(())
}

fn thread_label(flags: &CommonFlags) -> String {
    match flags.threads {
        Some(n) => n.to_string(),
        None => format!("{} (auto)", ThreadBudget::global().capacity()),
    }
}

fn seed_label(seed: Option<u64>) -> String {
    seed.map(|s| s.to_string())
        .unwrap_or_else(|| "scenario default".to_string())
}

fn find_scenario(name: &str) -> Result<&'static dyn DynScenario, CliError> {
    registry::find(name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown scenario `{name}` (known scenarios: {})",
            registry::names().join(", ")
        ))
    })
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let flags = parse_common(args, RUN_FLAGS, true)?;
    apply_thread_cap(&flags)?;
    let obs = CommandObs::start(flags.telemetry, flags.progress);
    let out_dir = flags
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    let artifacts = &flags.positionals;

    let selected: Vec<&'static dyn DynScenario> = if flags.all {
        if flags.scenario.is_some() || !artifacts.is_empty() {
            return Err(CliError::usage(
                "`run --all` runs every scenario in full; drop the scenario/artifact names",
            ));
        }
        registry::scenarios().to_vec()
    } else {
        let name = flags.scenario.clone().ok_or_else(|| {
            CliError::usage(format!(
                "`run` needs a scenario name or --all (known scenarios: {})",
                registry::names().join(", ")
            ))
        })?;
        vec![find_scenario(&name)?]
    };

    println!(
        "eqimpact experiments — scale: {:?}, seed: {}, shards: {}, threads: {}, output: {}",
        scale_of(flags.quick),
        seed_label(flags.seed),
        if flags.shards == 0 {
            "auto".to_string()
        } else {
            flags.shards.to_string()
        },
        thread_label(&flags),
        out_dir.display()
    );

    for scenario in selected {
        let mut config = base_config(&flags);
        if !artifacts.is_empty() {
            config = config.with_artifacts(artifacts.iter().cloned());
        }
        // Under --all, a global shard count must not abort the sweep on
        // scenarios without intra-trial parallelism — run those
        // sequentially instead. An explicit single-scenario request
        // exits 3 ("unsupported capability", like `record` on an
        // untraceable scenario), so CI matrix legs can skip cleanly and
        // the incompatibility is never silent.
        if config.shards != 1 && !scenario.supports_sharding() {
            if flags.all {
                println!(
                    "\n(note: `{}` has no intra-trial sharding; running it sequentially)",
                    scenario.name()
                );
                config.shards = 1;
            } else {
                return Err(CliError::unsupported(format!(
                    "scenario `{}` does not support intra-trial sharding \
                     (run it with --shards 1)",
                    scenario.name()
                )));
            }
        }
        println!("\n== {}: {} ==", scenario.name(), scenario.description());
        let report = scenario.run(&config).map_err(|e| e.to_string())?;
        for line in &report.summary {
            println!("  {line}");
        }
        let written =
            write_artifacts(scenario.name(), &report, &out_dir).map_err(|e| e.to_string())?;
        for path in written {
            println!("  wrote {}", path.display());
        }
    }
    println!("\ndone.");
    let label = if flags.all {
        "all".to_string()
    } else {
        flags.scenario.clone().unwrap_or_default()
    };
    obs.finish("run", &label, &out_dir)
}

fn cmd_record(args: &[String]) -> Result<(), CliError> {
    let flags = parse_common(args, RECORD_FLAGS, false)?;
    apply_thread_cap(&flags)?;
    if !flags.positionals.is_empty() {
        return Err(CliError::usage(format!(
            "`record` takes one scenario name (unexpected: {})",
            flags.positionals.join(" ")
        )));
    }
    let name = flags.scenario.clone().ok_or_else(|| {
        CliError::usage(format!(
            "`record` needs a scenario name (traceable scenarios: {})",
            registry::tracers()
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;
    let scenario = find_scenario(&name)?;
    // Recording is gated on the scenario's own capability flag (the
    // same one run_scenario enforces); a registered replayer is the
    // second half of the workflow, so its absence is also a clean skip.
    if !scenario.supports_tracing() {
        return Err(CliError::unsupported(format!(
            "scenario `{name}` does not support trace recording (traceable scenarios: {})",
            registry::tracers()
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    if registry::find_tracer(&name).is_none() {
        return Err(CliError::unsupported(format!(
            "scenario `{name}` records traces but has no registered replayer \
             (add it to registry::tracers())"
        )));
    }
    // Same exit-3 capability gate as `run`: a sharded record of a
    // scenario without intra-trial parallelism is a clean skip, not a
    // usage error.
    if flags.shards != 1 && !scenario.supports_sharding() {
        return Err(CliError::unsupported(format!(
            "scenario `{name}` does not support intra-trial sharding \
             (record it with --shards 1)"
        )));
    }
    let obs = CommandObs::start(flags.telemetry, flags.progress);
    let out_dir = flags
        .out_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("traces"));
    // Record with model checkpoints: the frames let `replay` and `sweep`
    // restore the retrained model at each delay-line pop instead of
    // refitting — the counterfactual lab's fast-path. Checkpoint-free
    // readers skip the frames transparently.
    let factory = TraceDirFactory::create_with(&out_dir, true)
        .map_err(|e| CliError::usage(format!("cannot create {}: {e}", out_dir.display())))?;

    println!(
        "eqimpact experiments — recording {name}: scale {:?}, seed {}, shards {}, threads {}, traces under {}",
        scale_of(flags.quick),
        seed_label(flags.seed),
        flags.shards,
        thread_label(&flags),
        out_dir.display()
    );
    let config = base_config(&flags).with_trace(factory.clone());
    let report = scenario.run(&config).map_err(|e| e.to_string())?;
    for line in &report.summary {
        println!("  {line}");
    }
    let written = factory.written();
    if written.is_empty() {
        return Err(CliError::usage(format!(
            "recording `{name}` produced no trace files"
        )));
    }
    for path in &written {
        println!("  recorded {}", path.display());
    }
    println!("\ndone. replay with: experiments replay <trace>");
    obs.finish("record", &name, &out_dir)
}

fn cmd_replay(args: &[String]) -> Result<(), CliError> {
    let mut trace_path: Option<PathBuf> = None;
    let mut policy: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut telemetry = false;
    let mut progress = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--policy" => {
                policy = Some(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--policy requires a policy name"))?
                        .clone(),
                );
            }
            "--out" => {
                out_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--out requires a directory argument"))?
                        .clone(),
                );
            }
            "--telemetry" => telemetry = true,
            "--progress" => progress = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown flag `{flag}` (known flags: {REPLAY_FLAGS})"
                )));
            }
            positional if trace_path.is_none() => trace_path = Some(PathBuf::from(positional)),
            positional => {
                return Err(CliError::usage(format!(
                    "`replay` takes one trace file (unexpected: {positional})"
                )));
            }
        }
    }
    let trace_path =
        trace_path.ok_or_else(|| CliError::usage("`replay` needs a trace file path"))?;
    let file = std::fs::File::open(&trace_path)
        .map_err(|e| CliError::usage(format!("cannot open {}: {e}", trace_path.display())))?;
    let mut input = std::io::BufReader::new(file);
    let reader = TraceReader::new(&mut input as &mut dyn std::io::Read)
        .map_err(|e| CliError::usage(format!("{}: {e}", trace_path.display())))?;
    let header = reader.header().clone();
    // Same exit-code contract as every scenario-taking command: a
    // scenario name the registry has never heard of is exit 2 (the trace
    // names something that does not exist here — a typo or a foreign
    // trace), while a known scenario that simply lacks a replayer is
    // exit 3, the clean capability skip for CI legs iterating recorded
    // traces.
    find_scenario(&header.scenario)?;
    let tracer = registry::find_tracer(&header.scenario).ok_or_else(|| {
        CliError::unsupported(format!(
            "trace was recorded by scenario `{}`, which has no registered replayer \
             (replayable scenarios: {})",
            header.scenario,
            registry::tracers()
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;
    let obs = CommandObs::start(telemetry, progress);
    println!(
        "trace {}: scenario {}, variant {}, trial {}, scale {:?}, seed {}, shards {}, delay {}",
        trace_path.display(),
        header.scenario,
        header.variant,
        header.trial,
        header.scale,
        header.seed,
        header.shards,
        header.delay,
    );

    match policy {
        None => {
            let summary = tracer
                .replay(reader)
                .map_err(|e| CliError::usage(format!("{}: {e}", trace_path.display())))?;
            println!(
                "replayed {} steps x {} users — byte-identical to the recorded run \
                 (every recomputed signal and filter output matched the recorded bits)",
                summary.record.steps(),
                summary.record.user_count()
            );
        }
        Some(policy) => {
            let report = tracer
                .evaluate(reader, &policy)
                .map_err(|e| CliError::usage(format!("{}: {e}", trace_path.display())))?;
            println!(
                "off-policy `{policy}` vs recorded `{}` over {} steps x {} users:",
                report.variant, report.steps, report.users
            );
            println!(
                "  decision agreement {:.4}; positive rate {:.4} -> {:.4}",
                report.agreement, report.baseline.positive_rate, report.candidate.positive_rate
            );
            println!(
                "  demographic-parity gap {:.4} -> {:.4} (delta {:+.4})",
                report.baseline.parity_gap, report.candidate.parity_gap, report.parity_gap_delta
            );
            println!(
                "  equal-opportunity gap  {:.4} -> {:.4} (delta {:+.4})",
                report.baseline.opportunity_gap,
                report.candidate.opportunity_gap,
                report.opportunity_gap_delta
            );
            std::fs::create_dir_all(&out_dir).map_err(|e| {
                CliError::usage(format!("cannot create {}: {e}", out_dir.display()))
            })?;
            // The variant is part of the identity: the same policy
            // evaluated against different recorded behaviours must not
            // overwrite itself.
            let out_path = out_dir.join(format!(
                "offpolicy_{}_{}_vs_{}_trial{}.json",
                report.scenario, policy, header.variant, header.trial
            ));
            std::fs::write(&out_path, report.to_json().render_pretty()).map_err(|e| {
                CliError::usage(format!("cannot write {}: {e}", out_path.display()))
            })?;
            println!("  wrote {}", out_path.display());
        }
    }
    obs.finish("replay", &header.scenario, &out_dir)
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let mut scenario: Option<String> = None;
    let mut traces_dir = PathBuf::from("traces");
    let mut grid_spec: Option<String> = None;
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut out_dir = PathBuf::from("results");
    let mut telemetry = false;
    let mut progress = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--traces" => {
                traces_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--traces requires a directory argument"))?
                        .clone(),
                );
            }
            "--grid" => {
                grid_spec = Some(
                    iter.next()
                        .ok_or_else(|| {
                            CliError::usage(
                                "--grid requires a spec like `policy=a,b;threshold=0,10`",
                            )
                        })?
                        .clone(),
                );
            }
            "--quick" => quick = true,
            "--seed" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--seed requires a u64 value"))?;
                seed = Some(value.parse().map_err(|_| {
                    CliError::usage(format!("--seed requires a u64, got `{value}`"))
                })?);
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--threads requires a positive lane count"))?;
                threads = Some(parse_threads(value)?);
            }
            "--out" => {
                out_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--out requires a directory argument"))?
                        .clone(),
                );
            }
            "--telemetry" => telemetry = true,
            "--progress" => progress = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown flag `{flag}` (known flags: {SWEEP_FLAGS})"
                )));
            }
            positional if scenario.is_none() => scenario = Some(positional.to_string()),
            positional => {
                return Err(CliError::usage(format!(
                    "`sweep` takes one scenario name (unexpected: {positional})"
                )));
            }
        }
    }
    let sweep_names: Vec<&str> = registry::sweeps().iter().map(|s| s.name()).collect();
    let name = scenario.ok_or_else(|| {
        CliError::usage(format!(
            "`sweep` needs a scenario name (sweepable scenarios: {})",
            sweep_names.join(", ")
        ))
    })?;
    // Unknown scenario is exit 2 (a typo); a known scenario without a
    // sweep target is exit 3 (a clean capability skip for CI legs).
    find_scenario(&name)?;
    let target = registry::find_sweep(&name).ok_or_else(|| {
        CliError::unsupported(format!(
            "scenario `{name}` does not support sweeps (sweepable scenarios: {})",
            sweep_names.join(", ")
        ))
    })?;
    if let Some(threads) = threads {
        ThreadBudget::init_global(threads).map_err(|existing| {
            CliError::usage(format!(
                "--threads {threads} rejected: the thread budget was already \
                 fixed at {existing} lanes (set it before any parallel work)"
            ))
        })?;
    }

    let obs = CommandObs::start(telemetry, progress);
    let grid = match &grid_spec {
        None => target.default_grid(),
        Some(spec) => CandidateGrid::parse(spec, &target.default_grid())
            .map_err(|e| CliError::usage(format!("--grid: {e}")))?,
    };
    if grid.is_empty() {
        return Err(CliError::usage("--grid selects no candidates"));
    }

    // Every trace the scenario recorded under --traces, in deterministic
    // (sorted-filename) order — the order trace labels appear in the
    // report and per-candidate statistics pool over.
    let mut trace_paths: Vec<PathBuf> = std::fs::read_dir(&traces_dir)
        .map_err(|e| CliError::usage(format!("cannot read {}: {e}", traces_dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.extension().is_some_and(|ext| ext == "eqtrace")
                && path
                    .file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.starts_with(&format!("{name}-")))
        })
        .collect();
    trace_paths.sort();
    if trace_paths.is_empty() {
        return Err(CliError::usage(format!(
            "no `{name}-*.eqtrace` files under {} (record some with: experiments record {name})",
            traces_dir.display()
        )));
    }
    let traces: Vec<FileTrace> = trace_paths.iter().map(FileTrace::new).collect();
    let sources: Vec<&dyn TraceSource> = traces.iter().map(|t| t as &dyn TraceSource).collect();

    let config = SweepConfig {
        seed: seed.unwrap_or(SweepConfig::default().seed),
        // --quick cuts the bootstrap work for CI smoke runs; the
        // rankings stay deterministic either way.
        resamples: if quick {
            50
        } else {
            SweepConfig::default().resamples
        },
        ..SweepConfig::default()
    };
    println!(
        "eqimpact experiments — sweeping {name}: {} candidates x {} traces, seed {}, {} resamples, threads {}",
        grid.len(),
        sources.len(),
        config.seed,
        config.resamples,
        match threads {
            Some(n) => n.to_string(),
            None => format!("{} (auto)", ThreadBudget::global().capacity()),
        }
    );
    let report = run_sweep(target, &sources, &grid, &config, ThreadBudget::global())
        .map_err(|e| CliError::usage(format!("sweep failed: {e}")))?;

    println!();
    print!("{}", report.render_text());
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| CliError::usage(format!("cannot create {}: {e}", out_dir.display())))?;
    let json_path = out_dir.join(format!("sweep_{name}.json"));
    std::fs::write(&json_path, report.to_json().render_pretty())
        .map_err(|e| CliError::usage(format!("cannot write {}: {e}", json_path.display())))?;
    let text_path = out_dir.join(format!("sweep_{name}.txt"));
    std::fs::write(&text_path, report.render_text())
        .map_err(|e| CliError::usage(format!("cannot write {}: {e}", text_path.display())))?;
    println!("wrote {}", json_path.display());
    println!("wrote {}", text_path.display());
    obs.finish("sweep", &name, &out_dir)
}

fn cmd_certify(args: &[String]) -> Result<(), CliError> {
    let mut scenario: Option<String> = None;
    let mut traces_dir = PathBuf::from("traces");
    let mut seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut out_dir = PathBuf::from("results");
    let mut telemetry = false;
    let mut progress = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--traces" => {
                traces_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--traces requires a directory argument"))?
                        .clone(),
                );
            }
            "--seed" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--seed requires a u64 value"))?;
                seed = Some(value.parse().map_err(|_| {
                    CliError::usage(format!("--seed requires a u64, got `{value}`"))
                })?);
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage("--threads requires a positive lane count"))?;
                threads = Some(parse_threads(value)?);
            }
            "--out" => {
                out_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| CliError::usage("--out requires a directory argument"))?
                        .clone(),
                );
            }
            "--telemetry" => telemetry = true,
            "--progress" => progress = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!(
                    "unknown flag `{flag}` (known flags: {CERTIFY_FLAGS})"
                )));
            }
            positional if scenario.is_none() => scenario = Some(positional.to_string()),
            positional => {
                return Err(CliError::usage(format!(
                    "`certify` takes one scenario name (unexpected: {positional})"
                )));
            }
        }
    }
    let certify_names: Vec<&str> = registry::certifies().iter().map(|c| c.name()).collect();
    let name = scenario.ok_or_else(|| {
        CliError::usage(format!(
            "`certify` needs a scenario name (certifiable scenarios: {})",
            certify_names.join(", ")
        ))
    })?;
    // Unknown scenario is exit 2 (a typo); a known scenario without a
    // certification target is exit 3 (a clean capability skip for CI).
    find_scenario(&name)?;
    let target = registry::find_certify(&name).ok_or_else(|| {
        CliError::unsupported(format!(
            "scenario `{name}` does not support certification (certifiable scenarios: {})",
            certify_names.join(", ")
        ))
    })?;
    if let Some(threads) = threads {
        ThreadBudget::init_global(threads).map_err(|existing| {
            CliError::usage(format!(
                "--threads {threads} rejected: the thread budget was already \
                 fixed at {existing} lanes (set it before any parallel work)"
            ))
        })?;
    }

    let obs = CommandObs::start(telemetry, progress);
    // Every trace the scenario recorded under --traces, in deterministic
    // (sorted-filename) order — the order certificates appear in the
    // report and per-check verdicts fold over.
    let mut trace_paths: Vec<PathBuf> = std::fs::read_dir(&traces_dir)
        .map_err(|e| CliError::usage(format!("cannot read {}: {e}", traces_dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.extension().is_some_and(|ext| ext == "eqtrace")
                && path
                    .file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.starts_with(&format!("{name}-")))
        })
        .collect();
    trace_paths.sort();
    if trace_paths.is_empty() {
        return Err(CliError::usage(format!(
            "no `{name}-*.eqtrace` files under {} (record some with: experiments record {name})",
            traces_dir.display()
        )));
    }
    let traces: Vec<FileTrace> = trace_paths.iter().map(FileTrace::new).collect();
    let sources: Vec<&dyn TraceSource> = traces.iter().map(|t| t as &dyn TraceSource).collect();

    let config = CertifyConfig {
        seed: seed.unwrap_or(CertifyConfig::default().seed),
        ..CertifyConfig::default()
    };
    println!(
        "eqimpact experiments — certifying {name}: {} traces, seed {}, threads {}",
        sources.len(),
        config.seed,
        match threads {
            Some(n) => n.to_string(),
            None => format!("{} (auto)", ThreadBudget::global().capacity()),
        }
    );
    let report = run_certification(target, &sources, &config, ThreadBudget::global())
        .map_err(|e| CliError::usage(format!("certification failed: {e}")))?;

    println!();
    print!("{}", report.render_text());
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| CliError::usage(format!("cannot create {}: {e}", out_dir.display())))?;
    let json_path = out_dir.join(format!("certify_{name}.json"));
    std::fs::write(&json_path, report.to_json().render_pretty())
        .map_err(|e| CliError::usage(format!("cannot write {}: {e}", json_path.display())))?;
    let text_path = out_dir.join(format!("certify_{name}.txt"));
    std::fs::write(&text_path, report.render_text())
        .map_err(|e| CliError::usage(format!("cannot write {}: {e}", text_path.display())))?;
    println!("wrote {}", json_path.display());
    println!("wrote {}", text_path.display());
    obs.finish("certify", &name, &out_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threads_zero_clamps_to_one_lane_instead_of_erroring() {
        // The calling thread is always a lane, so `--threads 0` means
        // "the minimum budget", not a usage error (mirrors
        // EQIMPACT_THREADS=0 handling in the core pool).
        assert_eq!(parse_threads("0").unwrap(), 1);
        let flags = parse_common(&strings(&["credit", "--threads", "0"]), RUN_FLAGS, true).unwrap();
        assert_eq!(flags.threads, Some(1));
        assert_eq!(flags.scenario.as_deref(), Some("credit"));
    }

    #[test]
    fn threads_parse_accepts_positive_and_rejects_garbage() {
        assert_eq!(parse_threads("4").unwrap(), 4);
        let err = parse_threads("lots").unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("lots"));
    }

    /// Writes a minimal empty-but-well-formed trace whose header names
    /// `scenario`, so `replay` gets past parsing and hits the registry
    /// gates exactly like a real recorded trace would.
    fn write_stub_trace(scenario: &str) -> PathBuf {
        use eqimpact_core::recorder::RecordPolicy;
        use eqimpact_core::scenario::{Scale, TraceMeta};
        use eqimpact_trace::{TraceHeader, TraceWriter};
        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: scenario.to_string(),
            variant: "stub".to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: 0,
            shards: 1,
            delay: 0,
            policy: RecordPolicy::Full,
        });
        let writer = TraceWriter::new(Vec::new(), &header).unwrap();
        let bytes = writer.finish().unwrap();
        let path = std::env::temp_dir().join(format!(
            "eqimpact-exitcode-{scenario}-{}.eqtrace",
            std::process::id()
        ));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn scenario_commands_agree_on_exit_codes_for_unknown_and_unsupported() {
        // The shared contract across every scenario-taking command:
        // exit 2 = the name is not a registered scenario at all (and the
        // message lists the known names), exit 3 = the scenario exists
        // but lacks this capability (the clean CI matrix skip).
        let unknown_record = cmd_record(&strings(&["nope"])).unwrap_err();
        let unknown_sweep = cmd_sweep(&strings(&["nope"])).unwrap_err();
        let unknown_certify = cmd_certify(&strings(&["nope"])).unwrap_err();
        for err in [&unknown_record, &unknown_sweep, &unknown_certify] {
            assert_eq!(err.code, 2, "unknown scenario must exit 2: {}", err.message);
            assert!(
                err.message.contains("credit") && err.message.contains("hiring"),
                "unknown-scenario error should list known names: {}",
                err.message
            );
        }

        // `ablations` is registered but records no traces, so every
        // trace-consuming capability is a clean unsupported skip.
        let unsup_record = cmd_record(&strings(&["ablations"])).unwrap_err();
        let unsup_sweep = cmd_sweep(&strings(&["ablations"])).unwrap_err();
        let unsup_certify = cmd_certify(&strings(&["ablations"])).unwrap_err();
        for err in [&unsup_record, &unsup_sweep, &unsup_certify] {
            assert_eq!(
                err.code, 3,
                "known-but-unsupported scenario must exit 3: {}",
                err.message
            );
        }

        // `replay` reads the scenario name from the trace header instead
        // of argv, but must apply the same contract.
        let unknown_trace = write_stub_trace("nope");
        let err = cmd_replay(&strings(&[unknown_trace.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&unknown_trace).ok();
        assert_eq!(err.code, 2, "replay of unknown scenario: {}", err.message);
        assert!(
            err.message.contains("credit") && err.message.contains("hiring"),
            "replay unknown-scenario error should list known names: {}",
            err.message
        );

        let unsup_trace = write_stub_trace("ablations");
        let err = cmd_replay(&strings(&[unsup_trace.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&unsup_trace).ok();
        assert_eq!(
            err.code, 3,
            "replay of unsupported scenario: {}",
            err.message
        );
    }

    #[test]
    fn list_json_reports_per_scenario_capability_flags() {
        let json = list_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(
            r#"{"name":"credit","trace":true,"sweep":true,"certify":true,"telemetry":true}"#
        ));
        assert!(json.contains(
            r#"{"name":"hiring","trace":true,"sweep":true,"certify":true,"telemetry":true}"#
        ));
        assert!(json.contains(
            r#"{"name":"ablations","trace":false,"sweep":false,"certify":false,"telemetry":true}"#
        ));
        // Deterministically sorted by name, so the CI matrix is stable.
        let credit = json.find(r#""name":"credit""#).unwrap();
        let ablations = json.find(r#""name":"ablations""#).unwrap();
        let hiring = json.find(r#""name":"hiring""#).unwrap();
        assert!(ablations < credit && credit < hiring);
    }
}
