//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p eqimpact-bench --bin experiments -- [--quick] [--out DIR] [ARTIFACT...]
//! ```
//!
//! `ARTIFACT` is any of `table1 fig2 fig3 fig4 fig5 ablate-policy
//! ablate-integral ablate-markov ablate-delay ablate-filter perf-shard`;
//! with none given, everything runs. `--shards N` sets the intra-trial
//! shard count of the credit-loop artifacts (`0` = auto, one per core;
//! results are bit-identical for every value — it is a pure perf knob)
//! and of the `perf-shard` speedup measurement, which runs the 100k-user
//! production scale (20k under `--quick`).
//! Results are written as CSV/JSON under `--out` (default `results/`) and
//! summarized on stdout.

use eqimpact_bench::*;
use eqimpact_census::FIRST_YEAR;
use eqimpact_credit::report;
use eqimpact_stats::ToJson;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut shards = 1usize;
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(iter.next().expect("--out requires a directory argument"));
            }
            "--shards" => {
                shards = iter
                    .next()
                    .expect("--shards requires a count (0 = auto)")
                    .parse()
                    .expect("--shards requires an integer");
            }
            other => {
                let name = other.trim_start_matches("--").to_string();
                wanted.insert(name);
            }
        }
    }
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.contains(name);

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    println!(
        "eqimpact experiments — scale: {:?}, shards: {}, output: {}",
        scale,
        if shards == 0 {
            "auto".to_string()
        } else {
            shards.to_string()
        },
        out_dir.display()
    );

    if want("table1") {
        run_table1(scale, &out_dir);
    }
    if want("fig2") {
        run_fig2(&out_dir);
    }
    if want("fig3") || want("fig4") || want("fig5") {
        run_credit_figures(
            scale,
            &out_dir,
            shards,
            want("fig3"),
            want("fig4"),
            want("fig5"),
        );
    }
    if want("ablate-policy") {
        run_ablate_policy(scale, &out_dir);
    }
    if want("ablate-integral") {
        run_ablate_integral(scale, &out_dir);
    }
    if want("ablate-markov") {
        run_ablate_markov(scale, &out_dir);
    }
    if want("ablate-delay") {
        run_ablate_delay(scale, &out_dir);
    }
    if want("ablate-filter") {
        run_ablate_filter(scale, &out_dir);
    }
    if want("perf-shard") {
        run_perf_shard(scale, &out_dir, shards);
    }
    println!("done.");
}

fn write(path: &Path, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}

fn run_table1(scale: Scale, out: &Path) {
    println!("\n== T1: Table I — the learned scorecard ==");
    let t1 = table1_scorecard(scale);
    println!(
        "  Factor       learned     paper\n  History   {:+9.3}  {:+9.2}\n  Income    {:+9.3}  {:+9.2}\n  (base)    {:+9.3}        --",
        t1.history_points, t1.paper_reference.0, t1.income_points, t1.paper_reference.1, t1.base_points
    );
    println!(
        "  worked example (ADR 0.1, income>15K): {:.3} (paper: 4.953)",
        t1.example_score
    );
    let json = t1.to_json().render_pretty();
    write(&out.join("table1_scorecard.json"), &json);
}

fn run_fig2(out: &Path) {
    println!("\n== F2: Fig. 2 — 2020 income distribution by race ==");
    let rows = fig2_rows();
    println!(
        "  {:<10} {:>7} {:>7} {:>7}",
        "bracket", "black", "white", "asian"
    );
    for (label, shares) in &rows {
        println!(
            "  {:<10} {:>6.1}% {:>6.1}% {:>6.1}%",
            label,
            shares[0] * 100.0,
            shares[1] * 100.0,
            shares[2] * 100.0
        );
    }
    write(
        &out.join("fig2_income_distribution.csv"),
        &report::fig2_csv(&rows),
    );
}

fn run_credit_figures(scale: Scale, out: &Path, shards: usize, f3: bool, f4: bool, f5: bool) {
    println!("\n== F3/F4/F5: running the credit closed loop ==");
    let outcomes = credit_outcomes_with(scale, shards);
    if f3 {
        let series = fig3_series(&outcomes);
        println!("  Fig. 3 — final race-wise ADR (mean ± std across trials):");
        for s in &series {
            println!(
                "    {:<12} {:.4} ± {:.4}",
                s.race,
                s.mean.last().unwrap(),
                s.std.last().unwrap()
            );
        }
        // Terminal rendering of the three mean curves.
        use eqimpact_stats::plot::{AsciiChart, Series};
        let glyphs = ['B', 'W', 'A'];
        let mut chart = AsciiChart::new(57, 12);
        for (s, &g) in series.iter().zip(&glyphs) {
            chart = chart.series(Series::new(s.race.clone(), s.mean.clone(), g));
        }
        for line in chart.render().lines() {
            println!("    {line}");
        }
        write(
            &out.join("fig3_race_adr.csv"),
            &report::fig3_csv(&series, FIRST_YEAR),
        );
    }
    if f4 {
        let series = fig4_series(&outcomes);
        println!("  Fig. 4 — {} user ADR trajectories recorded", series.len());
        write(
            &out.join("fig4_user_adr.csv"),
            &report::fig4_csv(&series, FIRST_YEAR),
        );
    }
    if f5 {
        let hist = fig5_histogram(&outcomes);
        println!("  Fig. 5 — ADR density by year (dark = dense):");
        for line in hist.to_ascii().lines() {
            println!("    |{line}|");
        }
        write(
            &out.join("fig5_adr_density.csv"),
            &report::fig5_csv(&hist, FIRST_YEAR),
        );
    }
}

fn run_perf_shard(scale: Scale, out: &Path, shards: usize) {
    println!("\n== P-SH: intra-trial sharding speedup (production credit scale) ==");
    let r = perf_shard(scale, shards);
    println!(
        "  {} users x {} steps on {} cores:\n    sequential (1 shard): {:>9.2} ms\n    sharded ({:>2} shards): {:>9.2} ms  speedup x{:.2}",
        r.users, r.steps, r.cores, r.sequential_ms, r.shards, r.sharded_ms, r.speedup
    );
    let json = r.to_json().render_pretty();
    write(&out.join("perf_shard.json"), &json);
}

fn run_ablate_policy(scale: Scale, out: &Path) {
    println!("\n== A1: uniform-$50K vs income-multiple policy ==");
    let a1 = ablate_policy(scale);
    println!(
        "  long-run approval rate [black, white, asian]:\n    uniform-exclusion: [{:.4}, {:.4}, {:.4}]  access gap {:.4}\n    income-multiple:   [{:.4}, {:.4}, {:.4}]  access gap {:.4}",
        a1.uniform_approval[0],
        a1.uniform_approval[1],
        a1.uniform_approval[2],
        a1.approval_gaps.0,
        a1.income_multiple_approval[0],
        a1.income_multiple_approval[1],
        a1.income_multiple_approval[2],
        a1.approval_gaps.1
    );
    println!(
        "  final race ADR: uniform [{:.4}, {:.4}, {:.4}], income-multiple [{:.4}, {:.4}, {:.4}]",
        a1.uniform_final_adr[0],
        a1.uniform_final_adr[1],
        a1.uniform_final_adr[2],
        a1.income_multiple_final_adr[0],
        a1.income_multiple_final_adr[1],
        a1.income_multiple_final_adr[2]
    );
    let json = a1.to_json().render_pretty();
    write(&out.join("ablate_policy.json"), &json);

    // Year-by-year access series under the uniform policy (the exclusion
    // dynamics of the introduction, as CSV).
    let config = eqimpact_credit::sim::CreditConfig {
        steps: if matches!(scale, Scale::Quick) {
            30
        } else {
            60
        },
        trials: 1,
        users: if matches!(scale, Scale::Quick) {
            200
        } else {
            1000
        },
        lender: eqimpact_credit::sim::LenderKind::UniformExclusion,
        ..Default::default()
    };
    let outcomes = eqimpact_credit::sim::run_trials_protocol(&config);
    let rates = report::approval_rates_by_race(&outcomes);
    write(
        &out.join("ablate_policy_access_series.csv"),
        &report::approval_csv(&rates, FIRST_YEAR),
    );
}

fn run_ablate_integral(scale: Scale, out: &Path) {
    println!("\n== A2: integral action vs stable control (Sec. VI warning) ==");
    let a2 = ablate_integral(scale);
    println!(
        "  max per-agent spread across initial conditions:\n    integral + hysteretic relays:     {:.4}  (ergodicity LOST)\n    proportional + stochastic agents: {:.4}  (ergodic)",
        a2.integral_gap.max_spread, a2.proportional_gap.max_spread
    );
    println!(
        "  aggregate limits (integral runs): {:?}",
        a2.integral_gap
            .aggregate_limits
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let json = a2.to_json().render_pretty();
    write(&out.join("ablate_integral.json"), &json);
}

fn run_ablate_markov(scale: Scale, out: &Path) {
    println!("\n== A3: invariant-measure attractivity ==");
    let a3 = ablate_markov(scale);
    println!(
        "  primitive chain TV after 30 steps: {:.2e} (decays)\n  periodic  chain TV after 30 steps: {:.4} (plateau)\n  contractive IFS particle iteration converged: {} in {} iterations\n  IFS structural verdict: {:?}",
        a3.primitive_tv.last().unwrap(),
        a3.periodic_tv.last().unwrap(),
        a3.ifs_converged,
        a3.ifs_distances.len(),
        a3.ifs_verdict
    );
    let json = a3.to_json().render_pretty();
    write(&out.join("ablate_markov.json"), &json);
}

fn run_ablate_delay(scale: Scale, out: &Path) {
    println!("\n== A4: feedback-delay sensitivity ==");
    let a4 = ablate_delay(scale);
    println!("  delay | final race ADR spread | final mean ADR");
    for i in 0..a4.delays.len() {
        println!(
            "   {:>4} | {:>21.4} | {:>14.4}",
            a4.delays[i], a4.race_spread[i], a4.mean_adr[i]
        );
    }
    let json = a4.to_json().render_pretty();
    write(&out.join("ablate_delay.json"), &json);
}

fn run_ablate_filter(scale: Scale, out: &Path) {
    println!("\n== A5: feedback-filter choice ==");
    let a5 = ablate_filter(scale);
    println!("  filter          | tail tracking err | late signal swing");
    for i in 0..a5.filters.len() {
        println!(
            "  {:<15} | {:>17.4} | {:>17.5}",
            a5.filters[i], a5.tracking_error[i], a5.late_signal_swing[i]
        );
    }
    let json = a5.to_json().render_pretty();
    write(&out.join("ablate_filter.json"), &json);
}
