//! Registry-driven experiments CLI: lists and runs the registered
//! closed-loop scenarios (see `eqimpact_bench::registry`).
//!
//! ```text
//! cargo run --release -p eqimpact-bench --bin experiments -- <COMMAND>
//!
//! Commands:
//!   list [--json]
//!       Print every registered scenario with its artifacts; `--json`
//!       emits just the scenario names as a JSON array (consumed by the
//!       CI smoke matrix).
//!   run <scenario> [--quick] [--shards N] [--out DIR] [ARTIFACT...]
//!   run --all      [--quick] [--shards N] [--out DIR]
//!       Run one scenario (optionally restricted to the named artifacts)
//!       or every registered scenario.
//!
//! Flags:
//!   --quick      reduced CI scale instead of the paper's parameters
//!   --shards N   intra-trial shard count (0 = auto, one per core);
//!                records are bit-identical for every value
//!   --out DIR    artifact output directory (default `results/`)
//! ```
//!
//! Scenario names, artifact names and flags are all validated against
//! the registry: a typo like `--quikc` or `fig9` exits with status 2 and
//! the list of known names instead of being silently ignored. Artifacts
//! are written as CSV/JSON under `--out` and summarized on stdout.

use eqimpact_bench::registry;
use eqimpact_core::scenario::{write_artifacts, DynScenario, Scale, ScenarioConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// Flags accepted by `run`, for the unknown-flag error message.
const RUN_FLAGS: &str = "--all, --quick, --shards N, --out DIR";

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `experiments help` for usage");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print_usage();
            Ok(())
        }
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some(other) => Err(format!(
            "unknown command `{other}` (known commands: list, run, help)"
        )),
    }
}

fn print_usage() {
    println!("experiments — registry-driven paper artifacts and scenarios");
    println!();
    println!("  experiments list [--json]");
    println!("  experiments run <scenario> [--quick] [--shards N] [--out DIR] [ARTIFACT...]");
    println!("  experiments run --all      [--quick] [--shards N] [--out DIR]");
    println!();
    print_scenarios();
}

fn print_scenarios() {
    println!("registered scenarios:");
    for scenario in registry::scenarios() {
        println!("  {:<11} {}", scenario.name(), scenario.description());
        for spec in scenario.artifacts() {
            println!("    - {:<16} {}", spec.name, spec.description);
        }
    }
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    match args {
        [] => {
            print_scenarios();
            Ok(())
        }
        [flag] if flag == "--json" => {
            let names: Vec<String> = registry::names()
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect();
            println!("[{}]", names.join(","));
            Ok(())
        }
        _ => Err(format!(
            "unknown arguments to `list`: {} (known: --json)",
            args.join(" ")
        )),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut all = false;
    let mut shards = 1usize;
    let mut out_dir = PathBuf::from("results");
    let mut scenario_name: Option<String> = None;
    let mut artifacts: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--all" => all = true,
            "--shards" => {
                let value = iter
                    .next()
                    .ok_or("--shards requires a count (0 = auto, one per core)")?;
                shards = value
                    .parse()
                    .map_err(|_| format!("--shards requires an integer, got `{value}`"))?;
            }
            "--out" => {
                out_dir = PathBuf::from(
                    iter.next()
                        .ok_or("--out requires a directory argument")?
                        .clone(),
                );
            }
            flag if flag.starts_with("--") => {
                // The pre-redesign CLI swallowed unknown flags as artifact
                // names, so a typo silently selected nothing. Reject them.
                return Err(format!("unknown flag `{flag}` (known flags: {RUN_FLAGS})"));
            }
            positional if scenario_name.is_none() && !all => {
                scenario_name = Some(positional.to_string());
            }
            positional => artifacts.push(positional.to_string()),
        }
    }

    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let selected: Vec<&'static dyn DynScenario> = if all {
        if scenario_name.is_some() || !artifacts.is_empty() {
            return Err(
                "`run --all` runs every scenario in full; drop the scenario/artifact names"
                    .to_string(),
            );
        }
        registry::scenarios().to_vec()
    } else {
        let name = scenario_name.ok_or_else(|| {
            format!(
                "`run` needs a scenario name or --all (known scenarios: {})",
                registry::names().join(", ")
            )
        })?;
        let scenario = registry::find(&name).ok_or_else(|| {
            format!(
                "unknown scenario `{name}` (known scenarios: {})",
                registry::names().join(", ")
            )
        })?;
        vec![scenario]
    };

    println!(
        "eqimpact experiments — scale: {scale:?}, shards: {}, output: {}",
        if shards == 0 {
            "auto".to_string()
        } else {
            shards.to_string()
        },
        out_dir.display()
    );

    for scenario in selected {
        let mut config = ScenarioConfig::new(scale).with_shards(shards);
        if !artifacts.is_empty() {
            config = config.with_artifacts(artifacts.iter().cloned());
        }
        // Under --all, a global shard count must not abort the sweep on
        // scenarios without intra-trial parallelism — run those
        // sequentially instead. An explicit single-scenario request
        // still errors, so the incompatibility is never silent.
        if all && config.shards != 1 && !scenario.supports_sharding() {
            println!(
                "\n(note: `{}` has no intra-trial sharding; running it sequentially)",
                scenario.name()
            );
            config.shards = 1;
        }
        println!("\n== {}: {} ==", scenario.name(), scenario.description());
        let report = scenario.run(&config).map_err(|e| e.to_string())?;
        for line in &report.summary {
            println!("  {line}");
        }
        let written =
            write_artifacts(scenario.name(), &report, &out_dir).map_err(|e| e.to_string())?;
        for path in written {
            println!("  wrote {}", path.display());
        }
    }
    println!("\ndone.");
    Ok(())
}
