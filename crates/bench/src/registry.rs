//! The static scenario registry behind the `experiments` CLI.
//!
//! Every workload the binary can run is a
//! [`DynScenario`](eqimpact_core::scenario::DynScenario) registered here:
//! the closed-loop case studies ([`CreditScenario`], [`HiringScenario`])
//! plug in through the typed `Scenario` trait, while the ablation suite
//! and the sharding perf measurement implement the object-safe face
//! directly (they are not trials-of-one-outcome workloads). Adding a
//! scenario is one `impl` plus one line in [`scenarios`]; the CLI, the
//! artifact validation and the CI smoke matrix pick it up automatically.

use crate::experiments::{
    ablate_delay, ablate_filter, ablate_integral, ablate_markov, ablate_policy, perf_shard,
    perf_sweep, perf_trace,
};
use eqimpact_census::FIRST_YEAR;
use eqimpact_certify::CertifyTarget;
use eqimpact_core::scenario::{
    validate_artifacts, Artifact, ArtifactSpec, DynScenario, ScenarioConfig, ScenarioError,
    ScenarioReport,
};
use eqimpact_credit::report;
use eqimpact_credit::sim::{run_trials_protocol, CreditConfig, LenderKind};
use eqimpact_credit::{CreditCertify, CreditScenario, CreditSweep, CreditTracer};
use eqimpact_hiring::{HiringCertify, HiringScenario, HiringSweep, HiringTracer};
use eqimpact_lab::SweepTarget;
use eqimpact_stats::ToJson;
use eqimpact_trace::TraceReplayer;

/// The ablation suite (A1-A5) as one registry scenario. Each artifact is
/// an independent study with its own internal protocol, so this type
/// implements [`DynScenario`] directly instead of the trials-driven
/// `Scenario` trait.
pub struct AblationScenario;

const ABLATION_ARTIFACTS: &[ArtifactSpec] = &[
    ArtifactSpec {
        name: "ablate-policy",
        description: "A1: uniform-$50K vs income-multiple access (plus access series CSV)",
    },
    ArtifactSpec {
        name: "ablate-integral",
        description: "A2: integral action vs stable control (ergodicity loss)",
    },
    ArtifactSpec {
        name: "ablate-markov",
        description: "A3: invariant-measure attractivity",
    },
    ArtifactSpec {
        name: "ablate-delay",
        description: "A4: feedback-delay sensitivity of the credit loop",
    },
    ArtifactSpec {
        name: "ablate-filter",
        description: "A5: feedback-filter choice in the ensemble loop",
    },
];

impl DynScenario for AblationScenario {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn description(&self) -> &'static str {
        "ablation suite A1-A5: policy, integral action, Markov attractivity, delay, filter"
    }

    fn artifacts(&self) -> &'static [ArtifactSpec] {
        ABLATION_ARTIFACTS
    }

    fn supports_sharding(&self) -> bool {
        false
    }

    fn run(&self, config: &ScenarioConfig) -> Result<ScenarioReport, ScenarioError> {
        validate_artifacts(DynScenario::name(self), self.artifacts(), config)?;
        if config.shards != 1 {
            return Err(ScenarioError::ShardingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        if config.trace.is_some() {
            return Err(ScenarioError::TracingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        let scale = config.scale;
        let mut out = ScenarioReport::default();
        if config.wants("ablate-policy") {
            let a1 =
                ablate_policy(scale, config.seed).map_err(|message| ScenarioError::Failed {
                    scenario: DynScenario::name(self),
                    message,
                })?;
            out.summary.push(format!(
                "A1 — access gaps: uniform-exclusion {:.4}, income-multiple {:.4}",
                a1.approval_gaps.0, a1.approval_gaps.1
            ));
            out.artifacts.push(Artifact {
                name: "ablate-policy",
                file: "ablate_policy.json".to_string(),
                contents: a1.to_json().render_pretty(),
            });
            // Year-by-year access series under the uniform policy (the
            // exclusion dynamics of the introduction, as CSV).
            let base = eqimpact_credit::scenario::scale_config(scale, LenderKind::UniformExclusion);
            let config = CreditConfig {
                steps: scale.pick(60, 30),
                trials: 1,
                seed: config.seed.unwrap_or(base.seed),
                ..base
            };
            let outcomes = run_trials_protocol(&config);
            let rates = report::approval_rates_by_race(&outcomes);
            out.artifacts.push(Artifact {
                name: "ablate-policy",
                file: "ablate_policy_access_series.csv".to_string(),
                contents: report::approval_csv(&rates, FIRST_YEAR),
            });
        }
        if config.wants("ablate-integral") {
            let a2 = ablate_integral(scale, config.seed);
            out.summary.push(format!(
                "A2 — max spread: integral {:.4} (ergodicity LOST), proportional {:.4} (ergodic)",
                a2.integral_gap.max_spread, a2.proportional_gap.max_spread
            ));
            out.artifacts.push(Artifact {
                name: "ablate-integral",
                file: "ablate_integral.json".to_string(),
                contents: a2.to_json().render_pretty(),
            });
        }
        if config.wants("ablate-markov") {
            let a3 =
                ablate_markov(scale, config.seed).map_err(|message| ScenarioError::Failed {
                    scenario: DynScenario::name(self),
                    message,
                })?;
            out.summary.push(format!(
                "A3 — primitive TV {:.2e}, periodic TV {:.4}, IFS converged: {}, verdict {:?}",
                a3.primitive_tv.last().copied().unwrap_or(f64::NAN),
                a3.periodic_tv.last().copied().unwrap_or(f64::NAN),
                a3.ifs_converged,
                a3.ifs_verdict
            ));
            out.artifacts.push(Artifact {
                name: "ablate-markov",
                file: "ablate_markov.json".to_string(),
                contents: a3.to_json().render_pretty(),
            });
        }
        if config.wants("ablate-delay") {
            let a4 = ablate_delay(scale, config.seed).map_err(|message| ScenarioError::Failed {
                scenario: DynScenario::name(self),
                message,
            })?;
            out.summary
                .push("A4 — delay | final race ADR spread | final mean ADR".to_string());
            for i in 0..a4.delays.len() {
                out.summary.push(format!(
                    "      {:>4} | {:>21.4} | {:>14.4}",
                    a4.delays[i], a4.race_spread[i], a4.mean_adr[i]
                ));
            }
            out.artifacts.push(Artifact {
                name: "ablate-delay",
                file: "ablate_delay.json".to_string(),
                contents: a4.to_json().render_pretty(),
            });
        }
        if config.wants("ablate-filter") {
            let a5 = ablate_filter(scale, config.seed);
            out.summary
                .push("A5 — filter          | tail tracking err | late signal swing".to_string());
            for i in 0..a5.filters.len() {
                out.summary.push(format!(
                    "      {:<15} | {:>17.4} | {:>17.5}",
                    a5.filters[i], a5.tracking_error[i], a5.late_signal_swing[i]
                ));
            }
            out.artifacts.push(Artifact {
                name: "ablate-filter",
                file: "ablate_filter.json".to_string(),
                contents: a5.to_json().render_pretty(),
            });
        }
        Ok(out)
    }
}

/// The intra-trial sharding speedup measurement as a registry scenario
/// (production credit scale; [`ScenarioConfig::shards`] selects the
/// sharded leg's count, `<= 1` meaning auto).
pub struct PerfShardScenario;

const PERF_ARTIFACTS: &[ArtifactSpec] = &[ArtifactSpec {
    name: "perf-shard",
    description: "sequential vs sharded wall-clock of one production-scale credit trial",
}];

impl DynScenario for PerfShardScenario {
    fn name(&self) -> &'static str {
        "perf-shard"
    }

    fn description(&self) -> &'static str {
        "intra-trial sharding speedup at production credit scale (100k users; 20k under --quick)"
    }

    fn artifacts(&self) -> &'static [ArtifactSpec] {
        PERF_ARTIFACTS
    }

    fn supports_sharding(&self) -> bool {
        true
    }

    fn run(&self, config: &ScenarioConfig) -> Result<ScenarioReport, ScenarioError> {
        validate_artifacts(DynScenario::name(self), self.artifacts(), config)?;
        if config.trace.is_some() {
            return Err(ScenarioError::TracingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        let r = perf_shard(config.scale, config.shards, config.seed);
        let summary = vec![format!(
            "{} users x {} steps on {} cores: sequential {:.2} ms, {} shards {:.2} ms, speedup x{:.2}",
            r.users, r.steps, r.cores, r.sequential_ms, r.shards, r.sharded_ms, r.speedup
        )];
        Ok(ScenarioReport {
            summary,
            artifacts: vec![Artifact {
                name: "perf-shard",
                file: "perf_shard.json".to_string(),
                contents: r.to_json().render_pretty(),
            }],
        })
    }
}

/// The trace-store perf measurement as a registry scenario: records a
/// paper-scale credit trial to an in-memory trace, then times verified
/// replay against re-simulation and compares the trace's size against
/// the equivalent JSON dump.
pub struct PerfTraceScenario;

const PERF_TRACE_ARTIFACTS: &[ArtifactSpec] = &[ArtifactSpec {
    name: "perf-trace",
    description: "replay vs re-simulate wall-clock and trace vs JSON size of one credit trial",
}];

impl DynScenario for PerfTraceScenario {
    fn name(&self) -> &'static str {
        "perf-trace"
    }

    fn description(&self) -> &'static str {
        "trace-store perf: replay vs re-simulate, on-disk bytes vs the equivalent JSON dump"
    }

    fn artifacts(&self) -> &'static [ArtifactSpec] {
        PERF_TRACE_ARTIFACTS
    }

    fn supports_sharding(&self) -> bool {
        false
    }

    fn run(&self, config: &ScenarioConfig) -> Result<ScenarioReport, ScenarioError> {
        validate_artifacts(DynScenario::name(self), self.artifacts(), config)?;
        if config.shards != 1 {
            return Err(ScenarioError::ShardingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        if config.trace.is_some() {
            return Err(ScenarioError::TracingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        let r = perf_trace(config.scale, config.seed).map_err(|message| ScenarioError::Failed {
            scenario: DynScenario::name(self),
            message,
        })?;
        let summary = vec![
            format!(
                "{} users x {} steps: re-simulate {:.2} ms, verified replay {:.2} ms (x{:.2} faster)",
                r.users, r.steps, r.resimulate_ms, r.replay_ms, r.replay_speedup
            ),
            format!(
                "trace {} bytes vs JSON dump {} bytes (x{:.2} smaller; compact JSON x{:.2})",
                r.trace_bytes, r.json_bytes, r.json_ratio, r.compact_json_ratio
            ),
        ];
        Ok(ScenarioReport {
            summary,
            artifacts: vec![Artifact {
                name: "perf-trace",
                file: "perf_trace.json".to_string(),
                contents: r.to_json().render_pretty(),
            }],
        })
    }
}

/// The counterfactual-lab perf measurement as a registry scenario:
/// records a checkpointed paper-scale credit trace in memory, then times
/// checkpointed replay against re-simulation and a default-grid
/// off-policy sweep over the recorded trace.
pub struct PerfSweepScenario;

const PERF_SWEEP_ARTIFACTS: &[ArtifactSpec] = &[ArtifactSpec {
    name: "perf-sweep",
    description: "checkpointed replay vs re-simulate wall-clock plus a default-grid sweep",
}];

impl DynScenario for PerfSweepScenario {
    fn name(&self) -> &'static str {
        "perf-sweep"
    }

    fn description(&self) -> &'static str {
        "counterfactual-lab perf: checkpointed replay vs re-simulate, default-grid sweep timing"
    }

    fn artifacts(&self) -> &'static [ArtifactSpec] {
        PERF_SWEEP_ARTIFACTS
    }

    fn supports_sharding(&self) -> bool {
        false
    }

    fn run(&self, config: &ScenarioConfig) -> Result<ScenarioReport, ScenarioError> {
        validate_artifacts(DynScenario::name(self), self.artifacts(), config)?;
        if config.shards != 1 {
            return Err(ScenarioError::ShardingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        if config.trace.is_some() {
            return Err(ScenarioError::TracingUnsupported {
                scenario: DynScenario::name(self),
            });
        }
        let r = perf_sweep(config.scale, config.seed).map_err(|message| ScenarioError::Failed {
            scenario: DynScenario::name(self),
            message,
        })?;
        let summary = vec![
            format!(
                "{} users x {} steps: re-simulate {:.2} ms, checkpointed replay {:.2} ms (x{:.2} faster, {} checkpoints restored)",
                r.users,
                r.steps,
                r.resimulate_ms,
                r.checkpointed_replay_ms,
                r.replay_speedup,
                r.checkpoints_restored
            ),
            format!(
                "default-grid sweep: {} candidates over the recorded trace in {:.2} ms",
                r.candidates, r.sweep_ms
            ),
        ];
        Ok(ScenarioReport {
            summary,
            artifacts: vec![Artifact {
                name: "perf-sweep",
                file: "perf_sweep.json".to_string(),
                contents: r.to_json().render_pretty(),
            }],
        })
    }
}

/// Rejects duplicate names in a registry listing — the invariant behind
/// [`find`]'s "one name, one scenario" contract.
fn validate_unique_names(names: &[&str]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for name in names {
        if !seen.insert(*name) {
            return Err(format!("duplicate scenario name `{name}` in the registry"));
        }
    }
    Ok(())
}

/// Every registered scenario, in listing order.
///
/// # Panics
/// Panics (once, at first use) when two registered scenarios share a
/// name — a duplicate would make [`find`] and the CLI ambiguous, so the
/// registry refuses to construct.
pub fn scenarios() -> &'static [&'static dyn DynScenario] {
    static REGISTRY: [&dyn DynScenario; 6] = [
        &CreditScenario,
        &HiringScenario,
        &AblationScenario,
        &PerfShardScenario,
        &PerfTraceScenario,
        &PerfSweepScenario,
    ];
    static VALIDATED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    VALIDATED.get_or_init(|| {
        let names: Vec<&str> = REGISTRY.iter().map(|s| s.name()).collect();
        validate_unique_names(&names).expect("scenario registry");
    });
    &REGISTRY
}

/// Looks a scenario up by its registry name.
pub fn find(name: &str) -> Option<&'static dyn DynScenario> {
    scenarios().iter().copied().find(|s| s.name() == name)
}

/// The registered scenario names, in listing order.
pub fn names() -> Vec<&'static str> {
    scenarios().iter().map(|s| s.name()).collect()
}

/// The registered scenario names, deterministically sorted — the
/// `experiments list --json` order, so consumers (the CI matrix) see a
/// stable listing regardless of registration order.
pub fn sorted_names() -> Vec<&'static str> {
    let mut names = names();
    names.sort_unstable();
    names
}

/// Every registered trace replayer (the scenarios that can re-drive and
/// off-policy-evaluate their recorded traces), in listing order.
pub fn tracers() -> &'static [&'static dyn TraceReplayer] {
    static TRACERS: [&dyn TraceReplayer; 2] = [&CreditTracer, &HiringTracer];
    &TRACERS
}

/// Looks a trace replayer up by its scenario name.
pub fn find_tracer(name: &str) -> Option<&'static dyn TraceReplayer> {
    tracers().iter().copied().find(|t| t.name() == name)
}

/// Every registered sweep target (the scenarios whose recorded traces
/// the counterfactual lab can sweep candidate grids over), in listing
/// order.
pub fn sweeps() -> &'static [&'static dyn SweepTarget] {
    static SWEEPS: [&dyn SweepTarget; 2] = [&CreditSweep, &HiringSweep];
    &SWEEPS
}

/// Looks a sweep target up by its scenario name.
pub fn find_sweep(name: &str) -> Option<&'static dyn SweepTarget> {
    sweeps().iter().copied().find(|s| s.name() == name)
}

/// Every registered certification target (the scenarios whose recorded
/// traces the certification plane can turn into verdict artifacts), in
/// listing order.
pub fn certifies() -> &'static [&'static dyn CertifyTarget] {
    static CERTIFIES: [&dyn CertifyTarget; 2] = [&CreditCertify, &HiringCertify];
    &CERTIFIES
}

/// Looks a certification target up by its scenario name.
pub fn find_certify(name: &str) -> Option<&'static dyn CertifyTarget> {
    certifies().iter().copied().find(|c| c.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_core::scenario::Scale;

    #[test]
    fn registry_holds_distinct_named_scenarios() {
        let names = names();
        assert!(names.len() >= 2, "at least credit + hiring: {names:?}");
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate names: {names:?}");
        assert!(names.contains(&"credit") && names.contains(&"hiring"));
        for s in scenarios() {
            assert!(!s.description().is_empty());
            assert!(!s.artifacts().is_empty());
        }
    }

    #[test]
    fn find_resolves_names_and_rejects_unknowns() {
        assert_eq!(find("credit").unwrap().name(), "credit");
        assert_eq!(find("hiring").unwrap().name(), "hiring");
        assert!(find("credits").is_none());
        assert!(find("").is_none());
    }

    #[test]
    fn duplicate_names_are_rejected_at_construction() {
        assert!(validate_unique_names(&["credit", "hiring"]).is_ok());
        let err = validate_unique_names(&["credit", "hiring", "credit"]).unwrap_err();
        assert!(err.contains("credit"), "{err}");
        // And the live registry passes the same validation (forcing the
        // construction-time check to have run).
        let names = names();
        let refs: Vec<&str> = names.to_vec();
        assert!(validate_unique_names(&refs).is_ok());
    }

    #[test]
    fn sorted_names_are_deterministically_ordered() {
        let sorted = sorted_names();
        let mut expected = names();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        assert!(sorted.windows(2).all(|w| w[0] < w[1]), "{sorted:?}");
    }

    #[test]
    fn tracers_cover_the_closed_loop_scenarios() {
        let names: Vec<&str> = tracers().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["credit", "hiring"]);
        // Every tracer names a registered scenario and offers policies.
        for tracer in tracers() {
            assert!(find(tracer.name()).is_some(), "{}", tracer.name());
            assert!(!tracer.policies().is_empty());
        }
        assert!(find_tracer("credit").is_some());
        assert!(find_tracer("ablations").is_none());
    }

    #[test]
    fn sweeps_mirror_the_tracer_registrations() {
        // The counterfactual lab sweeps exactly the scenarios that
        // record replayable traces — a sweep without a tracer could
        // never get input, a tracer without a sweep would be a silent
        // gap in `experiments sweep`.
        let sweep_names: Vec<&str> = sweeps().iter().map(|s| s.name()).collect();
        let tracer_names: Vec<&str> = tracers().iter().map(|t| t.name()).collect();
        assert_eq!(sweep_names, tracer_names);
        for sweep in sweeps() {
            assert!(find(sweep.name()).is_some(), "{}", sweep.name());
            assert!(!sweep.default_grid().is_empty(), "{}", sweep.name());
            assert!(!sweep.known_policies().is_empty(), "{}", sweep.name());
            assert!(!sweep.known_filters().is_empty(), "{}", sweep.name());
            // The default grid stays within the declared axes.
            let grid = sweep.default_grid();
            for policy in &grid.policies {
                assert!(sweep.known_policies().contains(&policy.as_str()));
            }
            for filter in &grid.filters {
                assert!(sweep.known_filters().contains(&filter.as_str()));
            }
        }
        assert!(find_sweep("credit").is_some());
        assert!(find_sweep("ablations").is_none());
    }

    #[test]
    fn certifies_mirror_the_tracer_registrations() {
        // The certification plane certifies exactly the scenarios that
        // record replayable traces — a certify target without a tracer
        // could never get input, a tracer without a certify target would
        // be a silent gap in `experiments certify`.
        let certify_names: Vec<&str> = certifies().iter().map(|c| c.name()).collect();
        let tracer_names: Vec<&str> = tracers().iter().map(|t| t.name()).collect();
        assert_eq!(certify_names, tracer_names);
        for target in certifies() {
            assert!(find(target.name()).is_some(), "{}", target.name());
            let spec = target.spec();
            assert!(spec.bins > 0, "{}", target.name());
            assert!(spec.state_lo < spec.state_hi, "{}", target.name());
            assert!(!spec.model_fields.is_empty(), "{}", target.name());
        }
        assert!(find_certify("credit").is_some());
        assert!(find_certify("hiring").is_some());
        assert!(find_certify("ablations").is_none());
    }

    #[test]
    fn trace_support_and_replayer_registration_agree() {
        // One source of truth: a scenario records traces iff a replayer
        // is registered for it — a mismatch would make `experiments
        // record`'s exit-3 skip and run_scenario's gate disagree.
        for scenario in scenarios() {
            assert_eq!(
                scenario.supports_tracing(),
                find_tracer(scenario.name()).is_some(),
                "scenario `{}`: supports_tracing vs tracers() mismatch",
                scenario.name()
            );
        }
    }

    #[test]
    fn non_tracing_scenarios_reject_trace_configs() {
        use eqimpact_core::scenario::{TraceMeta, TraceSinkFactory};
        use eqimpact_core::StepSink;
        struct NullFactory;
        impl TraceSinkFactory for NullFactory {
            fn sink(&self, _meta: &TraceMeta) -> Box<dyn StepSink + Send> {
                Box::new(())
            }
            fn take_errors(&self) -> Vec<String> {
                Vec::new()
            }
        }
        let config = ScenarioConfig::new(Scale::Quick).with_trace(std::sync::Arc::new(NullFactory));
        for scenario in scenarios() {
            if scenario.supports_tracing() {
                continue;
            }
            assert!(
                matches!(
                    scenario.run(&config),
                    Err(ScenarioError::TracingUnsupported { .. })
                ),
                "scenario `{}` silently ignored an attached trace sink",
                scenario.name()
            );
        }
    }

    #[test]
    fn ablations_validate_artifact_names() {
        let bad = ScenarioConfig::new(Scale::Quick).with_artifacts(["ablate-nope"]);
        match AblationScenario.run(&bad) {
            Err(ScenarioError::UnknownArtifact {
                scenario, known, ..
            }) => {
                assert_eq!(scenario, "ablations");
                assert!(known.contains(&"ablate-delay"));
            }
            other => panic!("expected UnknownArtifact, got {other:?}"),
        }
    }

    #[test]
    fn ablations_reject_sharding() {
        let config = ScenarioConfig::new(Scale::Quick).with_shards(4);
        assert!(matches!(
            AblationScenario.run(&config),
            Err(ScenarioError::ShardingUnsupported { .. })
        ));
    }

    #[test]
    fn ablation_subset_runs_only_what_was_asked() {
        let config = ScenarioConfig::new(Scale::Quick).with_artifacts(["ablate-markov"]);
        let report = AblationScenario.run(&config).unwrap();
        assert_eq!(report.artifacts.len(), 1);
        assert_eq!(report.artifacts[0].file, "ablate_markov.json");
        assert!(report.summary[0].contains("A3"));
    }
}
