//! The experiment implementations.

use eqimpact_census::{IncomeTable, Race};
use eqimpact_control::controller::{IController, PController};
use eqimpact_control::ensemble::{
    ergodicity_gap, identical_hysteresis_ensemble, logistic_ensemble, EnsembleInit, ErgodicityGap,
};
use eqimpact_credit::report;
use eqimpact_credit::sim::{run_trials_protocol, CreditConfig, CreditOutcome, LenderKind};
use eqimpact_linalg::norm::MetricKind;
use eqimpact_markov::contractivity::box_sampler;
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::invariant::{estimate_invariant_measure, FiniteChain};
use eqimpact_markov::operator::ParticleMeasure;
use eqimpact_markov::{ergodic, MarkovSystem};
use eqimpact_stats::{Json, SimRng, ToJson};

/// Scale of an experiment run, re-exported from the core scenario API:
/// `Paper` uses the paper's parameters (N = 1000, 5 trials), `Quick` a
/// reduced size for benches and CI.
pub use eqimpact_core::scenario::Scale;

/// The credit configuration of a scale (the scenario registry's mapping,
/// shared so ablations sweep the same shapes).
fn credit_config(scale: Scale, lender: LenderKind) -> CreditConfig {
    eqimpact_credit::scenario::scale_config(scale, lender)
}

// ---------------------------------------------------------------------------
// T1 — Table I
// ---------------------------------------------------------------------------

/// Table I result: the learned scorecard and the paper's reference
/// values (the shared extraction from `eqimpact_credit::report`, so the
/// bench surface and the `credit` scenario artifact cannot diverge).
pub use eqimpact_credit::report::Table1Scorecard as Table1Result;

/// T1: runs the closed loop at the given scale and extracts the final
/// scorecard. Fails (with a named error, per the CLI panic contract)
/// when no trial produced a fitted scorecard.
pub fn table1_scorecard(scale: Scale) -> Result<Table1Result, String> {
    let outcomes = run_trials_protocol(&credit_config(scale, LenderKind::Scorecard));
    let card = outcomes
        .iter()
        .find_map(|o| o.scorecard.clone())
        .ok_or_else(|| "table1: no trial produced a scorecard (lender never refit)".to_string())?;
    Ok(Table1Result::from_scorecard(&card))
}

// ---------------------------------------------------------------------------
// F2 — Fig. 2
// ---------------------------------------------------------------------------

/// F2: the 2020 income distribution by race, as CSV-ready rows.
pub fn fig2_rows() -> Vec<(String, [f64; 3])> {
    report::fig2_income_distribution(&IncomeTable::embedded(), 2020)
}

// ---------------------------------------------------------------------------
// F3/F4/F5 — the credit loop figures
// ---------------------------------------------------------------------------

/// The shared credit-loop run behind Figs. 3-5.
pub fn credit_outcomes(scale: Scale) -> Vec<CreditOutcome> {
    credit_outcomes_with(scale, 1)
}

/// [`credit_outcomes`] with an explicit intra-trial shard count (a pure
/// perf knob: records are bit-identical for every value; `0` = auto).
pub fn credit_outcomes_with(scale: Scale, shards: usize) -> Vec<CreditOutcome> {
    let config = CreditConfig {
        shards,
        ..credit_config(scale, LenderKind::Scorecard)
    };
    run_trials_protocol(&config)
}

/// F3: race-wise mean ± std ADR series.
pub fn fig3_series(outcomes: &[CreditOutcome]) -> Vec<report::RaceAdrSummary> {
    report::fig3_race_adr(outcomes)
}

/// F4: all per-user ADR trajectories with race labels.
pub fn fig4_series(outcomes: &[CreditOutcome]) -> Vec<(String, Vec<f64>)> {
    report::fig4_user_adr(outcomes)
}

/// F5: the (year x ADR) density histogram.
pub fn fig5_histogram(outcomes: &[CreditOutcome]) -> eqimpact_stats::Histogram2D {
    report::fig5_density(outcomes, 25)
}

// ---------------------------------------------------------------------------
// A1 — policy ablation (the introduction's example)
// ---------------------------------------------------------------------------

/// A1 result: long-run race-wise credit **access** under two policies.
///
/// The introduction's claim: the flat-$50K "most equal treatment" policy
/// regularly declines the lower-income subgroup after their defaults
/// (unequal impact on access), while the income-scaled policy keeps access
/// equal. Access is the long-run average approval rate — the Cesàro
/// average of the *decision* broadcast to each user.
#[derive(Debug, Clone)]
pub struct PolicyAblation {
    /// Long-run race approval rates `[Black, White, Asian]` under the
    /// uniform-$50K permanent-exclusion policy (tail mean over the last
    /// quarter of the horizon).
    pub uniform_approval: [f64; 3],
    /// The same under the income-multiple policy.
    pub income_multiple_approval: [f64; 3],
    /// Final race ADRs under the uniform policy (context).
    pub uniform_final_adr: [f64; 3],
    /// Final race ADRs under the income-multiple policy (context).
    pub income_multiple_final_adr: [f64; 3],
    /// Largest inter-race approval gap per policy `(uniform, income)` —
    /// the introduction predicts `uniform >> income = 0`.
    pub approval_gaps: (f64, f64),
}

impl ToJson for PolicyAblation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("uniform_approval", self.uniform_approval.to_json()),
            (
                "income_multiple_approval",
                self.income_multiple_approval.to_json(),
            ),
            ("uniform_final_adr", self.uniform_final_adr.to_json()),
            (
                "income_multiple_final_adr",
                self.income_multiple_final_adr.to_json(),
            ),
            ("approval_gaps", self.approval_gaps.to_json()),
        ])
    }
}

/// A1: compares the introduction's two policies on a long horizon.
/// `seed` overrides the protocol's base seed (`None` = the default).
pub fn ablate_policy(scale: Scale, seed: Option<u64>) -> Result<PolicyAblation, String> {
    let steps = match scale {
        Scale::Paper => 60,
        Scale::Quick => 30,
    };
    let run = |lender: LenderKind| -> Result<([f64; 3], [f64; 3]), String> {
        let base = credit_config(scale, lender);
        let config = CreditConfig {
            steps,
            trials: 1,
            seed: seed.unwrap_or(base.seed),
            ..base
        };
        let outcome = &run_trials_protocol(&config)[0];
        let mut approval = [0.0; 3];
        let mut final_adr = [0.0; 3];
        let tail_start = steps - steps / 4;
        for race in Race::ALL {
            let members = outcome.race_indices(race);
            // Tail-mean approval rate of the race.
            let mut approved = 0usize;
            let mut total = 0usize;
            for k in tail_start..steps {
                let signals = outcome.record.signals(k);
                for &i in &members {
                    total += 1;
                    if signals[i] > 0.0 {
                        approved += 1;
                    }
                }
            }
            approval[race.index()] = approved as f64 / total.max(1) as f64;
            final_adr[race.index()] = *outcome
                .race_adr_series(race)
                .last()
                .ok_or_else(|| "ablate-policy: empty ADR series (zero steps)".to_string())?;
        }
        Ok((approval, final_adr))
    };
    let (uniform_approval, uniform_final_adr) = run(LenderKind::UniformExclusion)?;
    let (income_approval, income_final_adr) = run(LenderKind::IncomeMultiple)?;
    let gap = |a: &[f64; 3]| {
        let hi = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = a.iter().cloned().fold(f64::INFINITY, f64::min);
        hi - lo
    };
    Ok(PolicyAblation {
        approval_gaps: (gap(&uniform_approval), gap(&income_approval)),
        uniform_approval,
        income_multiple_approval: income_approval,
        uniform_final_adr,
        income_multiple_final_adr: income_final_adr,
    })
}

// ---------------------------------------------------------------------------
// A2 — integral action destroys ergodicity
// ---------------------------------------------------------------------------

/// A2 result: the ergodicity gaps under integral and proportional control.
#[derive(Debug, Clone)]
pub struct IntegralAblation {
    /// Max per-agent spread of long-run averages across initial conditions
    /// under the integral controller with hysteretic agents.
    pub integral_gap: ErgodicityGap,
    /// The same under proportional control with stochastic agents.
    pub proportional_gap: ErgodicityGap,
}

impl ToJson for IntegralAblation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("integral_gap", self.integral_gap.to_json()),
            ("proportional_gap", self.proportional_gap.to_json()),
        ])
    }
}

/// A2: reproduces the Sec. VI warning at the given scale. `seed`
/// overrides the study's RNG seed (`None` = the default).
pub fn ablate_integral(scale: Scale, seed: Option<u64>) -> IntegralAblation {
    let (n, steps, discard) = match scale {
        Scale::Paper => (100, 10_000, 2_000),
        Scale::Quick => (40, 3_000, 500),
    };
    let mut rng = SimRng::new(seed.unwrap_or(2209));

    let hysteretic = identical_hysteresis_ensemble(n, 0.7, 0.3);
    let integral_gap = ergodicity_gap(
        &hysteretic,
        |_| IController::new(0.01, 0.5),
        0.5,
        &[
            EnsembleInit::first_k_on(0.5, n, n / 2),
            EnsembleInit::last_k_on(0.5, n, n / 2),
            EnsembleInit::all_off(0.0, n),
        ],
        steps,
        discard,
        &mut rng,
    );

    let stochastic = logistic_ensemble(n, 0.0, 1.0, 0.15);
    let proportional_gap = ergodicity_gap(
        &stochastic,
        |_| PController::new(1.0, 0.5),
        0.5,
        &[
            EnsembleInit::all_off(0.0, n),
            EnsembleInit::all_on(1.0, n),
            EnsembleInit::first_k_on(0.5, n, n / 2),
        ],
        steps,
        discard,
        &mut rng,
    );

    IntegralAblation {
        integral_gap,
        proportional_gap,
    }
}

// ---------------------------------------------------------------------------
// A3 — Markov-system attractivity
// ---------------------------------------------------------------------------

/// A3 result: convergence diagnostics for three constructed systems.
#[derive(Debug, Clone)]
pub struct MarkovAblation {
    /// TV decay of a primitive two-state chain (should vanish).
    pub primitive_tv: Vec<f64>,
    /// TV decay of the periodic two-state chain (stays at its plateau).
    pub periodic_tv: Vec<f64>,
    /// Whether the contractive IFS's particle iteration converged.
    pub ifs_converged: bool,
    /// Per-iteration Wasserstein distances of the IFS iteration.
    pub ifs_distances: Vec<f64>,
    /// The ergodicity verdict of the contractive IFS.
    pub ifs_verdict: ergodic::ErgodicityVerdict,
}

impl ToJson for MarkovAblation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("primitive_tv", self.primitive_tv.to_json()),
            ("periodic_tv", self.periodic_tv.to_json()),
            ("ifs_converged", self.ifs_converged.to_json()),
            ("ifs_distances", self.ifs_distances.to_json()),
            ("ifs_verdict", self.ifs_verdict.to_json()),
        ])
    }
}

/// A3: invariant-measure attractivity for primitive vs periodic chains and
/// a contractive IFS. `seed` overrides the study's RNG seeds (`None` =
/// the defaults). The chains and the IFS are built from constants, but
/// construction failures surface as named errors instead of panics (the
/// CLI panic contract).
pub fn ablate_markov(scale: Scale, seed: Option<u64>) -> Result<MarkovAblation, String> {
    let (particles, iters) = match scale {
        Scale::Paper => (4_000, 150),
        Scale::Quick => (500, 60),
    };

    let chain = |rows: &[&[f64]], label: &str| -> Result<FiniteChain, String> {
        let matrix = eqimpact_linalg::Matrix::from_rows(rows)
            .map_err(|e| format!("ablate-markov: {label} chain rows: {e}"))?;
        FiniteChain::new(matrix).map_err(|e| format!("ablate-markov: {label} chain: {e}"))
    };
    let primitive = chain(&[&[0.9, 0.1], &[0.4, 0.6]], "primitive")?;
    let periodic = chain(&[&[0.0, 1.0], &[1.0, 0.0]], "periodic")?;
    let nu = eqimpact_linalg::Vector::from_slice(&[1.0, 0.0]);
    let primitive_tv = primitive
        .tv_decay(&nu, 30)
        .map_err(|e| format!("ablate-markov: primitive TV decay: {e}"))?;
    let periodic_tv = periodic
        .tv_decay(&nu, 30)
        .map_err(|e| format!("ablate-markov: periodic TV decay: {e}"))?;

    let ifs: MarkovSystem = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .map_err(|e| format!("ablate-markov: IFS build: {e}"))?
        .as_markov_system()
        .clone();
    let mut rng = SimRng::new(seed.unwrap_or(1987));
    let estimate = estimate_invariant_measure(
        &ifs,
        &ParticleMeasure::dirac(&[0.99]),
        particles,
        iters,
        0.02,
        &mut rng,
    );
    let mut verdict_rng = SimRng::new(seed.map(|s| s.wrapping_add(1)).unwrap_or(2004));
    let verdict = ergodic::analyze(
        &ifs,
        MetricKind::Euclidean,
        500,
        &mut verdict_rng,
        box_sampler(vec![0.0], vec![1.0]),
    );

    Ok(MarkovAblation {
        primitive_tv,
        periodic_tv,
        ifs_converged: estimate.converged,
        ifs_distances: estimate.iterate_distances,
        ifs_verdict: verdict.verdict,
    })
}

// ---------------------------------------------------------------------------
// A4 — feedback-delay sensitivity of the credit loop
// ---------------------------------------------------------------------------

/// A4 result: how the paper's Fig. 1 delay affects the credit loop.
#[derive(Debug, Clone)]
pub struct DelayAblation {
    /// The delays swept.
    pub delays: Vec<usize>,
    /// Final-year inter-race ADR spread per delay.
    pub race_spread: Vec<f64>,
    /// Final-year population mean ADR per delay.
    pub mean_adr: Vec<f64>,
}

impl ToJson for DelayAblation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("delays", self.delays.to_json()),
            ("race_spread", self.race_spread.to_json()),
            ("mean_adr", self.mean_adr.to_json()),
        ])
    }
}

/// A4: sweeps the feedback delay of the credit loop. The paper fixes one
/// step of delay; the sweep shows the equal-impact conclusion is not an
/// artifact of that choice (small delays only slow the scorecard's
/// reaction). `seed` overrides the protocol's base seed (`None` = the
/// default).
pub fn ablate_delay(scale: Scale, seed: Option<u64>) -> Result<DelayAblation, String> {
    let delays = vec![0usize, 1, 2, 4];
    let mut race_spread = Vec::with_capacity(delays.len());
    let mut mean_adr = Vec::with_capacity(delays.len());
    for &delay in &delays {
        let base = credit_config(scale, LenderKind::Scorecard);
        let config = CreditConfig {
            delay,
            trials: 1,
            seed: seed.unwrap_or(base.seed),
            ..base
        };
        let outcome = &run_trials_protocol(&config)[0];
        let finals: Vec<f64> = Race::ALL
            .iter()
            .map(|&r| {
                outcome.race_adr_series(r).last().copied().ok_or_else(|| {
                    format!("ablate-delay: empty ADR series at delay {delay} (zero steps)")
                })
            })
            .collect::<Result<_, String>>()?;
        let hi = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = finals.iter().cloned().fold(f64::INFINITY, f64::min);
        race_spread.push(hi - lo);
        let last = outcome.record.steps() - 1;
        let pop_mean: f64 =
            outcome.record.filtered(last).iter().sum::<f64>() / outcome.record.user_count() as f64;
        mean_adr.push(pop_mean);
    }
    Ok(DelayAblation {
        delays,
        race_spread,
        mean_adr,
    })
}

// ---------------------------------------------------------------------------
// A5 — feedback-filter choice in the ensemble loop
// ---------------------------------------------------------------------------

/// A5 result: reference tracking under different feedback filters.
#[derive(Debug, Clone)]
pub struct FilterAblation {
    /// Filter labels, aligned with the vectors below.
    pub filters: Vec<String>,
    /// Absolute tail tracking error |mean ȳ − r| per filter.
    pub tracking_error: Vec<f64>,
    /// Largest late signal movement per filter (responsiveness proxy; ~0
    /// means the loop has frozen).
    pub late_signal_swing: Vec<f64>,
}

impl ToJson for FilterAblation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("filters", self.filters.to_json()),
            ("tracking_error", self.tracking_error.to_json()),
            ("late_signal_swing", self.late_signal_swing.to_json()),
        ])
    }
}

/// A5: compares instantaneous, EWMA, sliding-window and accumulating
/// (full-history) feedback filters under the same stable P-controlled
/// stochastic ensemble — Fig. 1's filter block as a design choice. Fading
/// memory preserves responsiveness; the accumulating filter's effective
/// gain decays like `1/k` and freezes the broadcast signal. `seed`
/// overrides the study's RNG seed (`None` = the default).
pub fn ablate_filter(scale: Scale, seed: Option<u64>) -> FilterAblation {
    use eqimpact_control::filter::{AccumulatingFilter, EwmaFilter, Filter, SlidingWindowFilter};
    let (n, steps) = match scale {
        Scale::Paper => (150, 6_000),
        Scale::Quick => (60, 2_000),
    };
    let reference = 0.5;
    let run = |filter: Option<&mut dyn Filter>| -> (f64, f64) {
        let agents = logistic_ensemble(n, 0.0, 1.0, 0.2);
        let mut lp = eqimpact_control::ensemble::EnsembleLoop::new(
            agents,
            PController::new(2.0, 0.5),
            reference,
        );
        let mut rng = SimRng::new(seed.unwrap_or(515));
        let init = vec![false; n];
        let out = match filter {
            None => lp.run(0.9, &init, steps, 0, &mut rng),
            Some(f) => lp.run_with_filter(0.9, &init, steps, 0, f, &mut rng),
        };
        let tail = &out.aggregates[steps - steps / 4..];
        let tracking = (tail.iter().sum::<f64>() / tail.len() as f64 - reference).abs();
        let late = out.signals[steps - steps / 10..]
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        (tracking, late)
    };

    let mut filters = Vec::new();
    let mut tracking_error = Vec::new();
    let mut late_signal_swing = Vec::new();

    let (t, l) = run(None);
    filters.push("instantaneous".to_string());
    tracking_error.push(t);
    late_signal_swing.push(l);

    let mut ewma = EwmaFilter::new(0.3);
    let (t, l) = run(Some(&mut ewma));
    filters.push("ewma(0.3)".to_string());
    tracking_error.push(t);
    late_signal_swing.push(l);

    let mut window = SlidingWindowFilter::new(25);
    let (t, l) = run(Some(&mut window));
    filters.push("window(25)".to_string());
    tracking_error.push(t);
    late_signal_swing.push(l);

    let mut acc = AccumulatingFilter::new();
    let (t, l) = run(Some(&mut acc));
    filters.push("accumulating".to_string());
    tracking_error.push(t);
    late_signal_swing.push(l);

    FilterAblation {
        filters,
        tracking_error,
        late_signal_swing,
    }
}

// ---------------------------------------------------------------------------
// P-SH — intra-trial sharding at production scale
// ---------------------------------------------------------------------------

/// P-SH result: wall-clock of one production-scale credit trial,
/// sequential vs sharded.
#[derive(Debug, Clone)]
pub struct PerfShardResult {
    /// Users simulated (the 100k production scale).
    pub users: usize,
    /// Steps simulated.
    pub steps: usize,
    /// Capacity of the process thread budget (defaults to the OS core
    /// count; capped by `--threads` / `EQIMPACT_THREADS`).
    pub cores: usize,
    /// Shard count of the sharded run.
    pub shards: usize,
    /// Median wall-clock of the sequential (1-shard) run, ms.
    pub sequential_ms: f64,
    /// Median wall-clock of the sharded run, ms.
    pub sharded_ms: f64,
    /// `sequential_ms / sharded_ms`.
    pub speedup: f64,
}

impl ToJson for PerfShardResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("users", self.users.to_json()),
            ("steps", self.steps.to_json()),
            ("cores", self.cores.to_json()),
            ("shards", self.shards.to_json()),
            ("sequential_ms", self.sequential_ms.to_json()),
            ("sharded_ms", self.sharded_ms.to_json()),
            ("speedup", self.speedup.to_json()),
        ])
    }
}

/// P-SH: times the 100k-user x 50-step credit loop (income-multiple
/// lender — cheap retrain, so the parallel user sweep dominates, as in a
/// production serving loop; thin records) sequentially and with `shards`
/// shards (`<= 1` = auto, one per budget lane). The records are bit-identical; only
/// the wall-clock changes. `Scale::Quick` trims to 20k users.
pub fn perf_shard(scale: Scale, shards: usize, seed: Option<u64>) -> PerfShardResult {
    let users = match scale {
        Scale::Paper => 100_000,
        Scale::Quick => 20_000,
    };
    let steps = 50;
    // A 1-shard "sharded leg" would time the sequential runner against
    // itself, so anything <= 1 means auto (the thread budget's lanes).
    let shards = if shards <= 1 {
        eqimpact_core::shard::auto_shards()
    } else {
        shards
    };
    let config = CreditConfig {
        users,
        steps,
        trials: 1,
        seed: seed.unwrap_or(7),
        lender: LenderKind::IncomeMultiple,
        delay: 1,
        shards: 1,
        policy: eqimpact_core::recorder::RecordPolicy::Thin,
    };
    let time = |config: &CreditConfig| -> f64 {
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let (outcome, ms) = eqimpact_telemetry::metrics::BENCH_SAMPLE
                    .time_ms(|| eqimpact_credit::sim::run_trial(config, 0));
                assert_eq!(outcome.record.steps(), steps);
                ms
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let sequential_ms = time(&config);
    let sharded_ms = time(&CreditConfig { shards, ..config });
    PerfShardResult {
        users,
        steps,
        cores: eqimpact_core::pool::ThreadBudget::global().capacity(),
        shards,
        sequential_ms,
        sharded_ms,
        speedup: sequential_ms / sharded_ms,
    }
}

// ---------------------------------------------------------------------------
// P-TR — trace store: replay vs re-simulate, bytes vs JSON
// ---------------------------------------------------------------------------

/// P-TR result: wall-clock of replay vs re-simulation of one credit
/// trial, and the trace's size against the equivalent JSON dump.
#[derive(Debug, Clone)]
pub struct PerfTraceResult {
    /// Users simulated.
    pub users: usize,
    /// Steps simulated.
    pub steps: usize,
    /// Median wall-clock of re-simulating the trial from scratch, ms.
    pub resimulate_ms: f64,
    /// Median wall-clock of verified replay from the trace, ms.
    pub replay_ms: f64,
    /// `resimulate_ms / replay_ms`.
    pub replay_speedup: f64,
    /// On-disk size of the trace, bytes.
    pub trace_bytes: u64,
    /// Size of the equivalent JSON dump (same header, groups and the
    /// four per-step channels, pretty-rendered as the workspace's
    /// artifact pipeline writes JSON), bytes.
    pub json_bytes: u64,
    /// The same dump compact-rendered (no indentation), bytes.
    pub compact_json_bytes: u64,
    /// `json_bytes / trace_bytes`.
    pub json_ratio: f64,
    /// `compact_json_bytes / trace_bytes`.
    pub compact_json_ratio: f64,
}

impl ToJson for PerfTraceResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("users", self.users.to_json()),
            ("steps", self.steps.to_json()),
            ("resimulate_ms", self.resimulate_ms.to_json()),
            ("replay_ms", self.replay_ms.to_json()),
            ("replay_speedup", self.replay_speedup.to_json()),
            ("trace_bytes", (self.trace_bytes as usize).to_json()),
            ("json_bytes", (self.json_bytes as usize).to_json()),
            (
                "compact_json_bytes",
                (self.compact_json_bytes as usize).to_json(),
            ),
            ("json_ratio", self.json_ratio.to_json()),
            ("compact_json_ratio", self.compact_json_ratio.to_json()),
        ])
    }
}

/// Renders the exact information content of a trace as the JSON dump the
/// artifact pipeline would otherwise persist: header fields, group
/// codes, and the four per-step channels.
fn trace_json_dump(bytes: &[u8]) -> Result<Json, String> {
    use eqimpact_trace::{StepFrame, TraceReader};
    let mut input: &[u8] = bytes;
    let mut reader =
        TraceReader::new(&mut input).map_err(|e| format!("perf-trace: trace reads back: {e}"))?;
    let header = reader.header().clone();
    let groups: Vec<Json> = reader
        .groups()
        .map(|g| g.codes.iter().map(|&c| (c as usize).to_json()).collect())
        .unwrap_or_default();
    let mut steps = Vec::new();
    let mut frame = StepFrame::default();
    while reader
        .next_step(&mut frame)
        .map_err(|e| format!("perf-trace: trace step read: {e}"))?
    {
        steps.push(Json::obj([
            ("visible", frame.visible.to_row_major().to_json()),
            ("signals", frame.signals.to_json()),
            ("actions", frame.actions.to_json()),
            ("filtered", frame.filtered.to_json()),
        ]));
    }
    Ok(Json::obj([
        ("scenario", header.scenario.as_str().to_json()),
        ("variant", header.variant.as_str().to_json()),
        ("seed", header.seed.to_string().as_str().to_json()),
        ("groups", Json::Arr(groups)),
        ("steps", Json::Arr(steps)),
    ]))
}

/// Median of three timed samples. The sampled closure reports its own
/// verification failures (replay mismatches, read errors) through the
/// `Result` instead of panicking.
fn median_ms(mut f: impl FnMut() -> Result<(), String>) -> Result<f64, String> {
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let (result, ms) = eqimpact_telemetry::metrics::BENCH_SAMPLE.time_ms(&mut f);
        result?;
        samples.push(ms);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Ok(samples[samples.len() / 2])
}

/// P-TR: records one paper-shape credit trial (N = 1000; 400 under
/// `--quick`) to an in-memory trace, then measures (a) verified replay
/// against re-simulating the trial from scratch and (b) the trace's
/// bytes against the equivalent JSON dump. `seed` overrides the
/// protocol's base seed. Trace I/O and verification failures surface
/// as named errors.
pub fn perf_trace(scale: Scale, seed: Option<u64>) -> Result<PerfTraceResult, String> {
    use eqimpact_core::scenario::TraceMeta;
    use eqimpact_credit::sim::run_trial_sunk;
    use eqimpact_credit::CreditTracer;
    use eqimpact_trace::TraceReplayer;
    use eqimpact_trace::{TraceHeader, TraceReader, TraceStepSink};

    let base = credit_config(scale, LenderKind::Scorecard);
    let config = CreditConfig {
        trials: 1,
        seed: seed.unwrap_or(base.seed),
        ..base
    };
    let header = TraceHeader::from_meta(&TraceMeta {
        scenario: "credit".to_string(),
        variant: eqimpact_credit::scenario::TRACE_VARIANT.to_string(),
        trial: 0,
        scale,
        seed: config.seed,
        shards: config.shards,
        delay: config.delay,
        policy: config.policy,
    });
    let mut sink = TraceStepSink::new(Vec::new(), &header)
        .map_err(|e| format!("perf-trace: in-memory trace sink: {e}"))?;
    let outcome = run_trial_sunk(&config, 0, &mut sink);
    let bytes = sink
        .finish()
        .map_err(|e| format!("perf-trace: trace finish: {e}"))?;

    let resimulate_ms = median_ms(|| {
        let again = eqimpact_credit::sim::run_trial(&config, 0);
        if again.record.steps() != config.steps {
            return Err(format!(
                "perf-trace: re-simulation produced {} steps, expected {}",
                again.record.steps(),
                config.steps
            ));
        }
        Ok(())
    })?;
    let replay_ms = median_ms(|| {
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read)
            .map_err(|e| format!("perf-trace: trace opens: {e}"))?;
        let summary = CreditTracer
            .replay(reader)
            .map_err(|e| format!("perf-trace: verified replay: {e}"))?;
        if summary.record != outcome.record {
            return Err("perf-trace: replayed record differs from the live record".to_string());
        }
        Ok(())
    })?;

    let dump = trace_json_dump(&bytes)?;
    let json_bytes = dump.render_pretty().len() as u64;
    let compact_json_bytes = dump.render().len() as u64;
    let trace_bytes = bytes.len() as u64;
    Ok(PerfTraceResult {
        users: config.users,
        steps: config.steps,
        resimulate_ms,
        replay_ms,
        replay_speedup: resimulate_ms / replay_ms,
        trace_bytes,
        json_bytes,
        compact_json_bytes,
        json_ratio: json_bytes as f64 / trace_bytes as f64,
        compact_json_ratio: compact_json_bytes as f64 / trace_bytes as f64,
    })
}

// ---------------------------------------------------------------------------
// P-SW — counterfactual lab: checkpointed replay vs re-simulate, sweep
// ---------------------------------------------------------------------------

/// P-SW result: wall-clock of checkpointed replay vs re-simulation of
/// one credit trial, plus a default-grid off-policy sweep over the same
/// trace through the lab engine.
#[derive(Debug, Clone)]
pub struct PerfSweepResult {
    /// Users simulated.
    pub users: usize,
    /// Steps simulated.
    pub steps: usize,
    /// Median wall-clock of re-simulating the trial from scratch, ms.
    pub resimulate_ms: f64,
    /// Median wall-clock of verified **checkpointed** replay (model
    /// states restored at each retrain instead of refit), ms.
    pub checkpointed_replay_ms: f64,
    /// `resimulate_ms / checkpointed_replay_ms`.
    pub replay_speedup: f64,
    /// Model checkpoints restored per replay (> 0, or the fast-path
    /// never engaged).
    pub checkpoints_restored: usize,
    /// Candidates evaluated by the sweep leg.
    pub candidates: usize,
    /// Wall-clock of the default-grid sweep over the recorded trace, ms.
    pub sweep_ms: f64,
}

impl ToJson for PerfSweepResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("users", self.users.to_json()),
            ("steps", self.steps.to_json()),
            ("resimulate_ms", self.resimulate_ms.to_json()),
            (
                "checkpointed_replay_ms",
                self.checkpointed_replay_ms.to_json(),
            ),
            ("replay_speedup", self.replay_speedup.to_json()),
            ("checkpoints_restored", self.checkpoints_restored.to_json()),
            ("candidates", self.candidates.to_json()),
            ("sweep_ms", self.sweep_ms.to_json()),
        ])
    }
}

/// P-SW: records one paper-shape credit trial (N = 1000; 400 under
/// `--quick`) to an in-memory **checkpointed** trace, then measures
/// (a) verified checkpointed replay against re-simulating the trial from
/// scratch — the counterfactual lab's fast-path — and (b) a default-grid
/// off-policy sweep over the recorded trace. `seed` overrides the
/// protocol's base seed. Trace I/O, replay-verification and sweep
/// failures surface as named errors.
pub fn perf_sweep(scale: Scale, seed: Option<u64>) -> Result<PerfSweepResult, String> {
    use eqimpact_core::pool::ThreadBudget;
    use eqimpact_core::scenario::TraceMeta;
    use eqimpact_credit::sim::run_trial_sunk;
    use eqimpact_credit::{AdrFilter, CreditSweep, ScorecardLender};
    use eqimpact_lab::{run_sweep, MemTrace, SweepConfig, SweepTarget, TraceSource};
    use eqimpact_trace::{ReplayRunner, TraceHeader, TraceReader, TraceStepSink};

    let base = credit_config(scale, LenderKind::Scorecard);
    let config = CreditConfig {
        trials: 1,
        seed: seed.unwrap_or(base.seed),
        ..base
    };
    let header = TraceHeader::from_meta(&TraceMeta {
        scenario: "credit".to_string(),
        variant: eqimpact_credit::scenario::TRACE_VARIANT.to_string(),
        trial: 0,
        scale,
        seed: config.seed,
        shards: config.shards,
        delay: config.delay,
        policy: config.policy,
    })
    .with_checkpoints();
    let mut sink = TraceStepSink::new(Vec::new(), &header)
        .map_err(|e| format!("perf-sweep: in-memory trace sink: {e}"))?;
    let outcome = run_trial_sunk(&config, 0, &mut sink);
    let bytes = sink
        .finish()
        .map_err(|e| format!("perf-sweep: trace finish: {e}"))?;

    let resimulate_ms = median_ms(|| {
        let again = eqimpact_credit::sim::run_trial(&config, 0);
        if again.record.steps() != config.steps {
            return Err(format!(
                "perf-sweep: re-simulation produced {} steps, expected {}",
                again.record.steps(),
                config.steps
            ));
        }
        Ok(())
    })?;
    let mut checkpoints_restored = 0;
    let checkpointed_replay_ms = median_ms(|| {
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read)
            .map_err(|e| format!("perf-sweep: trace opens: {e}"))?;
        let mut runner =
            ReplayRunner::new(reader, ScorecardLender::paper_default(), AdrFilter::new());
        let record = runner
            .run()
            .map_err(|e| format!("perf-sweep: verified checkpointed replay: {e}"))?;
        if record != outcome.record {
            return Err("perf-sweep: replayed record differs from the live record".to_string());
        }
        checkpoints_restored = runner.checkpoints_restored();
        if checkpoints_restored == 0 {
            return Err("perf-sweep: checkpoint fast-path never engaged".to_string());
        }
        Ok(())
    })?;

    let trace = MemTrace::new("perf-sweep.eqtrace", bytes);
    let sources: [&dyn TraceSource; 1] = [&trace];
    let grid = CreditSweep.default_grid();
    let candidates = grid.len();
    let sweep_config = SweepConfig {
        seed: config.seed,
        ..SweepConfig::default()
    };
    let (sweep_result, sweep_ms) = eqimpact_telemetry::metrics::BENCH_SAMPLE.time_ms(|| {
        run_sweep(
            &CreditSweep,
            &sources,
            &grid,
            &sweep_config,
            ThreadBudget::global(),
        )
    });
    let report = sweep_result.map_err(|e| format!("perf-sweep: sweep run: {e}"))?;
    if report.ranked.len() != candidates {
        return Err(format!(
            "perf-sweep: sweep ranked {} candidates, expected {}",
            report.ranked.len(),
            candidates
        ));
    }

    Ok(PerfSweepResult {
        users: config.users,
        steps: config.steps,
        resimulate_ms,
        checkpointed_replay_ms,
        replay_speedup: resimulate_ms / checkpointed_replay_ms,
        checkpoints_restored,
        candidates,
        sweep_ms,
    })
}

// ---------------------------------------------------------------------------
// P9 — certification plane: extraction vs analysis wall-time
// ---------------------------------------------------------------------------

/// P9 result: wall-clock of certifying one paper-scale credit trace,
/// split into its streaming-extraction and theory-analysis halves.
#[derive(Debug, Clone)]
pub struct PerfCertifyResult {
    /// Users in the recorded trace.
    pub users: usize,
    /// Steps in the recorded trace.
    pub steps: usize,
    /// Recorded trace size, bytes.
    pub trace_bytes: usize,
    /// Occupied discrete states in the extracted chain.
    pub states: usize,
    /// Pooled transition samples in the extracted chain.
    pub transitions: u64,
    /// Median wall-clock of streaming extraction (one trace pass), ms.
    pub extract_ms: f64,
    /// Median wall-clock of the analysis passes over the extraction, ms.
    pub analyze_ms: f64,
    /// Wall-clock of the full `run_certification` over the trace, ms.
    pub certify_ms: f64,
    /// Checks rendered in the certificate (the five theory passes).
    pub checks: usize,
}

impl ToJson for PerfCertifyResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("users", self.users.to_json()),
            ("steps", self.steps.to_json()),
            ("trace_bytes", self.trace_bytes.to_json()),
            ("states", self.states.to_json()),
            ("transitions", (self.transitions as usize).to_json()),
            ("extract_ms", self.extract_ms.to_json()),
            ("analyze_ms", self.analyze_ms.to_json()),
            ("certify_ms", self.certify_ms.to_json()),
            ("checks", self.checks.to_json()),
        ])
    }
}

/// P9: records one paper-shape credit trial (N = 1000; 400 under
/// `--quick`) to an in-memory **checkpointed** trace, then measures the
/// certification plane over it: streaming extraction alone, the theory
/// analysis alone, and the full engine run. `seed` overrides the
/// protocol's base seed. Trace I/O and certification failures surface
/// as named errors.
pub fn perf_certify(scale: Scale, seed: Option<u64>) -> Result<PerfCertifyResult, String> {
    use eqimpact_certify::{
        certificate_of, extract, run_certification, CertifyConfig, CertifyTarget,
    };
    use eqimpact_core::pool::ThreadBudget;
    use eqimpact_core::scenario::TraceMeta;
    use eqimpact_credit::sim::run_trial_sunk;
    use eqimpact_credit::CreditCertify;
    use eqimpact_lab::{MemTrace, TraceSource};
    use eqimpact_trace::{TraceHeader, TraceStepSink};

    let base = credit_config(scale, LenderKind::Scorecard);
    let config = CreditConfig {
        trials: 1,
        seed: seed.unwrap_or(base.seed),
        ..base
    };
    let header = TraceHeader::from_meta(&TraceMeta {
        scenario: "credit".to_string(),
        variant: eqimpact_credit::scenario::TRACE_VARIANT.to_string(),
        trial: 0,
        scale,
        seed: config.seed,
        shards: config.shards,
        delay: config.delay,
        policy: config.policy,
    })
    .with_checkpoints();
    let mut sink = TraceStepSink::new(Vec::new(), &header)
        .map_err(|e| format!("perf-certify: in-memory trace sink: {e}"))?;
    run_trial_sunk(&config, 0, &mut sink);
    let bytes = sink
        .finish()
        .map_err(|e| format!("perf-certify: trace finish: {e}"))?;
    let trace_bytes = bytes.len();

    let spec = CreditCertify.spec();
    let extract_ms = median_ms(|| {
        let mut input: &[u8] = &bytes;
        let ex = extract(&spec, &mut input as &mut dyn std::io::Read)
            .map_err(|e| format!("perf-certify: extraction: {e}"))?;
        if ex.steps != config.steps {
            return Err(format!(
                "perf-certify: extraction saw {} steps, expected {}",
                ex.steps, config.steps
            ));
        }
        Ok(())
    })?;
    let mut input: &[u8] = &bytes;
    let ex = extract(&spec, &mut input as &mut dyn std::io::Read)
        .map_err(|e| format!("perf-certify: extraction: {e}"))?;

    let certify_config = CertifyConfig {
        seed: config.seed,
        ..CertifyConfig::default()
    };
    let rng = SimRng::new(certify_config.seed).split(0);
    let mut checks = 0;
    let analyze_ms = median_ms(|| {
        let cert = certificate_of("perf-certify.eqtrace", &ex, &certify_config, &rng);
        checks = cert.checks.len();
        if checks < 5 {
            return Err(format!(
                "perf-certify: certificate rendered {checks} checks, expected the 5 theory passes"
            ));
        }
        Ok(())
    })?;

    let trace = MemTrace::new("credit-perf.eqtrace", bytes);
    let sources: [&dyn TraceSource; 1] = [&trace];
    let (certify_result, certify_ms) = eqimpact_telemetry::metrics::BENCH_SAMPLE.time_ms(|| {
        run_certification(
            &CreditCertify,
            &sources,
            &certify_config,
            ThreadBudget::global(),
        )
    });
    let report = certify_result.map_err(|e| format!("perf-certify: engine run: {e}"))?;
    if report.certificates.len() != 1 {
        return Err(format!(
            "perf-certify: engine produced {} certificates, expected 1",
            report.certificates.len()
        ));
    }

    Ok(PerfCertifyResult {
        users: config.users,
        steps: config.steps,
        trace_bytes,
        states: ex.occupied_states(),
        transitions: ex.transition_count(),
        extract_ms,
        analyze_ms,
        certify_ms,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_has_paper_shape() {
        let t1 = table1_scorecard(Scale::Quick).unwrap();
        // The income factor is the strongly identified one (the paper's
        // +5.77); the history factor's final-year magnitude is weakly
        // identified below paper scale (ADR contrast has collapsed by
        // 2020), so its sign check lives in eqimpact-credit's 1000-user
        // `scorecard_emerges_with_paper_shape` test.
        assert!(t1.income_points > 0.0, "income = {}", t1.income_points);
        assert!(t1.history_points.is_finite());
        assert!(t1.history_points < t1.income_points);
        assert_eq!(t1.paper_reference, (-8.17, 5.77));
    }

    #[test]
    fn fig2_rows_complete() {
        let rows = fig2_rows();
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn credit_figures_pipeline_quick() {
        let outcomes = credit_outcomes(Scale::Quick);
        let f3 = fig3_series(&outcomes);
        assert_eq!(f3.len(), 3);
        let f4 = fig4_series(&outcomes);
        assert_eq!(f4.len(), 2 * 400);
        let f5 = fig5_histogram(&outcomes);
        assert_eq!(f5.x_len(), 19);
    }

    #[test]
    fn policy_ablation_shows_uniform_access_gap() {
        let a1 = ablate_policy(Scale::Quick, None).unwrap();
        // The income-scaled policy approves everyone: zero access gap.
        assert!(
            a1.approval_gaps.1 < 1e-12,
            "income gap = {}",
            a1.approval_gaps.1
        );
        // The uniform policy's exclusions hit races unevenly.
        assert!(
            a1.approval_gaps.0 > 0.05,
            "uniform access gap = {}",
            a1.approval_gaps.0
        );
        // And Black access is the lowest of the three under uniform.
        assert!(a1.uniform_approval[0] <= a1.uniform_approval[1]);
        assert!(a1.uniform_approval[0] <= a1.uniform_approval[2]);
    }

    #[test]
    fn integral_ablation_contrast() {
        let a2 = ablate_integral(Scale::Quick, None);
        assert!(a2.integral_gap.max_spread > 0.9);
        assert!(a2.proportional_gap.max_spread < 0.1);
    }

    #[test]
    fn delay_ablation_robustness() {
        let a4 = ablate_delay(Scale::Quick, None).unwrap();
        assert_eq!(a4.delays.len(), 4);
        // The equal-impact conclusion survives every delay: small spread.
        for (d, spread) in a4.delays.iter().zip(&a4.race_spread) {
            assert!(*spread < 0.1, "delay {d}: race spread {spread}");
        }
    }

    #[test]
    fn filter_ablation_contrast() {
        let a5 = ablate_filter(Scale::Quick, None);
        assert_eq!(a5.filters.len(), 4);
        // All fading-memory filters track the reference.
        for i in 0..3 {
            assert!(
                a5.tracking_error[i] < 0.08,
                "{}: tracking error {}",
                a5.filters[i],
                a5.tracking_error[i]
            );
        }
        // The accumulating filter freezes the signal (responsiveness -> 0).
        assert!(
            a5.late_signal_swing[3] < a5.late_signal_swing[0] / 5.0,
            "accumulating swing {} vs instantaneous {}",
            a5.late_signal_swing[3],
            a5.late_signal_swing[0]
        );
    }

    #[test]
    fn markov_ablation_contrast() {
        let a3 = ablate_markov(Scale::Quick, None).unwrap();
        assert!(a3.primitive_tv.last().unwrap() < &1e-6);
        assert!((a3.periodic_tv.last().unwrap() - 0.5).abs() < 1e-9);
        assert!(a3.ifs_converged);
        assert_eq!(a3.ifs_verdict, ergodic::ErgodicityVerdict::UniquelyErgodic);
    }
}
