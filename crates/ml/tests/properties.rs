//! Property-based tests for the ML crate.

use eqimpact_ml::counterfactual::{minimal_counterfactual, CounterfactualError, FeatureBounds};
use eqimpact_ml::logistic::{sigmoid, LogisticRegression};
use eqimpact_ml::scorecard::{CreditDecision, Scorecard, ScorecardRow};
use eqimpact_ml::Dataset;
use eqimpact_stats::SimRng;
use proptest::prelude::*;

fn arb_scorecard() -> impl Strategy<Value = Scorecard> {
    (
        -2.0f64..2.0,
        prop::collection::vec(-10.0f64..10.0, 1..5),
        -1.0f64..1.0,
    )
        .prop_map(|(base, weights, cutoff)| {
            Scorecard::from_rows(
                base,
                weights
                    .into_iter()
                    .enumerate()
                    .map(|(i, w)| ScorecardRow {
                        factor: format!("f{i}"),
                        points_per_unit: w,
                    })
                    .collect(),
                cutoff,
            )
        })
}

proptest! {
    #[test]
    fn sigmoid_monotone_and_bounded(a in -700.0f64..700.0, b in -700.0f64..700.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid(lo) <= sigmoid(hi) + 1e-15);
        prop_assert!((0.0..=1.0).contains(&sigmoid(a)));
    }

    #[test]
    fn scorecard_score_is_linear(card in arb_scorecard(), scale in 0.1f64..3.0) {
        let n = card.factor_count();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.3).collect();
        let x_scaled: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let zero = vec![0.0; n];
        let s0 = card.score(&zero);
        // score(ax) - s0 == a (score(x) - s0) for linear scorecards.
        let lhs = card.score(&x_scaled) - s0;
        let rhs = scale * (card.score(&x) - s0);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn decision_consistent_with_score(card in arb_scorecard()) {
        let n = card.factor_count();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 - 1.0) * 0.4).collect();
        let decided = card.decide(&x);
        let expected = if card.score(&x) >= card.cutoff {
            CreditDecision::Approved
        } else {
            CreditDecision::Denied
        };
        prop_assert_eq!(decided, expected);
    }

    #[test]
    fn counterfactual_always_reaches_cutoff_or_reports_infeasible(
        card in arb_scorecard(),
        raw in prop::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let n = card.factor_count();
        prop_assume!(raw.len() >= n);
        let x: Vec<f64> = raw[..n].to_vec();
        let bounds: Vec<FeatureBounds> = (0..n).map(|_| FeatureBounds::free(0.0, 1.0)).collect();
        match minimal_counterfactual(&card, &x, &bounds) {
            Ok(cf) => {
                prop_assert!(cf.counterfactual_score >= card.cutoff - 1e-9);
                prop_assert!(cf.effort >= 0.0);
                // All counterfactual values stay within bounds.
                for c in &cf.changes {
                    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c.to));
                }
            }
            Err(CounterfactualError::AlreadyApproved) => {
                prop_assert_eq!(card.decide(&x), CreditDecision::Approved);
            }
            Err(CounterfactualError::Infeasible) => {
                // The best admissible score must indeed fall short.
                let best: f64 = card.base_points
                    + card
                        .rows
                        .iter()
                        .map(|r| {
                            if r.points_per_unit > 0.0 {
                                r.points_per_unit
                            } else {
                                0.0
                            }
                        })
                        .sum::<f64>();
                prop_assert!(best < card.cutoff + 1e-9, "best {best} vs cutoff {}", card.cutoff);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn logistic_predictions_are_probabilities(seed in 0u64..500) {
        let mut rng = SimRng::new(seed);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.uniform_in(-3.0, 3.0)])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if rng.bernoulli(sigmoid(r[0])) { 1.0 } else { 0.0 })
            .collect();
        prop_assume!(labels.contains(&0.0) && labels.contains(&1.0));
        let data = Dataset::new(&rows, &labels).unwrap();
        let model = LogisticRegression::default().fit(&data).unwrap();
        for r in rows.iter().take(20) {
            let p = model.predict_proba(r);
            prop_assert!((0.0..=1.0).contains(&p));
        }
        prop_assert!(model.log_loss(&data).is_finite());
    }

    #[test]
    fn dataset_standardization_is_idempotent_in_shape(
        raw in prop::collection::vec((0.0f64..10.0, prop::bool::ANY), 2..30),
    ) {
        let rows: Vec<Vec<f64>> = raw.iter().map(|(x, _)| vec![*x]).collect();
        let labels: Vec<f64> = raw.iter().map(|(_, y)| if *y { 1.0 } else { 0.0 }).collect();
        let data = Dataset::new(&rows, &labels).unwrap();
        let (z, means, sds) = data.standardized();
        prop_assert_eq!(z.len(), data.len());
        prop_assert_eq!(means.len(), 1);
        prop_assert_eq!(sds.len(), 1);
        prop_assert!(sds[0] > 0.0);
        // Round-trip: un-standardizing recovers the original.
        for i in 0..data.len() {
            let back = z.row(i)[0] * sds[0] + means[0];
            prop_assert!((back - data.row(i)[0]).abs() < 1e-9);
        }
    }
}
