//! Counterfactual explanations for scorecard decisions.
//!
//! Sec. VII of the paper cites counterfactual explanations (Verma et al.
//! 2020, Dutta et al. 2022) as the alternative route to ECOA-compliant
//! adverse-action reasons: "guide an applicant on the easiest improvement
//! that could change the model outcome". For a *linear* scorecard the
//! minimal counterfactual is exact and closed-form per feasibility
//! pattern: move the score deficit along the allowed features, cheapest
//! (per unit of normalized effort) first.

use crate::scorecard::{CreditDecision, Scorecard};

/// Per-feature counterfactual constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureBounds {
    /// Smallest admissible value (e.g. an ADR cannot go below 0).
    pub min: f64,
    /// Largest admissible value.
    pub max: f64,
    /// Whether the applicant can act on this feature at all (protected or
    /// immutable features are frozen).
    pub mutable: bool,
    /// Effort cost per unit of change; the explanation minimizes total
    /// weighted effort.
    pub unit_cost: f64,
}

impl FeatureBounds {
    /// A freely mutable feature on `[min, max]` with unit cost 1.
    pub fn free(min: f64, max: f64) -> Self {
        FeatureBounds {
            min,
            max,
            mutable: true,
            unit_cost: 1.0,
        }
    }

    /// An immutable feature.
    pub fn frozen() -> Self {
        FeatureBounds {
            min: f64::NEG_INFINITY,
            max: f64::INFINITY,
            mutable: false,
            unit_cost: f64::INFINITY,
        }
    }
}

/// One feature change in a counterfactual.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureChange {
    /// Feature index.
    pub feature: usize,
    /// Factor name from the scorecard.
    pub factor: String,
    /// Original value.
    pub from: f64,
    /// Counterfactual value.
    pub to: f64,
}

/// A counterfactual explanation: the minimal-effort feature changes that
/// flip the decision to approval.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterfactual {
    /// The changes, in application order (cheapest effort first).
    pub changes: Vec<FeatureChange>,
    /// Total weighted effort `Σ unit_cost · |Δ|`.
    pub effort: f64,
    /// Score before the changes.
    pub original_score: f64,
    /// Score after the changes (≥ cut-off by construction).
    pub counterfactual_score: f64,
}

/// Errors from counterfactual search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterfactualError {
    /// The decision is already favourable; nothing to explain.
    AlreadyApproved,
    /// No admissible change reaches the cut-off.
    Infeasible,
    /// `bounds.len()` does not match the scorecard's factor count.
    BoundsMismatch,
}

impl std::fmt::Display for CounterfactualError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterfactualError::AlreadyApproved => write!(f, "decision is already approval"),
            CounterfactualError::Infeasible => {
                write!(f, "no admissible feature change reaches the cut-off")
            }
            CounterfactualError::BoundsMismatch => {
                write!(f, "bounds length differs from factor count")
            }
        }
    }
}

impl std::error::Error for CounterfactualError {}

/// Computes the minimal-effort counterfactual for a denied applicant under
/// a linear scorecard.
///
/// Greedy on `|points_per_unit| / unit_cost` is exact for a linear score
/// with box constraints (the continuous knapsack argument): spend effort on
/// the feature buying the most score per effort unit until the deficit is
/// covered or the feature hits its bound.
pub fn minimal_counterfactual(
    card: &Scorecard,
    features: &[f64],
    bounds: &[FeatureBounds],
) -> Result<Counterfactual, CounterfactualError> {
    if bounds.len() != card.factor_count() {
        return Err(CounterfactualError::BoundsMismatch);
    }
    let original_score = card.score(features);
    if card.decide(features) == CreditDecision::Approved {
        return Err(CounterfactualError::AlreadyApproved);
    }
    let mut deficit = card.cutoff - original_score;

    // Candidate moves: (score gained per unit effort, feature index,
    // direction, max score gain available).
    let mut candidates: Vec<(f64, usize, f64, f64)> = Vec::new();
    for (i, (row, b)) in card.rows.iter().zip(bounds).enumerate() {
        if !b.mutable || b.unit_cost <= 0.0 || !b.unit_cost.is_finite() {
            continue;
        }
        let w = row.points_per_unit;
        if w == 0.0 {
            continue;
        }
        // Raising the score means moving up for positive weights, down for
        // negative ones.
        let (direction, headroom) = if w > 0.0 {
            (1.0, (b.max - features[i]).max(0.0))
        } else {
            (-1.0, (features[i] - b.min).max(0.0))
        };
        let max_gain = w.abs() * headroom;
        if max_gain <= 0.0 {
            continue;
        }
        candidates.push((w.abs() / b.unit_cost, i, direction, max_gain));
    }
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite rates"));

    let mut new_features = features.to_vec();
    let mut changes = Vec::new();
    let mut effort = 0.0;
    for (_, i, direction, max_gain) in candidates {
        if deficit <= 0.0 {
            break;
        }
        let w = card.rows[i].points_per_unit.abs();
        let gain = deficit.min(max_gain);
        let delta = direction * gain / w;
        let from = new_features[i];
        new_features[i] += delta;
        effort += bounds[i].unit_cost * delta.abs();
        deficit -= gain;
        changes.push(FeatureChange {
            feature: i,
            factor: card.rows[i].factor.clone(),
            from,
            to: new_features[i],
        });
    }

    if deficit > 1e-12 {
        return Err(CounterfactualError::Infeasible);
    }
    Ok(Counterfactual {
        counterfactual_score: card.score(&new_features),
        changes,
        effort,
        original_score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorecard::Scorecard;

    fn paper_card() -> Scorecard {
        Scorecard::paper_table1()
    }

    fn default_bounds() -> Vec<FeatureBounds> {
        vec![
            FeatureBounds::free(0.0, 1.0), // History (ADR)
            FeatureBounds::free(0.0, 1.0), // Income code
        ]
    }

    #[test]
    fn denied_low_income_user_is_told_to_raise_income_code() {
        // ADR 0.04, income code 0: score -0.3268 < 0.4.
        let card = paper_card();
        let cf = minimal_counterfactual(&card, &[0.04, 0.0], &default_bounds()).unwrap();
        // Income buys 5.77 per unit of effort; history only 8.17 per...
        // history rate is 8.17 > 5.77, but headroom is 0.04 -> gain 0.327;
        // the deficit is 0.727, so history alone cannot cover it. The
        // greedy first spends history (higher rate), then income.
        assert_eq!(cf.changes.len(), 2);
        assert_eq!(cf.changes[0].factor, "History");
        assert_eq!(cf.changes[0].to, 0.0);
        assert_eq!(cf.changes[1].factor, "Income");
        assert!(cf.counterfactual_score >= card.cutoff - 1e-9);
        assert!(cf.effort > 0.0);
        assert!(cf.original_score < card.cutoff);
    }

    #[test]
    fn single_feature_fix_when_sufficient() {
        // ADR 0.5, income 1: score = -4.085 + 5.77 = 1.685... approved.
        // Use ADR 0.7, income 1: score = -0.949 < 0.4; reducing ADR to
        // ~0.658 suffices... but greedy picks History first (8.17 > 5.77
        // with income already at max headroom 0).
        let card = paper_card();
        let cf = minimal_counterfactual(&card, &[0.7, 1.0], &default_bounds()).unwrap();
        assert_eq!(cf.changes.len(), 1);
        assert_eq!(cf.changes[0].factor, "History");
        assert!(cf.changes[0].to < 0.7);
        assert!((card.score(&[cf.changes[0].to, 1.0]) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn already_approved_rejected() {
        let card = paper_card();
        let err = minimal_counterfactual(&card, &[0.0, 1.0], &default_bounds()).unwrap_err();
        assert_eq!(err, CounterfactualError::AlreadyApproved);
    }

    #[test]
    fn frozen_features_respected() {
        // Income frozen: only history can move; from (0.9, 0) the best
        // reachable score is 0 < 0.4 -> infeasible.
        let card = paper_card();
        let bounds = vec![FeatureBounds::free(0.0, 1.0), FeatureBounds::frozen()];
        let err = minimal_counterfactual(&card, &[0.9, 0.0], &bounds).unwrap_err();
        assert_eq!(err, CounterfactualError::Infeasible);
    }

    #[test]
    fn effort_costs_change_the_route() {
        // Make history changes 100x more expensive than income changes:
        // greedy must now prefer income.
        let card = paper_card();
        let bounds = vec![
            FeatureBounds {
                min: 0.0,
                max: 1.0,
                mutable: true,
                unit_cost: 100.0,
            },
            FeatureBounds::free(0.0, 1.0),
        ];
        let cf = minimal_counterfactual(&card, &[0.04, 0.0], &bounds).unwrap();
        assert_eq!(cf.changes[0].factor, "Income");
    }

    #[test]
    fn bounds_mismatch_rejected() {
        let card = paper_card();
        let err = minimal_counterfactual(&card, &[0.1, 0.0], &[FeatureBounds::free(0.0, 1.0)])
            .unwrap_err();
        assert_eq!(err, CounterfactualError::BoundsMismatch);
    }

    #[test]
    fn error_display() {
        assert!(CounterfactualError::Infeasible
            .to_string()
            .contains("cut-off"));
        assert!(CounterfactualError::AlreadyApproved
            .to_string()
            .contains("approval"));
    }
}
