//! The accumulating retraining pipeline: Fig. 1's delay + filter +
//! retraining made explicit.
//!
//! Each round, freshly observed `(features, action)` pairs are appended to
//! the training corpus (optionally windowed) and a new model is fitted.
//! Article 15 of the EU AI Act proposal — quoted in the paper — demands
//! exactly this: systems that "continue to learn after being placed on the
//! market" must address biased outputs feeding back as future inputs.

use crate::dataset::{Dataset, DatasetError};
use crate::logistic::{LogisticModel, LogisticRegression, TrainError};
use std::fmt;

/// How the pipeline keeps its corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Keep everything ever observed (the paper's accumulating filter).
    KeepAll,
    /// Keep only the most recent `rounds` rounds of data.
    Window {
        /// Number of most recent rounds retained.
        rounds: usize,
    },
}

/// Errors from the retraining pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainError {
    /// The observed batch was malformed.
    BadBatch(DatasetError),
    /// Training failed.
    Train(TrainError),
    /// `fit` called before any data was ingested.
    NoData,
}

impl fmt::Display for RetrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrainError::BadBatch(e) => write!(f, "bad batch: {e}"),
            RetrainError::Train(e) => write!(f, "training failed: {e}"),
            RetrainError::NoData => write!(f, "no data ingested yet"),
        }
    }
}

impl std::error::Error for RetrainError {}

/// An accumulating retraining pipeline around a logistic fitter.
#[derive(Debug, Clone)]
pub struct RetrainingPipeline {
    fitter: LogisticRegression,
    policy: RetentionPolicy,
    /// One dataset per ingested round (kept separate so windowing can drop
    /// whole rounds).
    rounds: Vec<Dataset>,
    /// The latest fitted model.
    model: Option<LogisticModel>,
    /// Number of refits performed.
    refit_count: usize,
}

impl RetrainingPipeline {
    /// Creates a pipeline.
    pub fn new(fitter: LogisticRegression, policy: RetentionPolicy) -> Self {
        RetrainingPipeline {
            fitter,
            policy,
            rounds: Vec::new(),
            model: None,
            refit_count: 0,
        }
    }

    /// Number of rounds currently retained.
    pub fn retained_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total observations currently retained.
    pub fn retained_observations(&self) -> usize {
        self.rounds.iter().map(|d| d.len()).sum()
    }

    /// Number of refits performed so far.
    pub fn refit_count(&self) -> usize {
        self.refit_count
    }

    /// The latest model, if any refit has happened.
    pub fn model(&self) -> Option<&LogisticModel> {
        self.model.as_ref()
    }

    /// Ingests one round of observations and applies the retention policy.
    pub fn ingest(&mut self, rows: &[Vec<f64>], labels: &[f64]) -> Result<(), RetrainError> {
        let batch = Dataset::new(rows, labels).map_err(RetrainError::BadBatch)?;
        self.rounds.push(batch);
        if let RetentionPolicy::Window { rounds } = self.policy {
            while self.rounds.len() > rounds.max(1) {
                self.rounds.remove(0);
            }
        }
        Ok(())
    }

    /// Refits the model on the retained corpus and returns it.
    pub fn refit(&mut self) -> Result<&LogisticModel, RetrainError> {
        let mut corpus: Option<Dataset> = None;
        for round in &self.rounds {
            match corpus.as_mut() {
                None => corpus = Some(round.clone()),
                Some(c) => c.extend(round),
            }
        }
        let corpus = corpus.ok_or(RetrainError::NoData)?;
        let model = self.fitter.fit(&corpus).map_err(RetrainError::Train)?;
        self.refit_count += 1;
        self.model = Some(model);
        Ok(self.model.as_ref().expect("just set"))
    }

    /// Convenience: ingest one round then refit.
    pub fn ingest_and_refit(
        &mut self,
        rows: &[Vec<f64>],
        labels: &[f64],
    ) -> Result<&LogisticModel, RetrainError> {
        self.ingest(rows, labels)?;
        self.refit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::sigmoid;
    use eqimpact_stats::SimRng;

    fn batch(slope: f64, n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SimRng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.uniform_in(-2.0, 2.0);
            let y = if rng.bernoulli(sigmoid(slope * x)) {
                1.0
            } else {
                0.0
            };
            rows.push(vec![x]);
            labels.push(y);
        }
        (rows, labels)
    }

    #[test]
    fn pipeline_accumulates_and_refits() {
        let mut p =
            RetrainingPipeline::new(LogisticRegression::default(), RetentionPolicy::KeepAll);
        assert!(p.model().is_none());
        assert!(matches!(p.refit(), Err(RetrainError::NoData)));

        let (rows, labels) = batch(2.0, 2000, 1);
        let model = p.ingest_and_refit(&rows, &labels).unwrap();
        assert!(model.coefficients[0] > 1.0);
        assert_eq!(p.retained_rounds(), 1);
        assert_eq!(p.retained_observations(), 2000);
        assert_eq!(p.refit_count(), 1);

        let (rows2, labels2) = batch(2.0, 2000, 2);
        p.ingest_and_refit(&rows2, &labels2).unwrap();
        assert_eq!(p.retained_rounds(), 2);
        assert_eq!(p.retained_observations(), 4000);
        assert_eq!(p.refit_count(), 2);
    }

    #[test]
    fn window_policy_forgets_old_rounds() {
        let mut p = RetrainingPipeline::new(
            LogisticRegression::default(),
            RetentionPolicy::Window { rounds: 2 },
        );
        for seed in 0..5 {
            let (rows, labels) = batch(1.0, 100, seed);
            p.ingest(&rows, &labels).unwrap();
        }
        assert_eq!(p.retained_rounds(), 2);
        assert_eq!(p.retained_observations(), 200);
    }

    #[test]
    fn concept_drift_tracked_by_window() {
        // Regime A: positive slope; regime B: negative slope. A windowed
        // pipeline flips its coefficient after the drift, an accumulating
        // one averages the regimes and reacts slowly.
        let mut windowed = RetrainingPipeline::new(
            LogisticRegression::default(),
            RetentionPolicy::Window { rounds: 1 },
        );
        let mut accumulating =
            RetrainingPipeline::new(LogisticRegression::default(), RetentionPolicy::KeepAll);

        for seed in 0..3 {
            let (rows, labels) = batch(3.0, 1500, seed);
            windowed.ingest_and_refit(&rows, &labels).unwrap();
            accumulating.ingest_and_refit(&rows, &labels).unwrap();
        }
        // Drift: slope flips sign.
        let (rows, labels) = batch(-3.0, 1500, 99);
        let w = windowed.ingest_and_refit(&rows, &labels).unwrap().clone();
        let a = accumulating
            .ingest_and_refit(&rows, &labels)
            .unwrap()
            .clone();
        assert!(
            w.coefficients[0] < -1.0,
            "windowed coef = {}",
            w.coefficients[0]
        );
        assert!(
            a.coefficients[0] > w.coefficients[0] + 1.0,
            "accumulating should lag: acc = {}, win = {}",
            a.coefficients[0],
            w.coefficients[0]
        );
    }

    #[test]
    fn bad_batch_reported() {
        let mut p =
            RetrainingPipeline::new(LogisticRegression::default(), RetentionPolicy::KeepAll);
        let err = p.ingest(&[vec![1.0]], &[0.5]).unwrap_err();
        assert!(matches!(err, RetrainError::BadBatch(_)));
        assert!(err.to_string().contains("bad batch"));
    }

    #[test]
    fn degenerate_training_reported() {
        let mut p = RetrainingPipeline::new(
            LogisticRegression {
                ridge: 0.0,
                ..Default::default()
            },
            RetentionPolicy::KeepAll,
        );
        p.ingest(&[vec![1.0], vec![2.0]], &[1.0, 1.0]).unwrap();
        assert!(matches!(p.refit(), Err(RetrainError::Train(_))));
    }
}
