//! Scorecards: the explainable face of the logistic model (paper Table I).
//!
//! A scorecard lists one row per factor with the score contribution per
//! unit; a user's credit score is the sum of contributions, and a cut-off
//! converts the score into the binary decision `π(k, i)` broadcast by the
//! lender. The paper's running example:
//!
//! ```text
//! Factor   Code        Description           Score
//! History  -    × average default rate      -8.17
//! Income   0      ≤ $15K                     0
//!          1      > $15K                    +5.77
//! ```
//!
//! so a user with ADR 0.1 and income > $15K scores
//! `-8.17 × 0.1 + 5.77 = 4.953`, above the cut-off 0.4 ⇒ approved.

use crate::logistic::LogisticModel;

/// The lender's binary decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditDecision {
    /// Credit approved (`π(k, i) = 1`).
    Approved,
    /// Credit denied (`π(k, i) = 0`).
    Denied,
}

impl CreditDecision {
    /// The paper's numeric coding: 1 for approval.
    pub fn as_f64(self) -> f64 {
        match self {
            CreditDecision::Approved => 1.0,
            CreditDecision::Denied => 0.0,
        }
    }
}

/// One scorecard row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScorecardRow {
    /// Factor name (e.g. "History", "Income").
    pub factor: String,
    /// Score contribution per unit of the factor.
    pub points_per_unit: f64,
}

/// A linear scorecard with a decision cut-off.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// Base points (the model intercept, often folded into the cut-off).
    pub base_points: f64,
    /// One row per factor, in feature order.
    pub rows: Vec<ScorecardRow>,
    /// Scores at or above the cut-off are approved.
    pub cutoff: f64,
}

impl Scorecard {
    /// Builds a scorecard directly from a fitted logistic model: the score
    /// *is* the linear predictor (log-odds), the standard practice the
    /// paper follows.
    pub fn from_model(model: &LogisticModel, factor_names: &[&str], cutoff: f64) -> Self {
        assert_eq!(
            model.coefficients.len(),
            factor_names.len(),
            "Scorecard: one name per coefficient required"
        );
        Scorecard {
            base_points: model.intercept,
            rows: model
                .coefficients
                .iter()
                .zip(factor_names)
                .map(|(&c, &name)| ScorecardRow {
                    factor: name.to_string(),
                    points_per_unit: c,
                })
                .collect(),
            cutoff,
        }
    }

    /// Builds a scorecard from explicit rows (e.g. the paper's Table I).
    pub fn from_rows(base_points: f64, rows: Vec<ScorecardRow>, cutoff: f64) -> Self {
        Scorecard {
            base_points,
            rows,
            cutoff,
        }
    }

    /// Number of factors.
    pub fn factor_count(&self) -> usize {
        self.rows.len()
    }

    /// The credit score of a feature vector.
    ///
    /// # Panics
    /// Panics when `features.len()` differs from the factor count.
    pub fn score(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.rows.len(),
            "Scorecard::score: feature length mismatch"
        );
        // Strict sequential accumulation, bitwise identical to the
        // former `zip().map().sum::<f64>()` fold (same operand order:
        // the products reduce from 0.0, then shift by the base). The
        // factor weights live in struct rows, so this is the manual
        // twin of `kernels::dot_seq` (rule R6).
        let mut acc = 0.0;
        for (r, &v) in self.rows.iter().zip(features) {
            acc += r.points_per_unit * v;
        }
        self.base_points + acc
    }

    /// The decision for a feature vector.
    pub fn decide(&self, features: &[f64]) -> CreditDecision {
        if self.score(features) >= self.cutoff {
            CreditDecision::Approved
        } else {
            CreditDecision::Denied
        }
    }

    /// Renders the scorecard as an aligned text table (the Table I format).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12} {:>10}\n", "Factor", "Score"));
        out.push_str(&format!("{:<12} {:>10.3}\n", "(base)", self.base_points));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>10.3}\n",
                row.factor, row.points_per_unit
            ));
        }
        out.push_str(&format!("{:<12} {:>10.3}\n", "(cut-off)", self.cutoff));
        out
    }

    /// The paper's illustrative Table I scorecard: history −8.17 per unit
    /// ADR, income +5.77 for the `> $15K` code, cut-off 0.4, no base
    /// points.
    pub fn paper_table1() -> Self {
        Scorecard::from_rows(
            0.0,
            vec![
                ScorecardRow {
                    factor: "History".to_string(),
                    points_per_unit: -8.17,
                },
                ScorecardRow {
                    factor: "Income".to_string(),
                    points_per_unit: 5.77,
                },
            ],
            0.4,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_score() {
        // The worked example under Table I: ADR 0.1, income > $15K.
        let card = Scorecard::paper_table1();
        let s = card.score(&[0.1, 1.0]);
        assert!((s - 4.953).abs() < 1e-12, "score = {s}");
        assert_eq!(card.decide(&[0.1, 1.0]), CreditDecision::Approved);
    }

    #[test]
    fn high_default_history_denied() {
        let card = Scorecard::paper_table1();
        // ADR 0.75 with low income: score = -6.1275 < 0.4.
        assert_eq!(card.decide(&[0.75, 0.0]), CreditDecision::Denied);
        // Low-income user with moderate history: -8.17*0.04 = -0.33 < 0.4.
        assert_eq!(card.decide(&[0.04, 0.0]), CreditDecision::Denied);
        // Clean history with income: 5.77 > 0.4.
        assert_eq!(card.decide(&[0.0, 1.0]), CreditDecision::Approved);
    }

    #[test]
    fn from_model_copies_coefficients() {
        let model = LogisticModel {
            intercept: 1.5,
            coefficients: vec![-2.0, 3.0],
            iterations: 5,
            converged: true,
        };
        let card = Scorecard::from_model(&model, &["History", "Income"], 0.0);
        assert_eq!(card.base_points, 1.5);
        assert_eq!(card.factor_count(), 2);
        assert_eq!(card.rows[0].factor, "History");
        assert_eq!(card.rows[0].points_per_unit, -2.0);
        // Score equals the model's linear predictor.
        let x = [0.3, 1.0];
        assert!((card.score(&x) - model.linear_score(&x)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "one name per coefficient")]
    fn from_model_checks_names() {
        let model = LogisticModel {
            intercept: 0.0,
            coefficients: vec![1.0],
            iterations: 0,
            converged: true,
        };
        Scorecard::from_model(&model, &[], 0.0);
    }

    #[test]
    fn decision_coding() {
        assert_eq!(CreditDecision::Approved.as_f64(), 1.0);
        assert_eq!(CreditDecision::Denied.as_f64(), 0.0);
    }

    #[test]
    fn table_rendering() {
        let card = Scorecard::paper_table1();
        let table = card.to_table();
        assert!(table.contains("History"));
        assert!(table.contains("-8.170"));
        assert!(table.contains("5.770"));
        assert!(table.contains("0.400"));
    }

    #[test]
    fn cutoff_boundary_is_approval() {
        let card = Scorecard::from_rows(
            0.0,
            vec![ScorecardRow {
                factor: "x".to_string(),
                points_per_unit: 1.0,
            }],
            0.4,
        );
        assert_eq!(card.decide(&[0.4]), CreditDecision::Approved);
        assert_eq!(card.decide(&[0.399_999]), CreditDecision::Denied);
    }
}
