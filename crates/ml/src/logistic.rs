//! Binomial logistic regression, fitted by IRLS with an L2 ridge.
//!
//! The model is `P(y = 1 | x) = σ(β₀ + βᵀ x)`. IRLS (Newton's method on
//! the penalized log-likelihood) solves
//! `(Xᵀ W X + λI) δ = Xᵀ (y − p) − λβ` per iteration via Cholesky; when a
//! Newton step fails (separation, degenerate weights) the fitter falls
//! back to plain gradient ascent, so training always returns a model.

use crate::dataset::Dataset;
use eqimpact_linalg::cholesky::solve_spd_with_ridge;
use eqimpact_linalg::{kernels, Matrix, Vector};
use std::fmt;

/// Training-time failures.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// All labels identical: the MLE does not exist without regularization.
    DegenerateLabels,
    /// The optimizer failed to make progress (should not happen with the
    /// gradient fallback; kept for API completeness).
    NoProgress {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::DegenerateLabels => {
                write!(f, "all labels identical; add regularization or more data")
            }
            TrainError::NoProgress { iterations } => {
                write!(f, "no optimization progress after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// The numerically safe sigmoid `σ(t) = 1/(1+e^{-t})`.
pub fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

/// Hyper-parameters of the logistic fitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegression {
    /// L2 ridge strength `λ ≥ 0` (applied to all coefficients including
    /// the intercept; keeps the MLE finite under separation).
    pub ridge: f64,
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the coefficient step (∞-norm).
    pub tol: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            ridge: 1e-4,
            max_iter: 100,
            tol: 1e-10,
        }
    }
}

/// Largest allowed ∞-norm of a single Newton step. Under (quasi-)complete
/// separation the IRLS Hessian degenerates to the ridge and raw Newton
/// steps explode; clamping keeps the iteration a damped ascent that still
/// converges to the penalized MLE.
const MAX_STEP_INF_NORM: f64 = 2.0;

/// A fitted logistic model: intercept plus one coefficient per feature.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Intercept `β₀`.
    pub intercept: f64,
    /// Feature coefficients `β`.
    pub coefficients: Vec<f64>,
    /// IRLS iterations actually used.
    pub iterations: usize,
    /// Whether the coefficient step converged below tolerance.
    pub converged: bool,
}

impl LogisticModel {
    /// The linear predictor `β₀ + βᵀ x`.
    ///
    /// # Panics
    /// Panics when `x` has the wrong length.
    pub fn linear_score(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.coefficients.len(),
            "linear_score: feature length mismatch"
        );
        // `dot_seq` matches the scalar `zip().map().sum()` fold bitwise
        // (see linalg::kernels), keeping scores reproducible while the
        // reduction stays inside the documented kernel home (rule R6).
        self.intercept + kernels::dot_seq(&self.coefficients, x)
    }

    /// The predicted probability `P(y = 1 | x)`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.linear_score(x))
    }

    /// Hard 0/1 prediction at probability threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.predict_proba(x) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }

    /// Batched linear predictor over columnar features:
    /// `out[i] = β₀ + Σⱼ βⱼ · colsⱼ[i]`.
    ///
    /// This is the hot-path twin of [`Self::linear_score`]: one
    /// `kernels::axpy` pass per feature column plus a `kernels::offset`
    /// for the intercept, bit-identical to calling `linear_score` on each
    /// gathered row (same per-element fold, no reassociation).
    ///
    /// # Panics
    /// Panics when the number of columns differs from the number of
    /// coefficients, or when any column's length differs from `out`'s.
    pub fn linear_scores_into(&self, cols: &[&[f64]], out: &mut [f64]) {
        assert_eq!(
            cols.len(),
            self.coefficients.len(),
            "linear_scores_into: column count mismatch"
        );
        kernels::fill(out, 0.0);
        for (b, col) in self.coefficients.iter().zip(cols) {
            kernels::axpy(out, *b, col);
        }
        kernels::offset(out, self.intercept);
    }

    /// Batched predicted probabilities: [`Self::linear_scores_into`]
    /// followed by an in-place sigmoid.
    pub fn predict_probas_into(&self, cols: &[&[f64]], out: &mut [f64]) {
        self.linear_scores_into(cols, out);
        for v in out.iter_mut() {
            *v = sigmoid(*v);
        }
    }

    /// Average log-loss on a dataset, scored through the batch kernels.
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        let n = data.len();
        let mut scores = vec![0.0; n];
        self.linear_scores_into(&data.feature_columns(), &mut scores);
        let y = data.labels();
        let mut total = 0.0;
        for (i, &s) in scores.iter().enumerate() {
            let p = sigmoid(s).clamp(1e-12, 1.0 - 1e-12);
            total -= y[i] * p.ln() + (1.0 - y[i]) * (1.0 - p).ln();
        }
        total / n as f64
    }
}

impl LogisticRegression {
    /// Fits the model to a dataset.
    ///
    /// Returns [`TrainError::DegenerateLabels`] when every label is
    /// identical **and** no ridge is configured; with a positive ridge the
    /// penalized MLE exists and is returned instead.
    pub fn fit(&self, data: &Dataset) -> Result<LogisticModel, TrainError> {
        let n = data.len();
        let d = data.feature_count();
        let pos = data.positive_rate();
        if (pos == 0.0 || pos == 1.0) && self.ridge == 0.0 {
            return Err(TrainError::DegenerateLabels);
        }

        // The design matrix stays implicit: the intercept column is all
        // ones, and the feature columns come straight from the columnar
        // dataset storage.
        let cols = data.feature_columns();
        let xat = |i: usize, j: usize| if j == 0 { 1.0 } else { cols[j - 1][i] };
        let y = data.labels();

        let mut beta = Vector::zeros(d + 1);
        // Warm start the intercept at the log-odds of the base rate.
        let p0 = pos.clamp(1e-6, 1.0 - 1e-6);
        beta[0] = (p0 / (1.0 - p0)).ln();

        let mut iterations = 0usize;
        let mut converged = false;
        let mut eta = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut w = vec![0.0; n];
        let mut resid = vec![0.0; n];

        for _ in 0..self.max_iter {
            iterations += 1;
            // η = X β through the batch kernels: per element this is the
            // same left fold as a row-major mat-vec, one column at a time.
            kernels::fill(&mut eta, 0.0);
            kernels::offset(&mut eta, beta[0]);
            for (j, col) in cols.iter().enumerate() {
                kernels::axpy(&mut eta, beta[j + 1], col);
            }
            // p = σ(X β); W = diag(p (1 - p)).
            for i in 0..n {
                p[i] = sigmoid(eta[i]);
                w[i] = (p[i] * (1.0 - p[i])).max(1e-10);
                resid[i] = y[i] - p[i];
            }
            // Gradient of penalized log-likelihood: Xᵀ(y − p) − λβ.
            // Accumulates over rows in ascending order with a skip on
            // zero residuals, exactly like the row-major transpose
            // mat-vec it replaces (skipping vs adding a signed zero can
            // differ bitwise, so the skip is part of the contract).
            let mut grad = Vector::zeros(d + 1);
            for a in 0..=d {
                let mut acc = 0.0;
                for (i, &vi) in resid.iter().enumerate() {
                    if vi == 0.0 {
                        continue;
                    }
                    acc += vi * xat(i, a);
                }
                grad[a] = acc;
            }
            grad.axpy(-self.ridge, &beta).expect("same length");
            // Hessian: Xᵀ W X + λI, same row-outer accumulation order as
            // the dense design-matrix loop.
            let mut h = Matrix::zeros(d + 1, d + 1);
            for (i, &wi) in w.iter().enumerate() {
                for a in 0..=d {
                    let ra = xat(i, a) * wi;
                    if ra == 0.0 {
                        continue;
                    }
                    for b in 0..=d {
                        h[(a, b)] += ra * xat(i, b);
                    }
                }
            }
            for a in 0..=d {
                h[(a, a)] += self.ridge.max(1e-12);
            }

            let step = match solve_spd_with_ridge(&h, &grad, 1e3) {
                Ok((s, _)) => s,
                Err(_) => {
                    // Newton failed outright: take a small gradient step.
                    grad.scaled(1e-3)
                }
            };
            // Damping: keep the step finite and clamp its length so the
            // iteration cannot explode under separation.
            let mut damped = step;
            let mut tries = 0;
            while damped.has_non_finite() && tries < 40 {
                damped.scale_mut(0.5);
                tries += 1;
            }
            let norm = damped.norm_inf();
            if norm > MAX_STEP_INF_NORM {
                damped.scale_mut(MAX_STEP_INF_NORM / norm);
            }
            beta += &damped;
            if beta.has_non_finite() {
                // Retreat: undo and stop with the last finite iterate.
                beta -= &damped;
                break;
            }
            if damped.norm_inf() < self.tol {
                converged = true;
                break;
            }
        }

        Ok(LogisticModel {
            intercept: beta[0],
            coefficients: beta.as_slice()[1..].to_vec(),
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_stats::SimRng;

    /// Generates a dataset from known coefficients for recovery tests.
    fn synthetic(n: usize, intercept: f64, coefs: &[f64], seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = coefs.iter().map(|_| rng.uniform_in(-2.0, 2.0)).collect();
            let eta: f64 = intercept + coefs.iter().zip(&x).map(|(b, v)| b * v).sum::<f64>();
            let y = if rng.bernoulli(sigmoid(eta)) {
                1.0
            } else {
                0.0
            };
            rows.push(x);
            labels.push(y);
        }
        Dataset::new(&rows, &labels).unwrap()
    }

    #[test]
    fn sigmoid_basics() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        assert!((sigmoid(700.0) - 1.0).abs() < 1e-15);
        assert!(sigmoid(-700.0) >= 0.0);
        // Symmetry.
        for &t in &[0.3, 1.7, 4.0] {
            assert!((sigmoid(t) + sigmoid(-t) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn recovers_known_coefficients() {
        let data = synthetic(20_000, 0.5, &[2.0, -1.0], 1);
        let model = LogisticRegression::default().fit(&data).unwrap();
        assert!(model.converged);
        assert!(
            (model.intercept - 0.5).abs() < 0.1,
            "b0 = {}",
            model.intercept
        );
        assert!(
            (model.coefficients[0] - 2.0).abs() < 0.1,
            "b1 = {}",
            model.coefficients[0]
        );
        assert!(
            (model.coefficients[1] + 1.0).abs() < 0.1,
            "b2 = {}",
            model.coefficients[1]
        );
    }

    #[test]
    fn prediction_api() {
        let data = synthetic(5_000, 0.0, &[3.0], 2);
        let model = LogisticRegression::default().fit(&data).unwrap();
        assert!(model.predict_proba(&[2.0]) > 0.9);
        assert!(model.predict_proba(&[-2.0]) < 0.1);
        assert_eq!(model.predict(&[2.0]), 1.0);
        assert_eq!(model.predict(&[-2.0]), 0.0);
    }

    #[test]
    fn log_loss_better_than_chance() {
        let data = synthetic(5_000, 0.0, &[2.0], 3);
        let model = LogisticRegression::default().fit(&data).unwrap();
        // Chance log-loss is ln 2 ≈ 0.693.
        assert!(model.log_loss(&data) < 0.55);
    }

    #[test]
    fn separation_is_tamed_by_ridge() {
        // Perfectly separated data: unpenalized MLE diverges; the ridge
        // keeps coefficients finite.
        let data = Dataset::new(
            &[vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]],
            &[0.0, 0.0, 1.0, 1.0],
        )
        .unwrap();
        let model = LogisticRegression {
            ridge: 0.1,
            ..Default::default()
        }
        .fit(&data)
        .unwrap();
        assert!(model.coefficients[0].is_finite());
        assert!(model.coefficients[0] > 0.5);
        assert!(model.predict_proba(&[2.0]) > 0.7);
    }

    #[test]
    fn degenerate_labels_rejected_without_ridge() {
        let data = Dataset::new(&[vec![1.0], vec![2.0]], &[1.0, 1.0]).unwrap();
        let err = LogisticRegression {
            ridge: 0.0,
            ..Default::default()
        }
        .fit(&data)
        .unwrap_err();
        assert_eq!(err, TrainError::DegenerateLabels);
        // With a ridge the fit succeeds and predicts high probability.
        let model = LogisticRegression::default().fit(&data).unwrap();
        assert!(model.predict_proba(&[1.5]) > 0.9);
    }

    #[test]
    fn paper_scorecard_shape_negative_history_positive_income() {
        // Simulate the paper's feature pattern: income code in {0, 1},
        // average default rate in [0, 1]; repayment more likely with income,
        // less likely with default history.
        let mut rng = SimRng::new(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..10_000 {
            let income = if rng.bernoulli(0.7) { 1.0 } else { 0.0 };
            let adr = rng.uniform();
            let eta = -8.0 * adr + 5.5 * income + 1.0;
            let y = if rng.bernoulli(sigmoid(eta)) {
                1.0
            } else {
                0.0
            };
            rows.push(vec![adr, income]);
            labels.push(y);
        }
        let data = Dataset::new(&rows, &labels).unwrap();
        let model = LogisticRegression::default().fit(&data).unwrap();
        // Table I shape: history (ADR) negative, income positive.
        assert!(
            model.coefficients[0] < -5.0,
            "adr coef = {}",
            model.coefficients[0]
        );
        assert!(
            model.coefficients[1] > 3.0,
            "income coef = {}",
            model.coefficients[1]
        );
    }

    #[test]
    fn batch_scores_match_per_row_bitwise() {
        let data = synthetic(500, 0.25, &[1.5, -0.75], 9);
        let model = LogisticRegression::default().fit(&data).unwrap();
        let cols = data.feature_columns();
        let mut scores = vec![f64::NAN; data.len()];
        model.linear_scores_into(&cols, &mut scores);
        let mut probas = vec![f64::NAN; data.len()];
        model.predict_probas_into(&cols, &mut probas);
        for i in 0..data.len() {
            let row = data.row(i);
            assert_eq!(scores[i].to_bits(), model.linear_score(&row).to_bits());
            assert_eq!(probas[i].to_bits(), model.predict_proba(&row).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn batch_scores_check_column_count() {
        let model = LogisticModel {
            intercept: 0.0,
            coefficients: vec![1.0, 2.0],
            iterations: 0,
            converged: true,
        };
        let mut out = [0.0; 2];
        model.linear_scores_into(&[&[1.0, 2.0]], &mut out);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn linear_score_checks_length() {
        let model = LogisticModel {
            intercept: 0.0,
            coefficients: vec![1.0, 2.0],
            iterations: 0,
            converged: true,
        };
        model.linear_score(&[1.0]);
    }

    #[test]
    fn train_error_display() {
        assert!(TrainError::DegenerateLabels
            .to_string()
            .contains("identical"));
        assert!(TrainError::NoProgress { iterations: 7 }
            .to_string()
            .contains('7'));
    }
}
