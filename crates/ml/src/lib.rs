//! The regulated "AI system": from-scratch logistic regression and
//! scorecards.
//!
//! The paper's credit-scoring case study (Sec. VII) retrains a logistic
//! model every time step on `(1_{z≥15}, ADR_i(k−1)) → repayment` and
//! converts it into an explainable **scorecard** (Table I) with a cut-off
//! that yields the binary credit decision `π(k, i)`.
//!
//! * [`dataset`] — design matrices with labels, standardization;
//! * [`logistic`] — binomial GLM with logit link, fitted by IRLS (Newton)
//!   with an L2 ridge and a gradient-descent fallback;
//! * [`scorecard`] — coefficient-to-scorecard conversion, cut-off
//!   decisions, Table I rendering;
//! * [`metrics`] — accuracy, AUC, log-loss, calibration;
//! * [`retrain`] — the accumulating retraining pipeline of Fig. 1 (concept
//!   drift made explicit).

//! # Example
//!
//! ```
//! use eqimpact_ml::{Dataset, LogisticRegression, Scorecard};
//! use eqimpact_ml::scorecard::CreditDecision;
//!
//! // Fit a tiny model and read it back as a scorecard.
//! let rows = vec![vec![0.9, 0.0], vec![0.8, 0.0], vec![0.1, 1.0], vec![0.0, 1.0]];
//! let labels = vec![0.0, 0.0, 1.0, 1.0];
//! let data = Dataset::new(&rows, &labels).unwrap();
//! let model = LogisticRegression::default().fit(&data).unwrap();
//! let card = Scorecard::from_model(&model, &["History", "Income"], 0.0);
//! assert_eq!(card.decide(&[0.0, 1.0]), CreditDecision::Approved);
//! assert_eq!(card.decide(&[0.9, 0.0]), CreditDecision::Denied);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counterfactual;
pub mod dataset;
pub mod logistic;
pub mod metrics;
pub mod retrain;
pub mod scorecard;

pub use counterfactual::{minimal_counterfactual, Counterfactual, FeatureBounds};
pub use dataset::Dataset;
pub use logistic::{LogisticModel, LogisticRegression, TrainError};
pub use retrain::RetrainingPipeline;
pub use scorecard::{CreditDecision, Scorecard};
