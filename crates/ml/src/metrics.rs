//! Classification metrics for the retrained models.

/// Accuracy of hard predictions against binary labels.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "accuracy: length mismatch");
    assert!(!labels.is_empty(), "accuracy: empty input");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, y)| (**p >= 0.5) == (**y >= 0.5))
        .count();
    correct as f64 / labels.len() as f64
}

/// Area under the ROC curve via the Mann-Whitney U statistic, with tie
/// correction (ties contribute 1/2).
///
/// Returns `NaN` when either class is absent.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn auc(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    assert!(!labels.is_empty(), "auc: empty input");
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (s, y) in scores.iter().zip(labels) {
        if *y >= 0.5 {
            pos.push(*s);
        } else {
            neg.push(*s);
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return f64::NAN;
    }
    let mut wins = 0.0;
    for p in &pos {
        for n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// A confusion matrix at threshold 0.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Computes the confusion matrix of probability scores against labels.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn at_threshold(scores: &[f64], labels: &[f64], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len(), "confusion: length mismatch");
        let mut c = Confusion {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (s, y) in scores.iter().zip(labels) {
            let predicted = *s >= threshold;
            let actual = *y >= 0.5;
            match (predicted, actual) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision `tp/(tp+fp)`; `NaN` when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            f64::NAN
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall (true positive rate); `NaN` when no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            f64::NAN
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// False positive rate; `NaN` when no negative labels.
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            f64::NAN
        } else {
            self.fp as f64 / denom as f64
        }
    }
}

/// Expected calibration error with `bins` equal-width probability bins:
/// `Σ_b (n_b / n) |mean_conf_b − mean_acc_b|`.
///
/// # Panics
/// Panics on length mismatch, empty input, or zero bins.
pub fn expected_calibration_error(scores: &[f64], labels: &[f64], bins: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "ece: length mismatch");
    assert!(!labels.is_empty(), "ece: empty input");
    assert!(bins > 0, "ece: zero bins");
    let mut conf_sum = vec![0.0; bins];
    let mut label_sum = vec![0.0; bins];
    let mut counts = vec![0usize; bins];
    for (s, y) in scores.iter().zip(labels) {
        let b = ((s * bins as f64) as usize).min(bins - 1);
        conf_sum[b] += s;
        label_sum[b] += y;
        counts[b] += 1;
    }
    let n = labels.len() as f64;
    let mut ece = 0.0;
    for b in 0..bins {
        if counts[b] == 0 {
            continue;
        }
        let cnt = counts[b] as f64;
        ece += (cnt / n) * ((conf_sum[b] / cnt) - (label_sum[b] / cnt)).abs();
    }
    ece
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let p = [0.9, 0.1, 0.8, 0.2];
        let y = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(accuracy(&p, &y), 0.75);
    }

    #[test]
    fn auc_perfect_and_random() {
        let perfect_scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&perfect_scores, &labels), 1.0);
        let inverted = [0.9, 0.8, 0.2, 0.1];
        assert_eq!(auc(&inverted, &labels), 0.0);
        let constant = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(auc(&constant, &labels), 0.5);
    }

    #[test]
    fn auc_single_class_is_nan() {
        assert!(auc(&[0.5, 0.6], &[1.0, 1.0]).is_nan());
    }

    #[test]
    fn confusion_matrix_and_rates() {
        let scores = [0.9, 0.8, 0.3, 0.2, 0.6];
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0];
        let c = Confusion::at_threshold(&scores, &labels, 0.5);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.fn_, 1);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-15);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-15);
        assert!((c.false_positive_rate() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn confusion_degenerate_rates_nan() {
        let c = Confusion::at_threshold(&[0.1], &[0.0], 0.5);
        assert!(c.precision().is_nan());
        assert!(c.recall().is_nan());
    }

    #[test]
    fn calibration_of_perfect_calibrated_scores() {
        // Scores equal to the empirical frequency in each bin.
        let scores = [0.25, 0.25, 0.25, 0.25, 0.75, 0.75, 0.75, 0.75];
        let labels = [0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0];
        let ece = expected_calibration_error(&scores, &labels, 2);
        assert!(ece < 1e-12, "ece = {ece}");
    }

    #[test]
    fn calibration_of_overconfident_scores() {
        let scores = [0.99, 0.99, 0.99, 0.99];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let ece = expected_calibration_error(&scores, &labels, 10);
        assert!((ece - 0.49).abs() < 1e-12, "ece = {ece}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        accuracy(&[0.5], &[0.0, 1.0]);
    }
}
