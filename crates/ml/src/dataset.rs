//! Labeled design matrices, stored column-major.
//!
//! Since the columnar feature-plane redesign the dataset keeps one flat
//! buffer per feature column (struct-of-arrays) instead of a row-major
//! [`eqimpact_linalg::Matrix`]. Training and scoring walk whole columns
//! through the `eqimpact_linalg::kernels` batch primitives, and the hot
//! retrain paths build datasets straight from
//! `eqimpact_core::features::FeatureMatrix` column slices with
//! [`Dataset::from_columns`] — no transpose, no per-row gather.

use eqimpact_linalg::{kernels, Vector};
use std::fmt;

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The number of rows and labels differ.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Rows have inconsistent widths.
    RaggedRows,
    /// The dataset has no rows.
    Empty,
    /// A label is not 0 or 1.
    NonBinaryLabel {
        /// Index of the offending label.
        index: usize,
    },
    /// A feature is NaN or infinite.
    NonFiniteFeature {
        /// Row of the offending feature.
        row: usize,
        /// Column of the offending feature.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DatasetError::RaggedRows => write!(f, "rows have inconsistent widths"),
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::NonBinaryLabel { index } => {
                write!(f, "label at index {index} is not 0/1")
            }
            DatasetError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A binary-labeled dataset: feature columns `X` (no intercept column — the
/// model adds it) plus labels `y ∈ {0, 1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    cols: Vec<Vec<f64>>,
    y: Vector,
}

impl Dataset {
    /// Builds a dataset from feature rows and binary labels.
    pub fn new(rows: &[Vec<f64>], labels: &[f64]) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(DatasetError::RaggedRows);
        }
        let mut flat = Vec::with_capacity(rows.len() * width);
        for r in rows {
            flat.extend_from_slice(r);
        }
        Self::from_flat_buffer(width, flat, labels)
    }

    /// Builds a dataset from an already-flat row-major feature buffer of
    /// `labels.len()` rows by `width` columns, for callers that keep their
    /// features flat.
    pub fn from_flat(width: usize, flat: &[f64], labels: &[f64]) -> Result<Self, DatasetError> {
        Self::from_flat_buffer(width, flat.to_vec(), labels)
    }

    /// Builds a dataset straight from per-feature column slices — the
    /// zero-transpose constructor for columnar callers such as
    /// `FeatureMatrix::col_slices()`. Each column must have
    /// `labels.len()` entries.
    pub fn from_columns(cols: &[&[f64]], labels: &[f64]) -> Result<Self, DatasetError> {
        if labels.is_empty() {
            return Err(DatasetError::Empty);
        }
        for col in cols {
            if col.len() != labels.len() {
                return Err(DatasetError::LengthMismatch {
                    rows: col.len(),
                    labels: labels.len(),
                });
            }
        }
        for i in 0..labels.len() {
            for (j, col) in cols.iter().enumerate() {
                if !col[i].is_finite() {
                    return Err(DatasetError::NonFiniteFeature { row: i, col: j });
                }
            }
        }
        validate_labels(labels)?;
        Ok(Dataset {
            cols: cols.iter().map(|c| c.to_vec()).collect(),
            y: Vector::from_slice(labels),
        })
    }

    /// All cell and label validation for the row-major constructors lives
    /// here; the validated buffer is then transposed once into the
    /// column-major storage.
    fn from_flat_buffer(
        width: usize,
        flat: Vec<f64>,
        labels: &[f64],
    ) -> Result<Self, DatasetError> {
        if labels.is_empty() {
            return Err(DatasetError::Empty);
        }
        if flat.len() != labels.len() * width {
            return Err(DatasetError::LengthMismatch {
                rows: flat.len() / width.max(1),
                labels: labels.len(),
            });
        }
        // When width == 0 the length check above forces `flat` empty, so
        // the divisions below never see a zero width.
        for (cell, &v) in flat.iter().enumerate() {
            if !v.is_finite() {
                return Err(DatasetError::NonFiniteFeature {
                    row: cell / width,
                    col: cell % width,
                });
            }
        }
        validate_labels(labels)?;
        let n = labels.len();
        let mut cols = vec![Vec::with_capacity(n); width];
        for row in flat.chunks_exact(width.max(1)) {
            for (col, &v) in cols.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Ok(Dataset {
            cols,
            y: Vector::from_slice(labels),
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no rows (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.y.len() == 0
    }

    /// Number of features (without intercept).
    pub fn feature_count(&self) -> usize {
        self.cols.len()
    }

    /// Feature column `j` as a contiguous slice.
    pub fn feature_col(&self, j: usize) -> &[f64] {
        &self.cols[j]
    }

    /// All feature columns, in order — the shape the batch kernels and
    /// `LogisticModel::linear_scores_into` consume.
    pub fn feature_columns(&self) -> Vec<&[f64]> {
        self.cols.iter().map(|c| c.as_slice()).collect()
    }

    /// The labels.
    pub fn labels(&self) -> &Vector {
        &self.y
    }

    /// Feature row `i`, gathered across columns (inspection/test
    /// convenience; the hot paths stay columnar).
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        kernels::sum_seq(self.y.as_slice()) / self.y.len() as f64
    }

    /// Concatenates another dataset with the same width below this one —
    /// the "accumulating the training data" filter of Fig. 1. Column-major
    /// storage makes this a per-column `extend_from_slice`.
    ///
    /// # Panics
    /// Panics when widths differ.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(
            self.feature_count(),
            other.feature_count(),
            "Dataset::extend: width mismatch"
        );
        for (col, oc) in self.cols.iter_mut().zip(&other.cols) {
            col.extend_from_slice(oc);
        }
        let mut labels: Vec<f64> = self.y.as_slice().to_vec();
        labels.extend_from_slice(other.y.as_slice());
        self.y = Vector::from_slice(&labels);
    }

    /// Per-column mean and standard deviation (population), used for
    /// standardization. Degenerate columns (zero spread) report sd = 1 so
    /// that standardization is a no-op on them. Accumulation runs over each
    /// column in row order, so results are bit-identical to the old
    /// row-major sweep.
    pub fn column_stats(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.len() as f64;
        let mut means = Vec::with_capacity(self.cols.len());
        for col in &self.cols {
            means.push(kernels::sum_seq(col) / n);
        }
        let mut sds = Vec::with_capacity(self.cols.len());
        for (col, &m) in self.cols.iter().zip(&means) {
            let mut s = 0.0;
            for &v in col {
                s += (v - m) * (v - m);
            }
            s = (s / n).sqrt();
            if s < 1e-12 {
                s = 1.0;
            }
            sds.push(s);
        }
        (means, sds)
    }

    /// Returns a standardized copy (per-column z-scores) together with the
    /// `(means, sds)` used, so predictions can apply the same transform.
    pub fn standardized(&self) -> (Dataset, Vec<f64>, Vec<f64>) {
        let (means, sds) = self.column_stats();
        let cols: Vec<Vec<f64>> = self
            .cols
            .iter()
            .enumerate()
            .map(|(j, col)| col.iter().map(|&v| (v - means[j]) / sds[j]).collect())
            .collect();
        let ds = Dataset {
            cols,
            y: self.y.clone(),
        };
        (ds, means, sds)
    }
}

fn validate_labels(labels: &[f64]) -> Result<(), DatasetError> {
    for (i, &l) in labels.iter().enumerate() {
        if l != 0.0 && l != 1.0 {
            return Err(DatasetError::NonBinaryLabel { index: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            &[0.0, 1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.feature_count(), 2);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert!((ds.positive_rate() - 2.0 / 3.0).abs() < 1e-15);
        assert!(!ds.is_empty());
    }

    #[test]
    fn storage_is_columnar() {
        let ds = toy();
        assert_eq!(ds.feature_col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(ds.feature_col(1), &[2.0, 4.0, 6.0]);
        let cols = ds.feature_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1], &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn from_columns_matches_row_constructor() {
        let by_rows = toy();
        let by_cols =
            Dataset::from_columns(&[&[1.0, 3.0, 5.0], &[2.0, 4.0, 6.0]], &[0.0, 1.0, 1.0]).unwrap();
        assert_eq!(by_rows, by_cols);
    }

    #[test]
    fn from_columns_rejects_invalid_inputs() {
        assert_eq!(
            Dataset::from_columns(&[], &[]).unwrap_err(),
            DatasetError::Empty
        );
        assert!(matches!(
            Dataset::from_columns(&[&[1.0, 2.0][..]], &[0.0]).unwrap_err(),
            DatasetError::LengthMismatch { rows: 2, labels: 1 }
        ));
        assert!(matches!(
            Dataset::from_columns(&[&[0.0][..], &[f64::NAN][..]], &[0.0]).unwrap_err(),
            DatasetError::NonFiniteFeature { row: 0, col: 1 }
        ));
        assert!(matches!(
            Dataset::from_columns(&[&[1.0][..]], &[0.25]).unwrap_err(),
            DatasetError::NonBinaryLabel { index: 0 }
        ));
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert_eq!(Dataset::new(&[], &[]).unwrap_err(), DatasetError::Empty);
        assert!(matches!(
            Dataset::new(&[vec![1.0]], &[1.0, 0.0]).unwrap_err(),
            DatasetError::LengthMismatch { .. }
        ));
        assert_eq!(
            Dataset::new(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 1.0]).unwrap_err(),
            DatasetError::RaggedRows
        );
        assert!(matches!(
            Dataset::new(&[vec![1.0]], &[0.5]).unwrap_err(),
            DatasetError::NonBinaryLabel { index: 0 }
        ));
        assert!(matches!(
            Dataset::new(&[vec![f64::NAN]], &[0.0]).unwrap_err(),
            DatasetError::NonFiniteFeature { row: 0, col: 0 }
        ));
    }

    #[test]
    fn extend_accumulates() {
        let mut a = toy();
        let b = Dataset::new(&[vec![7.0, 8.0]], &[0.0]).unwrap();
        a.extend(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.row(3), &[7.0, 8.0]);
        assert_eq!(a.feature_col(0), &[1.0, 3.0, 5.0, 7.0]);
        assert_eq!(a.labels()[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn extend_rejects_width_mismatch() {
        let mut a = toy();
        let b = Dataset::new(&[vec![1.0]], &[0.0]).unwrap();
        a.extend(&b);
    }

    #[test]
    fn column_stats_and_standardization() {
        let ds = toy();
        let (means, sds) = ds.column_stats();
        assert!((means[0] - 3.0).abs() < 1e-12);
        assert!((means[1] - 4.0).abs() < 1e-12);
        let expected_sd = (8.0f64 / 3.0).sqrt();
        assert!((sds[0] - expected_sd).abs() < 1e-12);

        let (z, zm, zs) = ds.standardized();
        assert_eq!(zm.len(), 2);
        assert_eq!(zs.len(), 2);
        let (zmeans, zsds) = z.column_stats();
        assert!(zmeans.iter().all(|m| m.abs() < 1e-12));
        assert!(zsds.iter().all(|s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn degenerate_column_sd_is_one() {
        let ds = Dataset::new(&[vec![5.0], vec![5.0]], &[0.0, 1.0]).unwrap();
        let (_, sds) = ds.column_stats();
        assert_eq!(sds[0], 1.0);
        // Standardizing a constant column must not produce NaN.
        let (z, _, _) = ds.standardized();
        assert!(z.row(0)[0].is_finite());
    }

    #[test]
    fn error_display() {
        let e = DatasetError::NonFiniteFeature { row: 1, col: 2 };
        assert!(e.to_string().contains("(1, 2)"));
    }
}
