//! The embedded income-distribution tables.

use crate::brackets::BRACKET_COUNT;
use std::fmt;

/// First simulated year (the paper starts in 2002, when ASEC first allowed
/// the detailed race options).
pub const FIRST_YEAR: u32 = 2002;

/// Last simulated year.
pub const LAST_YEAR: u32 = 2020;

/// The paper's 2002 household race shares for
/// `[Black alone, White alone, Asian alone]`.
pub const RACE_SHARE_2002: [f64; 3] = [0.1235, 0.8406, 0.0359];

/// The three races of the paper's Sec. VII (Fig. 2's colours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Race {
    /// "BLACK ALONE" (blue in the paper's figures).
    Black,
    /// "WHITE ALONE" (pink).
    White,
    /// "ASIAN ALONE" (green).
    Asian,
}

impl Race {
    /// All races in the paper's `[Black, White, Asian]` order.
    pub const ALL: [Race; 3] = [Race::Black, Race::White, Race::Asian];

    /// Dense index in `Race::ALL` order.
    pub fn index(self) -> usize {
        match self {
            Race::Black => 0,
            Race::White => 1,
            Race::Asian => 2,
        }
    }

    /// The CPS label.
    pub fn label(self) -> &'static str {
        match self {
            Race::Black => "BLACK ALONE",
            Race::White => "WHITE ALONE",
            Race::Asian => "ASIAN ALONE",
        }
    }
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from table queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The requested year is outside `[FIRST_YEAR, LAST_YEAR]`.
    YearOutOfRange {
        /// The offending year.
        year: u32,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::YearOutOfRange { year } => {
                write!(f, "year {year} outside [{FIRST_YEAR}, {LAST_YEAR}]")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Anchor distribution for 2002 (bracket shares in percent, rows =
/// `[Black, White, Asian]`). Hand-authored to reflect the nominal-income
/// CPS profile of 2002: lower overall incomes, thin top tail, with the
/// Black distribution concentrated below $75K.
const SHARES_2002: [[f64; BRACKET_COUNT]; 3] = [
    // under15 15-25 25-35 35-50 50-75 75-100 100-150 150-200 over200
    [21.0, 14.0, 13.0, 15.0, 17.0, 9.0, 8.0, 2.0, 1.0], // Black
    [10.0, 11.0, 11.0, 15.0, 19.0, 12.0, 13.0, 5.0, 4.0], // White
    [10.0, 8.0, 8.0, 11.0, 17.0, 13.0, 17.0, 8.0, 8.0], // Asian
];

/// Anchor distribution for 2020, matching the shape of the paper's Fig. 2:
/// most Black households below $75K; the Asian bar on "over 200" near 20 %.
const SHARES_2020: [[f64; BRACKET_COUNT]; 3] = [
    [14.0, 11.0, 11.0, 14.0, 17.0, 11.0, 12.0, 5.0, 5.0], // Black
    [7.0, 8.0, 9.0, 12.0, 17.0, 13.0, 16.0, 8.0, 10.0],   // White
    [6.0, 5.0, 6.0, 9.0, 13.0, 11.0, 18.0, 12.0, 20.0],   // Asian
];

/// The per-year, per-race income distribution table.
///
/// Shares for intermediate years are linear interpolations of the 2002 and
/// 2020 anchors, renormalized to sum to exactly 1, emulating the gradual
/// nominal-income drift the real Table A-2 records.
#[derive(Debug, Clone, PartialEq)]
pub struct IncomeTable {
    /// `shares[year - FIRST_YEAR][race][bracket]`, normalized per (year,
    /// race) row.
    shares: Vec<[[f64; BRACKET_COUNT]; 3]>,
}

impl IncomeTable {
    /// Builds the embedded table.
    pub fn embedded() -> Self {
        let years = (LAST_YEAR - FIRST_YEAR + 1) as usize;
        let mut shares = Vec::with_capacity(years);
        for k in 0..years {
            let t = k as f64 / (years - 1) as f64;
            let mut year_shares = [[0.0; BRACKET_COUNT]; 3];
            for r in 0..3 {
                let mut total = 0.0;
                for (b, slot) in year_shares[r].iter_mut().enumerate() {
                    let v = (1.0 - t) * SHARES_2002[r][b] + t * SHARES_2020[r][b];
                    *slot = v;
                    total += v;
                }
                for slot in year_shares[r].iter_mut() {
                    *slot /= total;
                }
            }
            shares.push(year_shares);
        }
        IncomeTable { shares }
    }

    /// Number of years covered.
    pub fn year_count(&self) -> usize {
        self.shares.len()
    }

    /// Normalized bracket shares for a `(year, race)` pair.
    pub fn shares(&self, year: u32, race: Race) -> Result<&[f64; BRACKET_COUNT], TableError> {
        if !(FIRST_YEAR..=LAST_YEAR).contains(&year) {
            return Err(TableError::YearOutOfRange { year });
        }
        Ok(&self.shares[(year - FIRST_YEAR) as usize][race.index()])
    }

    /// Mean income ($K) for a `(year, race)` pair, using bracket midpoints.
    pub fn mean_income(&self, year: u32, race: Race) -> Result<f64, TableError> {
        let shares = self.shares(year, race)?;
        Ok(shares
            .iter()
            .zip(crate::brackets::BRACKETS.iter())
            .map(|(s, b)| s * b.midpoint())
            .sum())
    }

    /// Share of households with income at least `threshold` ($K), counting
    /// a partially covered bracket proportionally (incomes are
    /// bracket-uniform under our sampling).
    pub fn share_at_least(&self, year: u32, race: Race, threshold: f64) -> Result<f64, TableError> {
        let shares = self.shares(year, race)?;
        let mut total = 0.0;
        for (s, b) in shares.iter().zip(crate::brackets::BRACKETS.iter()) {
            if threshold <= b.lo {
                total += s;
            } else if threshold < b.hi {
                total += s * (b.hi - threshold) / (b.hi - b.lo);
            }
        }
        Ok(total)
    }
}

impl Default for IncomeTable {
    fn default() -> Self {
        IncomeTable::embedded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_indexing_and_labels() {
        assert_eq!(Race::Black.index(), 0);
        assert_eq!(Race::White.index(), 1);
        assert_eq!(Race::Asian.index(), 2);
        assert_eq!(Race::Asian.label(), "ASIAN ALONE");
        assert_eq!(format!("{}", Race::Black), "BLACK ALONE");
        assert_eq!(Race::ALL.len(), 3);
    }

    #[test]
    fn race_shares_sum_to_one() {
        let total: f64 = RACE_SHARE_2002.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_year_race_rows_normalized() {
        let t = IncomeTable::embedded();
        assert_eq!(t.year_count(), 19);
        for year in FIRST_YEAR..=LAST_YEAR {
            for race in Race::ALL {
                let shares = t.shares(year, race).unwrap();
                let total: f64 = shares.iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "{race} {year} sums to {total}");
                assert!(shares.iter().all(|&s| s >= 0.0));
            }
        }
    }

    #[test]
    fn year_bounds_enforced() {
        let t = IncomeTable::embedded();
        assert!(matches!(
            t.shares(2001, Race::Black),
            Err(TableError::YearOutOfRange { year: 2001 })
        ));
        assert!(t.shares(2002, Race::Black).is_ok());
        assert!(t.shares(2020, Race::Asian).is_ok());
        assert!(t.shares(2021, Race::White).is_err());
    }

    #[test]
    fn income_ordering_black_white_asian() {
        // The qualitative fact the equal-impact argument relies on.
        let t = IncomeTable::embedded();
        for year in FIRST_YEAR..=LAST_YEAR {
            let b = t.mean_income(year, Race::Black).unwrap();
            let w = t.mean_income(year, Race::White).unwrap();
            let a = t.mean_income(year, Race::Asian).unwrap();
            assert!(b < w, "year {year}: Black {b} !< White {w}");
            assert!(w < a, "year {year}: White {w} !< Asian {a}");
        }
    }

    #[test]
    fn fig2_signature_facts() {
        let t = IncomeTable::embedded();
        // Almost 20% of Asian households above $200K in 2020.
        let asian_top = t.shares(2020, Race::Asian).unwrap()[8];
        assert!((asian_top - 0.20).abs() < 0.02, "asian top = {asian_top}");
        // Most Black households below $75K in 2020.
        let black_below_75 = t.share_at_least(2020, Race::Black, 75.0).unwrap();
        assert!(
            1.0 - black_below_75 > 0.5,
            "below75 = {}",
            1.0 - black_below_75
        );
    }

    #[test]
    fn incomes_drift_upward_over_time() {
        let t = IncomeTable::embedded();
        for race in Race::ALL {
            let early = t.mean_income(2002, race).unwrap();
            let late = t.mean_income(2020, race).unwrap();
            assert!(late > early, "{race}: {early} -> {late}");
        }
    }

    #[test]
    fn share_at_least_boundaries() {
        let t = IncomeTable::embedded();
        let all = t.share_at_least(2020, Race::White, 0.0).unwrap();
        assert!((all - 1.0).abs() < 1e-12);
        let none = t.share_at_least(2020, Race::White, 500.0).unwrap();
        assert!(none.abs() < 1e-12);
        // Partial bracket: threshold inside 15-25 bracket.
        let partial = t.share_at_least(2020, Race::White, 20.0).unwrap();
        let at_15 = t.share_at_least(2020, Race::White, 15.0).unwrap();
        let at_25 = t.share_at_least(2020, Race::White, 25.0).unwrap();
        assert!(partial < at_15 && partial > at_25);
    }

    #[test]
    fn error_display() {
        let e = TableError::YearOutOfRange { year: 1999 };
        assert!(e.to_string().contains("1999"));
    }
}
