//! Embedded substitute for CPS **Table A-2** (*Households by Total Money
//! Income, Race, and Hispanic Origin of Householder*), US Census Bureau.
//!
//! The paper's Sec. VII samples household incomes per year (2002-2020) and
//! race ("BLACK ALONE", "WHITE ALONE", "ASIAN ALONE") from Table A-2. The
//! real table is not redistributable inside this crate, so we embed a
//! **synthetic approximation**: per-race 9-bracket income histograms for
//! the anchor years 2002 and 2020, hand-authored to match the shape of the
//! paper's Fig. 2 (the 2020 panel) and the qualitative 2002 facts —
//! Black < White < Asian median income, with roughly 20 % of Asian
//! households above $200K by 2020 — linearly interpolated for the years in
//! between and renormalized. The closed loop only consumes bracket samples,
//! so preserving the ordering and tails preserves the behaviour the paper's
//! equal-impact argument relies on (see DESIGN.md, substitution table).
//!
//! # Example
//!
//! ```
//! use eqimpact_census::{Race, IncomeTable, HouseholdSampler};
//! use eqimpact_stats::SimRng;
//!
//! let table = IncomeTable::embedded();
//! let sampler = HouseholdSampler::new(&table);
//! let mut rng = SimRng::new(1);
//! let race = sampler.sample_race(&mut rng);
//! let income = sampler.sample_income(2020, race, &mut rng).unwrap();
//! assert!(income > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brackets;
pub mod population;
pub mod sampler;
pub mod tables;

pub use brackets::{IncomeBracket, BRACKETS, BRACKET_COUNT};
pub use population::{Household, Population};
pub use sampler::HouseholdSampler;
pub use tables::{IncomeTable, Race, TableError, FIRST_YEAR, LAST_YEAR, RACE_SHARE_2002};
