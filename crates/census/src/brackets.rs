//! The nine income brackets of Table A-2 / the paper's Fig. 2.

/// Number of income brackets.
pub const BRACKET_COUNT: usize = 9;

/// One income bracket in thousands of dollars, `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncomeBracket {
    /// Lower bound ($K), inclusive.
    pub lo: f64,
    /// Upper bound ($K), exclusive.
    pub hi: f64,
    /// Display label matching Fig. 2's axis.
    pub label: &'static str,
}

/// The Fig. 2 brackets. The open-ended "over 200" bracket is capped at
/// $500K for bracket-uniform sampling; the cap only affects the extreme
/// tail, which the credit model treats identically (any income above
/// ~$21K repays a 3.5x-income mortgage with near-certainty — see
/// `eqimpact-credit`).
pub const BRACKETS: [IncomeBracket; BRACKET_COUNT] = [
    IncomeBracket {
        lo: 1.0,
        hi: 15.0,
        label: "under 15",
    },
    IncomeBracket {
        lo: 15.0,
        hi: 25.0,
        label: "15-25",
    },
    IncomeBracket {
        lo: 25.0,
        hi: 35.0,
        label: "25-35",
    },
    IncomeBracket {
        lo: 35.0,
        hi: 50.0,
        label: "35-50",
    },
    IncomeBracket {
        lo: 50.0,
        hi: 75.0,
        label: "50-75",
    },
    IncomeBracket {
        lo: 75.0,
        hi: 100.0,
        label: "75-100",
    },
    IncomeBracket {
        lo: 100.0,
        hi: 150.0,
        label: "100-150",
    },
    IncomeBracket {
        lo: 150.0,
        hi: 200.0,
        label: "150-200",
    },
    IncomeBracket {
        lo: 200.0,
        hi: 500.0,
        label: "over 200",
    },
];

impl IncomeBracket {
    /// Midpoint of the bracket ($K).
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether an income ($K) falls into this bracket.
    pub fn contains(&self, income: f64) -> bool {
        income >= self.lo && income < self.hi
    }
}

/// The bracket index of an income ($K); incomes above the top cap clamp to
/// the last bracket, incomes below the floor to the first.
pub fn bracket_of(income: f64) -> usize {
    for (i, b) in BRACKETS.iter().enumerate() {
        if income < b.hi {
            return i;
        }
    }
    BRACKET_COUNT - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_are_contiguous_and_ordered() {
        for w in BRACKETS.windows(2) {
            assert_eq!(
                w[0].hi, w[1].lo,
                "gap between {} and {}",
                w[0].label, w[1].label
            );
            assert!(w[0].lo < w[0].hi);
        }
        assert_eq!(BRACKETS.len(), BRACKET_COUNT);
    }

    #[test]
    fn midpoints_and_membership() {
        assert_eq!(BRACKETS[0].midpoint(), 8.0);
        assert!(BRACKETS[0].contains(10.0));
        assert!(!BRACKETS[0].contains(15.0));
        assert!(BRACKETS[1].contains(15.0));
    }

    #[test]
    fn bracket_of_maps_correctly() {
        assert_eq!(bracket_of(5.0), 0);
        assert_eq!(bracket_of(15.0), 1);
        assert_eq!(bracket_of(99.9), 5);
        assert_eq!(bracket_of(250.0), 8);
        assert_eq!(bracket_of(1_000.0), 8); // above cap clamps
        assert_eq!(bracket_of(0.0), 0);
    }

    #[test]
    fn labels_match_figure_axis() {
        let labels: Vec<&str> = BRACKETS.iter().map(|b| b.label).collect();
        assert_eq!(labels[0], "under 15");
        assert_eq!(labels[8], "over 200");
    }
}
