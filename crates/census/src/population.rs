//! Generated household populations.

use crate::sampler::HouseholdSampler;
use crate::tables::{IncomeTable, Race, TableError};
use eqimpact_stats::SimRng;

/// One simulated household: a fixed race and a per-year resampled income.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Household {
    /// Stable index in the population.
    pub id: usize,
    /// Race, sampled once at generation (the protected attribute the
    /// lender must not score on).
    pub race: Race,
    /// Current annual income in $K (`z_i(k)` of the paper), refreshed by
    /// [`Population::resample_incomes`].
    pub income: f64,
}

impl Household {
    /// The paper's visible income code `1_{z ≥ 15}` (eq. before (10)): the
    /// lender sees only whether income exceeds $15K.
    pub fn income_code(&self) -> f64 {
        if self.income >= 15.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// A generated population of households.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    households: Vec<Household>,
}

impl Population {
    /// Generates `n` households: races from the 2002 shares, incomes from
    /// the given starting year.
    pub fn generate(
        table: &IncomeTable,
        n: usize,
        start_year: u32,
        rng: &mut SimRng,
    ) -> Result<Self, TableError> {
        let sampler = HouseholdSampler::new(table);
        let mut households = Vec::with_capacity(n);
        for id in 0..n {
            let race = sampler.sample_race(rng);
            let income = sampler.sample_income(start_year, race, rng)?;
            households.push(Household { id, race, income });
        }
        Ok(Population { households })
    }

    /// Wraps an existing household list (e.g. reassembled from row
    /// shards). Households keep whatever ids they carry.
    pub fn from_households(households: Vec<Household>) -> Self {
        Population { households }
    }

    /// Decomposes the population into its household list (e.g. to
    /// partition it into row shards).
    pub fn into_households(self) -> Vec<Household> {
        self.households
    }

    /// Number of households.
    pub fn len(&self) -> usize {
        self.households.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.households.is_empty()
    }

    /// The households.
    pub fn households(&self) -> &[Household] {
        &self.households
    }

    /// Mutable access for the simulation driver.
    pub fn households_mut(&mut self) -> &mut [Household] {
        &mut self.households
    }

    /// Resamples every household's income for a new year, holding races
    /// fixed — the paper's "following the income distribution of the year
    /// 2002 + k and race s, we sample the income z_i(k)".
    pub fn resample_incomes(
        &mut self,
        table: &IncomeTable,
        year: u32,
        rng: &mut SimRng,
    ) -> Result<(), TableError> {
        let sampler = HouseholdSampler::new(table);
        for h in &mut self.households {
            h.income = sampler.sample_income(year, h.race, rng)?;
        }
        Ok(())
    }

    /// Indices of households of a given race (`N_s` of the paper).
    pub fn indices_of_race(&self, race: Race) -> Vec<usize> {
        self.households
            .iter()
            .filter(|h| h.race == race)
            .map(|h| h.id)
            .collect()
    }

    /// Count per race in `Race::ALL` order.
    pub fn race_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for h in &self.households {
            counts[h.race.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_respects_size_and_ids() {
        let table = IncomeTable::embedded();
        let mut rng = SimRng::new(1);
        let pop = Population::generate(&table, 500, 2002, &mut rng).unwrap();
        assert_eq!(pop.len(), 500);
        assert!(!pop.is_empty());
        for (i, h) in pop.households().iter().enumerate() {
            assert_eq!(h.id, i);
            assert!(h.income > 0.0);
        }
    }

    #[test]
    fn race_counts_roughly_match_shares() {
        let table = IncomeTable::embedded();
        let mut rng = SimRng::new(2);
        let pop = Population::generate(&table, 10_000, 2002, &mut rng).unwrap();
        let counts = pop.race_counts();
        assert!((counts[1] as f64 / 10_000.0 - 0.8406).abs() < 0.02);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
        // Index lists partition consistently.
        let total: usize = Race::ALL
            .iter()
            .map(|&r| pop.indices_of_race(r).len())
            .sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn income_code_threshold() {
        let h = Household {
            id: 0,
            race: Race::White,
            income: 14.9,
        };
        assert_eq!(h.income_code(), 0.0);
        let h2 = Household { income: 15.0, ..h };
        assert_eq!(h2.income_code(), 1.0);
    }

    #[test]
    fn resampling_changes_incomes_but_not_races() {
        let table = IncomeTable::embedded();
        let mut rng = SimRng::new(3);
        let mut pop = Population::generate(&table, 200, 2002, &mut rng).unwrap();
        let races_before: Vec<Race> = pop.households().iter().map(|h| h.race).collect();
        let incomes_before: Vec<f64> = pop.households().iter().map(|h| h.income).collect();
        pop.resample_incomes(&table, 2010, &mut rng).unwrap();
        let races_after: Vec<Race> = pop.households().iter().map(|h| h.race).collect();
        let incomes_after: Vec<f64> = pop.households().iter().map(|h| h.income).collect();
        assert_eq!(races_before, races_after);
        let changed = incomes_before
            .iter()
            .zip(&incomes_after)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 190, "only {changed} incomes changed");
    }

    #[test]
    fn bad_year_propagates() {
        let table = IncomeTable::embedded();
        let mut rng = SimRng::new(4);
        assert!(Population::generate(&table, 10, 2050, &mut rng).is_err());
        let mut pop = Population::generate(&table, 10, 2002, &mut rng).unwrap();
        assert!(pop.resample_incomes(&table, 1999, &mut rng).is_err());
    }
}
