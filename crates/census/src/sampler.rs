//! Sampling households from the embedded tables.

use crate::brackets::BRACKETS;
use crate::tables::{IncomeTable, Race, TableError, RACE_SHARE_2002};
use eqimpact_stats::{Categorical, SimRng};

/// Samples races and incomes following the paper's protocol: races from
/// the 2002 share vector once at time 0, incomes resampled per year from
/// the (year, race) bracket distribution, uniform within the bracket.
#[derive(Debug, Clone)]
pub struct HouseholdSampler<'a> {
    table: &'a IncomeTable,
    race_dist: Categorical,
}

impl<'a> HouseholdSampler<'a> {
    /// Creates a sampler over a table.
    pub fn new(table: &'a IncomeTable) -> Self {
        HouseholdSampler {
            table,
            race_dist: Categorical::new(&RACE_SHARE_2002),
        }
    }

    /// Samples a race from the 2002 distribution `[0.1235, 0.8406, 0.0359]`.
    pub fn sample_race(&self, rng: &mut SimRng) -> Race {
        Race::ALL[self.race_dist.sample_index(rng)]
    }

    /// Samples an income ($K) for a `(year, race)` pair: bracket by table
    /// share, then uniform within the bracket.
    pub fn sample_income(
        &self,
        year: u32,
        race: Race,
        rng: &mut SimRng,
    ) -> Result<f64, TableError> {
        let shares = self.table.shares(year, race)?;
        let b = rng.weighted_index(shares);
        let bracket = &BRACKETS[b];
        Ok(rng.uniform_in(bracket.lo, bracket.hi))
    }

    /// The table backing this sampler.
    pub fn table(&self) -> &IncomeTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brackets::bracket_of;

    #[test]
    fn race_frequencies_match_2002_shares() {
        let table = IncomeTable::embedded();
        let s = HouseholdSampler::new(&table);
        let mut rng = SimRng::new(1);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[s.sample_race(&mut rng).index()] += 1;
        }
        for (i, &expected) in RACE_SHARE_2002.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - expected).abs() < 0.005,
                "race {i}: freq {freq} vs {expected}"
            );
        }
    }

    #[test]
    fn income_samples_respect_bracket_shares() {
        let table = IncomeTable::embedded();
        let s = HouseholdSampler::new(&table);
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let mut counts = [0usize; crate::brackets::BRACKET_COUNT];
        for _ in 0..n {
            let income = s.sample_income(2020, Race::Asian, &mut rng).unwrap();
            counts[bracket_of(income)] += 1;
        }
        let shares = table.shares(2020, Race::Asian).unwrap();
        for (b, &expected) in shares.iter().enumerate() {
            let freq = counts[b] as f64 / n as f64;
            assert!(
                (freq - expected).abs() < 0.01,
                "bracket {b}: freq {freq} vs share {expected}"
            );
        }
    }

    #[test]
    fn incomes_positive_and_below_cap() {
        let table = IncomeTable::embedded();
        let s = HouseholdSampler::new(&table);
        let mut rng = SimRng::new(3);
        for year in [2002, 2010, 2020] {
            for race in Race::ALL {
                for _ in 0..100 {
                    let income = s.sample_income(year, race, &mut rng).unwrap();
                    assert!((1.0..500.0).contains(&income));
                }
            }
        }
    }

    #[test]
    fn invalid_year_propagates() {
        let table = IncomeTable::embedded();
        let s = HouseholdSampler::new(&table);
        let mut rng = SimRng::new(4);
        assert!(s.sample_income(1990, Race::White, &mut rng).is_err());
    }

    #[test]
    fn race_income_gap_visible_in_samples() {
        let table = IncomeTable::embedded();
        let s = HouseholdSampler::new(&table);
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean = |race: Race, rng: &mut SimRng| -> f64 {
            (0..n)
                .map(|_| s.sample_income(2020, race, rng).unwrap())
                .sum::<f64>()
                / n as f64
        };
        let black = mean(Race::Black, &mut rng);
        let white = mean(Race::White, &mut rng);
        let asian = mean(Race::Asian, &mut rng);
        assert!(black < white && white < asian, "{black} {white} {asian}");
    }
}
