//! Property-based tests for the census substrate.

use eqimpact_census::brackets::{bracket_of, BRACKETS};
use eqimpact_census::{HouseholdSampler, IncomeTable, Population, Race, FIRST_YEAR, LAST_YEAR};
use eqimpact_stats::SimRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_income_lands_in_its_bracket(income in 1.0f64..499.0) {
        let b = bracket_of(income);
        prop_assert!(BRACKETS[b].contains(income));
    }

    #[test]
    fn shares_normalized_for_every_year(year in FIRST_YEAR..=LAST_YEAR) {
        let t = IncomeTable::embedded();
        for race in Race::ALL {
            let shares = t.shares(year, race).unwrap();
            let total: f64 = shares.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(shares.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn share_at_least_is_monotone(year in FIRST_YEAR..=LAST_YEAR, a in 0.0f64..400.0, b in 0.0f64..400.0) {
        let t = IncomeTable::embedded();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for race in Race::ALL {
            let s_lo = t.share_at_least(year, race, lo).unwrap();
            let s_hi = t.share_at_least(year, race, hi).unwrap();
            prop_assert!(s_lo >= s_hi - 1e-12);
        }
    }

    #[test]
    fn sampled_incomes_in_valid_range(seed in 0u64..200, year in FIRST_YEAR..=LAST_YEAR) {
        let t = IncomeTable::embedded();
        let s = HouseholdSampler::new(&t);
        let mut rng = SimRng::new(seed);
        for race in Race::ALL {
            let income = s.sample_income(year, race, &mut rng).unwrap();
            prop_assert!((1.0..500.0).contains(&income));
        }
    }

    #[test]
    fn population_generation_is_deterministic(seed in 0u64..100, n in 1usize..100) {
        let t = IncomeTable::embedded();
        let a = Population::generate(&t, n, 2002, &mut SimRng::new(seed)).unwrap();
        let b = Population::generate(&t, n, 2002, &mut SimRng::new(seed)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn race_partition_is_exact(seed in 0u64..50, n in 1usize..200) {
        let t = IncomeTable::embedded();
        let pop = Population::generate(&t, n, 2002, &mut SimRng::new(seed)).unwrap();
        let counts = pop.race_counts();
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        let by_index: usize = Race::ALL.iter().map(|&r| pop.indices_of_race(r).len()).sum();
        prop_assert_eq!(by_index, n);
    }

    #[test]
    fn income_code_threshold_respected(seed in 0u64..100) {
        let t = IncomeTable::embedded();
        let pop = Population::generate(&t, 50, 2002, &mut SimRng::new(seed)).unwrap();
        for h in pop.households() {
            prop_assert_eq!(h.income_code(), if h.income >= 15.0 { 1.0 } else { 0.0 });
        }
    }
}
