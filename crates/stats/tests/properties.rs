//! Property-based tests for the statistics substrate.

use eqimpact_stats::codec;
use eqimpact_stats::converge::{total_variation_discrete, wasserstein1};
use eqimpact_stats::describe::{quantile, Summary};
use eqimpact_stats::dist::{std_normal_cdf, std_normal_quantile};
use eqimpact_stats::hist::Histogram1D;
use eqimpact_stats::timeseries::cesaro_trajectory;
use eqimpact_stats::SimRng;
use proptest::prelude::*;

fn finite_sample(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 1..=max_len)
}

proptest! {
    #[test]
    fn normal_cdf_monotone(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-15);
    }

    #[test]
    fn normal_quantile_roundtrip(p in 0.0001f64..0.9999) {
        let x = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_symmetry(x in -6.0f64..6.0) {
        prop_assert!((std_normal_cdf(x) + std_normal_cdf(-x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_within_bounds(sample in finite_sample(50)) {
        let s = Summary::from_slice(&sample);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance_population() >= -1e-9);
    }

    #[test]
    fn summary_merge_associative(a in finite_sample(20), b in finite_sample(20), c in finite_sample(20)) {
        let mut left = Summary::from_slice(&a);
        left.merge(&Summary::from_slice(&b));
        left.merge(&Summary::from_slice(&c));
        let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let whole = Summary::from_slice(&all);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.variance_population() - whole.variance_population()).abs()
            < 1e-6 * whole.variance_population().max(1.0));
    }

    #[test]
    fn quantile_monotone(sample in finite_sample(30), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&sample, lo) <= quantile(&sample, hi) + 1e-9);
    }

    #[test]
    fn cesaro_stays_within_range(sample in finite_sample(60)) {
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in cesaro_trajectory(&sample) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn histogram_conserves_mass(sample in finite_sample(80)) {
        let h = Histogram1D::from_samples(-1000.0, 1000.0, 16, &sample);
        prop_assert_eq!(h.total() as usize, sample.len());
        let mass: f64 = h.masses().iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tv_is_a_metric_on_simplex(raw in prop::collection::vec(0.01f64..1.0, 3..6)) {
        let total: f64 = raw.iter().sum();
        let p: Vec<f64> = raw.iter().map(|x| x / total).collect();
        let q: Vec<f64> = {
            let mut r = p.clone();
            r.reverse();
            r
        };
        let d_pq = total_variation_discrete(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_pq));
        prop_assert!((total_variation_discrete(&p, &p)).abs() < 1e-15);
        prop_assert!((d_pq - total_variation_discrete(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn wasserstein_shift_invariance(sample in finite_sample(40), shift in -10.0f64..10.0) {
        let shifted: Vec<f64> = sample.iter().map(|x| x + shift).collect();
        let w = wasserstein1(&sample, &shifted);
        prop_assert!((w - shift.abs()).abs() < 1e-6);
    }

    #[test]
    fn rng_split_reproducible(seed in 0u64..u64::MAX, label in 0u64..u64::MAX) {
        let a = SimRng::new(seed);
        let b = SimRng::new(seed);
        let mut ca = a.split(label);
        let mut cb = b.split(label);
        for _ in 0..5 {
            prop_assert_eq!(ca.uniform(), cb.uniform());
        }
    }

    #[test]
    fn categorical_probs_normalized(raw in prop::collection::vec(0.0f64..10.0, 1..8)) {
        prop_assume!(raw.iter().sum::<f64>() > 0.0);
        let c = eqimpact_stats::Categorical::new(&raw);
        let total: f64 = c.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zigzag_roundtrips_any_i64(v in i64::MIN..i64::MAX) {
        prop_assert_eq!(codec::zigzag_decode(codec::zigzag_encode(v)), v);
    }

    #[test]
    fn zigzag_encodes_small_magnitudes_small(v in -1_000_000i64..1_000_000) {
        // |v| <= 2^20 must fit the low 21 bits after zigzag.
        prop_assert!(codec::zigzag_encode(v) <= (1 << 21));
    }

    #[test]
    fn varint_stream_roundtrips(values in prop::collection::vec(0u64..=u64::MAX, 0..40)) {
        let mut buf = Vec::new();
        for &v in &values {
            codec::write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(codec::read_varint(&buf, &mut pos), Some(v));
        }
        prop_assert_eq!(pos, buf.len());
        // And any strict prefix that cuts the final varint fails cleanly.
        if let Some(&last) = values.last() {
            if last >= 0x80 {
                let mut pos = 0;
                let mut truncated: Option<u64> = None;
                let cut = &buf[..buf.len() - 1];
                for _ in 0..values.len() {
                    truncated = codec::read_varint(cut, &mut pos);
                    if truncated.is_none() {
                        break;
                    }
                }
                prop_assert_eq!(truncated, None);
            }
        }
    }

    #[test]
    fn crc32_detects_any_single_bit_flip(
        payload in prop::collection::vec(0u8..=255, 1..64),
        flip in 0usize..64 * 8,
    ) {
        let bit = flip % (payload.len() * 8);
        let mut corrupted = payload.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(codec::crc32(&payload), codec::crc32(&corrupted));
    }
}
