//! Time-series utilities centred on Cesàro (running time) averages.
//!
//! Equal impact (Def. 3 of the paper) is a statement about the limit of
//! `(1/(k+1)) Σ_{j=0}^k y_i(j)`. [`CesaroAverage`] maintains exactly that
//! quantity online; [`ConvergenceDetector`] decides whether a tail of the
//! sequence has settled, and [`Ewma`] provides the exponentially weighted
//! alternative used by some filters.

/// Online Cesàro average `(1/(k+1)) Σ_{j=0}^k y(j)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CesaroAverage {
    sum: f64,
    count: u64,
}

impl CesaroAverage {
    /// Creates an empty average.
    pub fn new() -> Self {
        CesaroAverage { sum: 0.0, count: 0 }
    }

    /// Adds the observation for the next time step and returns the updated
    /// average.
    pub fn push(&mut self, y: f64) -> f64 {
        self.sum += y;
        self.count += 1;
        self.value()
    }

    /// Current average; `NaN` before any observation.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations so far (`k + 1` in the paper's indexing).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// The full Cesàro-average trajectory of a sequence.
///
/// `cesaro_trajectory(&y)[k] = (1/(k+1)) Σ_{j<=k} y[j]` — the exact series
/// plotted in the paper's Figs. 3–5.
pub fn cesaro_trajectory(values: &[f64]) -> Vec<f64> {
    let mut avg = CesaroAverage::new();
    values.iter().map(|&y| avg.push(y)).collect()
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics for `alpha` outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "Ewma: alpha = {alpha} outside (0,1]"
        );
        Ewma { alpha, value: None }
    }

    /// Adds an observation and returns the updated value.
    pub fn push(&mut self, y: f64) -> f64 {
        let v = match self.value {
            None => y,
            Some(prev) => prev + self.alpha * (y - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current value, if any observation has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Overwrites the running value — the checkpoint-restore hook.
    /// `None` resets to the never-observed state.
    pub fn restore(&mut self, value: Option<f64>) {
        self.value = value;
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Decides whether the tail of a sequence has converged: the last `window`
/// values all lie within `tolerance` of their mean.
///
/// Returns `false` when fewer than `window` values are available.
pub fn has_settled(values: &[f64], window: usize, tolerance: f64) -> bool {
    if values.len() < window || window == 0 {
        return false;
    }
    let tail = &values[values.len() - window..];
    let m = tail.iter().sum::<f64>() / window as f64;
    tail.iter().all(|&v| (v - m).abs() <= tolerance)
}

/// Online convergence detector over a sliding window.
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    window: usize,
    tolerance: f64,
    buffer: std::collections::VecDeque<f64>,
}

impl ConvergenceDetector {
    /// Creates a detector with the given window length and tolerance.
    ///
    /// # Panics
    /// Panics when `window == 0` or `tolerance < 0`.
    pub fn new(window: usize, tolerance: f64) -> Self {
        assert!(window > 0, "ConvergenceDetector: zero window");
        assert!(tolerance >= 0.0, "ConvergenceDetector: negative tolerance");
        ConvergenceDetector {
            window,
            tolerance,
            buffer: std::collections::VecDeque::with_capacity(window),
        }
    }

    /// Feeds the next value; returns `true` once the window has settled.
    pub fn push(&mut self, value: f64) -> bool {
        if self.buffer.len() == self.window {
            self.buffer.pop_front();
        }
        self.buffer.push_back(value);
        self.is_converged()
    }

    /// Whether the current window is full and settled.
    pub fn is_converged(&self) -> bool {
        if self.buffer.len() < self.window {
            return false;
        }
        let m = self.buffer.iter().sum::<f64>() / self.window as f64;
        self.buffer.iter().all(|&v| (v - m).abs() <= self.tolerance)
    }

    /// Mean of the current window (`NaN` when empty) — the estimate of the
    /// limit `r_i` from Def. 3.
    pub fn window_mean(&self) -> f64 {
        if self.buffer.is_empty() {
            f64::NAN
        } else {
            self.buffer.iter().sum::<f64>() / self.buffer.len() as f64
        }
    }
}

/// Estimates the limit of a Cesàro-average sequence as the mean of its last
/// `tail_fraction` portion (e.g. 0.2 = last fifth).
///
/// # Panics
/// Panics for empty input or `tail_fraction` outside `(0, 1]`.
pub fn tail_mean(values: &[f64], tail_fraction: f64) -> f64 {
    assert!(!values.is_empty(), "tail_mean: empty input");
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 1.0,
        "tail_mean: fraction outside (0,1]"
    );
    let start = ((values.len() as f64) * (1.0 - tail_fraction)).floor() as usize;
    let tail = &values[start.min(values.len() - 1)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cesaro_of_constant_is_constant() {
        let mut c = CesaroAverage::new();
        for _ in 0..10 {
            assert_eq!(c.push(3.0), 3.0);
        }
        assert_eq!(c.count(), 10);
        assert_eq!(c.sum(), 30.0);
    }

    #[test]
    fn cesaro_empty_is_nan() {
        assert!(CesaroAverage::new().value().is_nan());
    }

    #[test]
    fn cesaro_trajectory_matches_definition() {
        let y = [1.0, 0.0, 1.0, 1.0];
        let t = cesaro_trajectory(&y);
        assert_eq!(t, vec![1.0, 0.5, 2.0 / 3.0, 0.75]);
    }

    #[test]
    fn cesaro_of_alternating_converges_to_half() {
        let y: Vec<f64> = (0..10_000).map(|k| (k % 2) as f64).collect();
        let t = cesaro_trajectory(&y);
        assert!((t.last().unwrap() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn ewma_behaviour() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(4.0), 4.0);
        assert_eq!(e.push(0.0), 2.0);
        assert_eq!(e.push(2.0), 2.0);
        assert_eq!(e.alpha(), 0.5);
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn ewma_restore_round_trips() {
        let mut e = Ewma::new(0.5);
        e.push(4.0);
        e.push(0.0);
        let saved = e.value();
        let mut fresh = Ewma::new(0.5);
        fresh.restore(saved);
        assert_eq!(fresh.value(), Some(2.0));
        assert_eq!(fresh.push(2.0), e.push(2.0), "restored EWMA tracks");
        fresh.restore(None);
        assert_eq!(fresh.value(), None, "None resets to unobserved");
    }

    #[test]
    fn has_settled_detects_flat_tail() {
        let mut v: Vec<f64> = (0..50).map(|i| 1.0 / (i + 1) as f64).collect();
        assert!(!has_settled(&v, 10, 1e-6));
        v.extend(std::iter::repeat_n(0.25, 20));
        assert!(has_settled(&v, 10, 1e-9));
        assert!(!has_settled(&v[..5], 10, 1.0));
        assert!(!has_settled(&v, 0, 1.0));
    }

    #[test]
    fn detector_online() {
        let mut d = ConvergenceDetector::new(5, 0.01);
        for i in 0..4 {
            assert!(!d.push(2.0 + i as f64 * 0.001));
        }
        assert!(d.push(2.0));
        assert!(d.is_converged());
        assert!((d.window_mean() - 2.0).abs() < 0.01);
        // A jump breaks convergence.
        assert!(!d.push(5.0));
    }

    #[test]
    fn detector_empty_window_mean_nan() {
        let d = ConvergenceDetector::new(3, 0.1);
        assert!(d.window_mean().is_nan());
    }

    #[test]
    fn tail_mean_takes_last_fraction() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // Last 20% of 10 values = indices 8, 9.
        assert!((tail_mean(&v, 0.2) - 8.5).abs() < 1e-12);
        assert!((tail_mean(&v, 1.0) - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn tail_mean_rejects_empty() {
        tail_mean(&[], 0.5);
    }
}
