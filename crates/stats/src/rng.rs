//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component in the workspace takes a [`SimRng`]; trials
//! derive their streams by [`SimRng::split`] so that (seed, trial, user)
//! fully determines every sample, independent of scheduling order.

/// A seeded random stream for simulations.
///
/// Self-contained xoshiro256++ generator (seeded through a SplitMix64
/// expansion, so any `u64` seed gives a well-mixed state) with
/// deterministic *splitting*: a child stream derived from a parent seed
/// and a label is statistically independent of its siblings but fully
/// reproducible.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, per the
        // xoshiro authors' recommendation; the output can never be all
        // zeros because SplitMix64 is a bijection evaluated at four
        // distinct points.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            seed,
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit sample (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream for `label`.
    ///
    /// Uses SplitMix64-style mixing of (seed, label) so that different
    /// labels give uncorrelated child seeds and `split` is insensitive to
    /// how much the parent has already been consumed.
    pub fn split(&self, label: u64) -> SimRng {
        let child_seed = mix(self.seed, label);
        SimRng::new(child_seed)
    }

    /// Advances this stream by 2^128 steps in place (the xoshiro256++
    /// jump function).
    ///
    /// Partitions one stream into non-overlapping sub-sequences of 2^128
    /// samples each: `n` successive jumps yield `n` generators that can be
    /// consumed concurrently without ever drawing the same sample. The
    /// construction `seed` is unchanged, so label-based [`Self::split`]
    /// derivation is unaffected by jumping.
    pub fn jump(&mut self) {
        // Official xoshiro256++ jump polynomial (Blackman & Vigna).
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(&self.state) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.state = acc;
    }

    /// Splits this stream into `n` parallel streams by successive
    /// [`Self::jump`]s: stream `i` starts 2^128 · i samples ahead of
    /// `self`, so the streams never overlap. Each child is relabelled in
    /// a salted label domain, so the children's [`Self::split`] trees are
    /// disjoint both from each other and from the parent's ordinary
    /// `split(i)` children.
    ///
    /// The parent is unaffected (jumps happen on an internal clone).
    pub fn split_streams(&self, n: usize) -> Vec<SimRng> {
        // Distinct label domain: without the salt, stream i's seed would
        // equal `self.split(i)`'s and the two trees would alias.
        const STREAM_SALT: u64 = 0x7c15_9e3d_4a8b_02f1;
        let mut base = self.clone();
        (0..n)
            .map(|i| {
                let stream = SimRng {
                    seed: mix(mix(self.seed, STREAM_SALT), i as u64),
                    state: base.state,
                };
                base.jump();
                stream
            })
            .collect()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 mantissa bits, as in the standard 2^-53 construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "uniform_in: invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Bernoulli sample with success probability `p` (clamped to [0, 1]).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        // Multiply-shift range reduction (Lemire); the bias for any n that
        // fits in a usize is far below the resolution of the tests.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample (Box-Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Box-Muller transform; u1 is drawn from (0, 1] so the log
        // argument is bounded away from 0.
        let u1 = ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples an index from a finite distribution of non-negative weights.
    ///
    /// Weights need not be normalized.
    ///
    /// # Panics
    /// Panics if weights are empty, contain negatives/non-finite values, or
    /// sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weighted_index: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weighted_index: zero total weight");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: return the last positively weighted index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("total > 0 implies a positive weight")
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer combining a seed with a stream label.
fn mix(seed: u64, label: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(label)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_is_independent_of_consumption() {
        let mut a = SimRng::new(7);
        let b = SimRng::new(7);
        // Consume the parent before splitting; the children must agree.
        for _ in 0..10 {
            a.uniform();
        }
        let mut ca = a.split(3);
        let mut cb = b.split(3);
        for _ in 0..20 {
            assert_eq!(ca.uniform(), cb.uniform());
        }
    }

    #[test]
    fn split_labels_give_distinct_streams() {
        let root = SimRng::new(9);
        let mut c1 = root.split(1);
        let mut c2 = root.split(2);
        let equal = (0..32).filter(|_| c1.uniform() == c2.uniform()).count();
        assert!(equal < 4);
    }

    #[test]
    fn jump_is_deterministic_and_leaves_seed_alone() {
        let mut a = SimRng::new(21);
        let mut b = SimRng::new(21);
        a.jump();
        b.jump();
        assert_eq!(a.seed(), 21);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // A jumped stream departs from the unjumped one.
        let mut c = SimRng::new(21);
        let equal = (0..32).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(equal < 4);
        // Label-splitting is seed-based, hence jump-insensitive.
        let mut jumped = SimRng::new(33);
        jumped.jump();
        let mut x = jumped.split(5);
        let mut y = SimRng::new(33).split(5);
        for _ in 0..20 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn split_streams_are_disjoint_prefixes_of_the_jump_sequence() {
        let root = SimRng::new(99);
        let streams = root.split_streams(3);
        assert_eq!(streams.len(), 3);
        // Stream 0 continues the parent state verbatim.
        let mut s0 = streams[0].clone();
        let mut parent = SimRng::new(99);
        for _ in 0..20 {
            assert_eq!(s0.next_u64(), parent.next_u64());
        }
        // Stream 1 equals the parent jumped once.
        let mut s1 = streams[1].clone();
        let mut jumped = SimRng::new(99);
        jumped.jump();
        for _ in 0..20 {
            assert_eq!(s1.next_u64(), jumped.next_u64());
        }
        // Sibling streams decorrelate.
        let mut a = streams[1].clone();
        let mut b = streams[2].clone();
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
        assert!(root.split_streams(0).is_empty());
        // The children's split trees do not alias the parent's ordinary
        // label-splits (salted label domain).
        let mut via_stream = streams[1].split(0);
        let mut via_split = root.split(1).split(0);
        let equal = (0..32)
            .filter(|_| via_stream.next_u64() == via_split.next_u64())
            .count();
        assert!(equal < 4);
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = SimRng::new(0);
        for _ in 0..1000 {
            let x = r.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn uniform_in_rejects_bad_range() {
        SimRng::new(0).uniform_in(1.0, 1.0);
    }

    #[test]
    fn bernoulli_frequencies() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
        // Degenerate cases.
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-3.0));
        assert!(r.bernoulli(7.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn weighted_index_frequencies() {
        let mut r = SimRng::new(13);
        let weights = [1.0, 3.0, 0.0, 6.0];
        let n = 30_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[2], 0);
        let f1 = counts[1] as f64 / n as f64;
        let f3 = counts[3] as f64 / n as f64;
        assert!((f1 - 0.3).abs() < 0.02);
        assert!((f3 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn weighted_index_rejects_zero_total() {
        SimRng::new(0).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::new(17);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        assert_ne!(v, (0..20).collect::<Vec<u32>>()); // overwhelming odds
    }

    #[test]
    fn index_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..100 {
            assert!(r.index(7) < 7);
        }
    }
}
