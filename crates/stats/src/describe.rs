//! Descriptive statistics.

/// A one-pass summary of a sample: count, mean, variance, extremes.
///
/// Uses Welford's online algorithm, so it is numerically stable and can be
/// updated incrementally while a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `NaN` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (`/ n`); `NaN` if empty.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`/ (n - 1)`); `NaN` for fewer than two points.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation; `NaN` for fewer than two points.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population standard deviation; `NaN` if empty.
    pub fn std_dev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Minimum observation; `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Sample mean of a slice; `NaN` when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator); `NaN` for < 2 points.
pub fn std_dev(values: &[f64]) -> f64 {
    Summary::from_slice(values).std_dev()
}

/// The `p`-quantile of a sample using linear interpolation (type-7, the
/// R/numpy default).
///
/// # Panics
/// Panics for empty input, NaN values, or `p` outside `[0, 1]`.
pub fn quantile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "quantile: empty sample");
    assert!((0.0..=1.0).contains(&p), "quantile: p outside [0,1]");
    let mut sorted = values.to_vec();
    assert!(sorted.iter().all(|x| !x.is_nan()), "quantile: NaN sample");
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median shortcut.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Pearson correlation of two equal-length samples; `NaN` when undefined
/// (fewer than two points or zero variance).
///
/// # Panics
/// Panics on length mismatch.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation: length mismatch");
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-14);
        assert!((s.variance_population() - 4.0).abs() < 1e-14);
        assert!((s.std_dev_population() - 2.0).abs() < 1e-14);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan());
        assert_eq!(s.variance_population(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_slice(&data);
        let mut a = Summary::from_slice(&data[..37]);
        let b = Summary::from_slice(&data[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-15);
        assert!((median(&[5.0, 1.0, 3.0]) - 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }

    #[test]
    fn correlation_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &z) + 1.0).abs() < 1e-12);
        assert!(correlation(&x, &[1.0, 1.0, 1.0, 1.0]).is_nan());
    }

    #[test]
    fn mean_and_std_helpers() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-15);
        assert!(mean(&[]).is_nan());
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
