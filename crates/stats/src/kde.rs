//! Gaussian kernel density estimation.
//!
//! Used to render smooth versions of the Fig. 5 density shading and to
//! inspect invariant-measure estimates.

use crate::dist::std_normal_pdf;

/// A Gaussian kernel density estimate over a fixed sample.
#[derive(Debug, Clone)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Builds a KDE with explicit bandwidth.
    ///
    /// # Panics
    /// Panics for empty samples, NaN values, or non-positive bandwidth.
    pub fn with_bandwidth(samples: &[f64], bandwidth: f64) -> Self {
        assert!(!samples.is_empty(), "Kde: empty sample");
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "Kde: bad bandwidth {bandwidth}"
        );
        assert!(samples.iter().all(|x| !x.is_nan()), "Kde: NaN sample");
        Kde {
            samples: samples.to_vec(),
            bandwidth,
        }
    }

    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9 min(σ, IQR/1.34) n^(-1/5)` (floored at a small positive value
    /// for degenerate samples).
    pub fn silverman(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "Kde: empty sample");
        let sd = crate::describe::std_dev(samples);
        let iqr = if samples.len() >= 2 {
            crate::describe::quantile(samples, 0.75) - crate::describe::quantile(samples, 0.25)
        } else {
            0.0
        };
        let spread = if sd.is_nan() || sd == 0.0 {
            (iqr / 1.34).max(1e-9)
        } else if iqr > 0.0 {
            sd.min(iqr / 1.34)
        } else {
            sd
        };
        let bw = (0.9 * spread * (samples.len() as f64).powf(-0.2)).max(1e-9);
        Kde::with_bandwidth(samples, bw)
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        self.samples
            .iter()
            .map(|&s| std_normal_pdf((x - s) / h))
            .sum::<f64>()
            / (self.samples.len() as f64 * h)
    }

    /// Density evaluated on an equally spaced grid of `n` points over
    /// `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `n < 2` or `lo >= hi`.
    pub fn grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "Kde::grid: need at least 2 points");
        assert!(lo < hi, "Kde::grid: invalid range");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.density(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn density_integrates_to_one() {
        let mut rng = SimRng::new(1);
        let samples: Vec<f64> = (0..500).map(|_| rng.standard_normal()).collect();
        let kde = Kde::silverman(&samples);
        // Trapezoid integration over a wide range.
        let grid = kde.grid(-6.0, 6.0, 1201);
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.windows(2).map(|w| 0.5 * (w[0].1 + w[1].1) * dx).sum();
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn density_peaks_near_mode() {
        let samples = [0.0, 0.1, -0.1, 0.05, -0.05, 3.0];
        let kde = Kde::with_bandwidth(&samples, 0.2);
        assert!(kde.density(0.0) > kde.density(1.5));
        assert!(kde.density(3.0) > kde.density(1.5));
        assert!(kde.density(0.0) > kde.density(3.0));
    }

    #[test]
    fn silverman_bandwidth_positive_even_for_constant_sample() {
        let kde = Kde::silverman(&[2.0, 2.0, 2.0]);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(2.0).is_finite());
    }

    #[test]
    fn grid_is_monotone_in_x() {
        let kde = Kde::with_bandwidth(&[0.0], 1.0);
        let g = kde.grid(-1.0, 1.0, 5);
        assert_eq!(g.len(), 5);
        assert!(g.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[4].0, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        Kde::silverman(&[]);
    }

    #[test]
    #[should_panic(expected = "bad bandwidth")]
    fn rejects_bad_bandwidth() {
        Kde::with_bandwidth(&[1.0], 0.0);
    }
}
