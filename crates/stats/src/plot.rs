//! Terminal line charts for time series — the harness's Fig. 3/4 renderer.

/// One named series of a chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The values, one per x position.
    pub values: Vec<f64>,
    /// The glyph used for this series' points.
    pub glyph: char,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>, glyph: char) -> Self {
        Series {
            label: label.into(),
            values,
            glyph,
        }
    }
}

/// A fixed-size ASCII line chart.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<Series>,
}

impl AsciiChart {
    /// Creates a chart canvas.
    ///
    /// # Panics
    /// Panics when `width < 2` or `height < 2`.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "AsciiChart: canvas too small");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a series (chainable).
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart with a y-axis scale and a legend line.
    ///
    /// Non-finite values are skipped. Returns a placeholder message when no
    /// finite data exists.
    pub fn render(&self) -> String {
        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            return "(no finite data)".to_string();
        }
        let mut lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if (hi - lo).abs() < 1e-12 {
            // Flat data: open a symmetric window so the line sits mid-chart.
            lo -= 0.5;
            hi += 0.5;
        }

        let mut canvas = vec![vec![' '; self.width]; self.height];
        let max_len = self
            .series
            .iter()
            .map(|s| s.values.len())
            .max()
            .unwrap_or(0);
        if max_len == 0 {
            return "(no finite data)".to_string();
        }

        for s in &self.series {
            for (i, &v) in s.values.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let x = if max_len == 1 {
                    0
                } else {
                    i * (self.width - 1) / (max_len - 1)
                };
                let t = (v - lo) / (hi - lo);
                let y = ((1.0 - t) * (self.height - 1) as f64).round() as usize;
                canvas[y.min(self.height - 1)][x.min(self.width - 1)] = s.glyph;
            }
        }

        let mut out = String::new();
        for (row_idx, row) in canvas.iter().enumerate() {
            let y_value = hi - (hi - lo) * row_idx as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{y_value:>9.4} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(self.width)));
        let legend: Vec<String> = self
            .series
            .iter()
            .map(|s| format!("{} {}", s.glyph, s.label))
            .collect();
        out.push_str(&format!("{:>10}{}\n", "", legend.join("   ")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_series() {
        let chart = AsciiChart::new(20, 6).series(Series::new(
            "ramp",
            (0..20).map(|i| i as f64).collect(),
            '*',
        ));
        let s = chart.render();
        assert!(s.contains('*'));
        assert!(s.contains("ramp"));
        // Height rows + axis + legend.
        assert_eq!(s.lines().count(), 8);
    }

    #[test]
    fn renders_multiple_series_with_distinct_glyphs() {
        let up: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let down: Vec<f64> = (0..10).map(|i| 9.0 - i as f64).collect();
        let s = AsciiChart::new(30, 8)
            .series(Series::new("up", up, 'u'))
            .series(Series::new("down", down, 'd'))
            .render();
        assert!(s.contains('u'));
        assert!(s.contains('d'));
        assert!(s.contains("u up"));
        assert!(s.contains("d down"));
    }

    #[test]
    fn highest_value_on_top_row() {
        let s = AsciiChart::new(10, 5)
            .series(Series::new("x", vec![0.0, 0.0, 10.0], '#'))
            .render();
        let first_data_row = s.lines().next().unwrap();
        assert!(first_data_row.contains('#'), "top row: {first_data_row}");
        assert!(first_data_row.contains("10.0000"));
    }

    #[test]
    fn flat_series_renders_mid_chart() {
        let s = AsciiChart::new(10, 5)
            .series(Series::new("flat", vec![2.0; 10], '-'))
            .render();
        let lines: Vec<&str> = s.lines().collect();
        // The flat line should be in the middle row (index 2 of 5).
        assert!(lines[2].contains('-'), "{s}");
    }

    #[test]
    fn non_finite_values_skipped() {
        let s = AsciiChart::new(10, 4)
            .series(Series::new("gaps", vec![1.0, f64::NAN, 2.0], 'o'))
            .render();
        assert!(s.contains('o'));
        let all_nan = AsciiChart::new(10, 4)
            .series(Series::new("none", vec![f64::NAN], 'o'))
            .render();
        assert_eq!(all_nan, "(no finite data)");
    }

    #[test]
    fn empty_chart_handled() {
        let s = AsciiChart::new(10, 4).render();
        assert_eq!(s, "(no finite data)");
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        AsciiChart::new(1, 5);
    }
}
