//! Minimal JSON value, writer and parser.
//!
//! The workspace writes its experiment artifacts as JSON and round-trips
//! loop telemetry through it; this module is the self-contained
//! serialization layer behind that (the build environment is offline, so
//! `serde`/`serde_json` are deliberately not dependencies).
//!
//! Numbers are `f64` throughout and are written with Rust's
//! shortest-roundtrip float formatting, so `parse(render(x)) == x` for
//! every finite value. Non-finite numbers render as `null`, matching
//! `serde_json`'s default.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // Strict `<`: `usize::MAX as f64` rounds up to 2^64, which is
            // out of range; everything representable below it is valid.
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The array as a vector of numbers, if every element is a number.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        // `{:?}` is shortest-roundtrip for f64.
                        let _ = write!(out, "{x:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth + 1)
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error position and message from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts; deeper input returns a
/// [`ParseError`] instead of overflowing the stack.
const MAX_DEPTH: usize = 256;

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        at,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", token as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH}")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{keyword}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        // Overflowing literals (1e999) parse to infinity in Rust; the
        // module invariant is finite-or-null, so reject them.
        .filter(|x| x.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = read_hex4(bytes, *pos + 1)
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        *pos += 4;
                        // Combine a high surrogate with a following
                        // \uDC00-\uDFFF escape (spec-conforming writers
                        // escape non-BMP characters this way); any lone
                        // surrogate decodes to the replacement char.
                        let code = if (0xD800..0xDC00).contains(&hex)
                            && bytes.get(*pos + 1..*pos + 3) == Some(&b"\\u"[..])
                        {
                            match read_hex4(bytes, *pos + 3) {
                                Some(low) if (0xDC00..0xE000).contains(&low) => {
                                    *pos += 6;
                                    0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                                }
                                _ => hex,
                            }
                        } else {
                            hex
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = &bytes[*pos..];
                let len = utf8_len(rest[0]);
                let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                    .map_err(|_| err(*pos, "invalid UTF-8"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn read_hex4(bytes: &[u8], start: usize) -> Option<u32> {
    bytes
        .get(start..start + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

num_to_json!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let doc = Json::obj([
            ("name", Json::Str("eqimpact \"loop\"".into())),
            ("steps", Json::Num(19.0)),
            ("rate", Json::Num(0.30000000000000004)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("x", Json::Num(-1.5e-8))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "text = {text}");
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 1e300] {
            let text = Json::Num(x).render();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), x, "x = {x}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": [1, 2.5], "b": "s", "n": 3}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64_vec().unwrap(), vec![1.0, 2.5]);
        assert_eq!(doc.get("b").unwrap().as_str().unwrap(), "s");
        assert_eq!(doc.get("n").unwrap().as_usize().unwrap(), 3);
        assert!(doc.get("missing").is_none());
        assert!(Json::Num(2.5).as_usize().is_none());
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(parse("[1, ").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").unwrap_err().message.contains("trailing"));
        // Overflowing literals are rejected, not admitted as infinity.
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_replace() {
        // \ud83d\ude00 is the escaped surrogate pair for U+1F600 (😀).
        let doc = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(doc.as_str().unwrap(), "\u{1F600}");
        let lone = parse("\"\\ud83d x\"").unwrap();
        assert_eq!(lone.as_str().unwrap(), "\u{FFFD} x");
        // Raw (unescaped) non-BMP character through the UTF-8 path.
        assert_eq!(parse("\"😀\"").unwrap().as_str().unwrap(), "\u{1F600}");
        // Escaped BMP char unaffected.
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str().unwrap(), "A");
    }

    #[test]
    fn as_usize_rejects_out_of_range() {
        // 2^64 is not a valid usize even though the inclusive f64 bound
        // would accept it.
        assert!(parse("18446744073709551616").unwrap().as_usize().is_none());
        assert!(parse("-1").unwrap().as_usize().is_none());
        assert_eq!(parse("4503599627370496").unwrap().as_usize(), Some(1 << 52));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        let e = parse(&bomb).unwrap_err();
        assert!(e.message.contains("nesting"), "message: {}", e.message);
        // At the limit itself, parsing still works.
        let ok = format!("{}0{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn to_json_impls() {
        assert_eq!(3usize.to_json(), Json::Num(3.0));
        assert_eq!(
            vec![1.0, 2.0].to_json().as_f64_vec().unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!([1.0f64; 3].to_json().as_arr().unwrap().len(), 3);
        assert_eq!((1.0, 2.0).to_json().as_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(Option::<f64>::None.to_json(), Json::Null);
        assert_eq!("x".to_json(), Json::Str("x".into()));
    }
}
