//! Probability and statistics substrate for the `eqimpact` workspace.
//!
//! Provides everything stochastic the closed-loop framework needs:
//!
//! * [`rng`] — deterministic, splittable random-number streams so every
//!   simulation is reproducible from a single seed;
//! * [`dist`] — the distributions the paper uses (Bernoulli via the normal
//!   CDF, categorical race sampling, bracket-uniform income sampling), with
//!   our own `erf`-based normal CDF and Acklam inverse;
//! * [`describe`] — means, variances, quantiles;
//! * [`timeseries`] — Cesàro (running time-average) sequences, the object
//!   equal impact (Def. 3) is about;
//! * [`hist`] — 1-D and 2-D histograms (Fig. 5's density panel);
//! * [`converge`] — Kolmogorov-Smirnov and total-variation diagnostics used
//!   to verify weak convergence to the invariant measure;
//! * [`kde`] — Gaussian kernel density estimates for smooth density plots;
//! * [`json`] — a self-contained JSON value/writer/parser, the workspace's
//!   serialization layer (the build is offline; no serde);
//! * [`codec`] — zigzag / varint / CRC-32 bit utilities shared with the
//!   binary trace store (`eqimpact-trace`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod codec;
pub mod converge;
pub mod describe;
pub mod dist;
pub mod hist;
pub mod json;
pub mod kde;
pub mod plot;
pub mod rng;
pub mod timeseries;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, bootstrap_stratified_ci, ConfidenceInterval};
pub use converge::{kolmogorov_smirnov, total_variation_histogram, wasserstein1};
pub use describe::Summary;
pub use dist::{Bernoulli, Categorical, Empirical, Normal, Uniform};
pub use hist::{Histogram1D, Histogram2D};
pub use json::{Json, ToJson};
pub use rng::SimRng;
pub use timeseries::CesaroAverage;
