//! Histograms: 1-D for marginal laws, 2-D for the (time x value) density of
//! the paper's Fig. 5.

/// A fixed-width 1-D histogram over `[lo, hi)` with values outside the
/// range clamped into the boundary bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram1D {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram1D {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `bins == 0`, `lo >= hi`, or bounds are non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram1D: zero bins");
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "Histogram1D: invalid range [{lo}, {hi})"
        );
        Histogram1D {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram directly from samples.
    pub fn from_samples(lo: f64, hi: f64, bins: usize, samples: &[f64]) -> Self {
        let mut h = Histogram1D::new(lo, hi, bins);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower range bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper range bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin index for a value (clamped to the boundary bins; NaN goes to
    /// bin 0 deterministically rather than poisoning the histogram).
    pub fn bin_of(&self, x: f64) -> usize {
        if x.is_nan() {
            return 0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / w).floor();
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(self.counts.len() - 1)
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Count in bin `b`.
    pub fn count(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Normalized bin masses (probabilities); all zeros when empty.
    pub fn masses(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Midpoint of bin `b`.
    pub fn bin_center(&self, b: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (b as f64 + 0.5) * w
    }

    /// Approximate mean from bin centers.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(b, &c)| c as f64 * self.bin_center(b))
            .sum::<f64>()
            / self.total as f64
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics when the geometries differ.
    pub fn merge(&mut self, other: &Histogram1D) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins() == other.bins(),
            "Histogram1D::merge: geometry mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// A 2-D histogram: `x` is a discrete index (e.g. the year / time step) and
/// `y` is continuous, binned like [`Histogram1D`].
///
/// This is the density structure behind the paper's Fig. 5, where darker
/// shades denote a higher density of `ADR_i(k)` at each time step.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram2D {
    x_len: usize,
    y_lo: f64,
    y_hi: f64,
    y_bins: usize,
    /// Row-major: `counts[x * y_bins + y_bin]`.
    counts: Vec<u64>,
    /// Per-column totals.
    col_totals: Vec<u64>,
}

impl Histogram2D {
    /// Creates a 2-D histogram with `x_len` columns and `y_bins` bins over
    /// `[y_lo, y_hi)`.
    ///
    /// # Panics
    /// Panics for zero dimensions or an invalid `y` range.
    pub fn new(x_len: usize, y_lo: f64, y_hi: f64, y_bins: usize) -> Self {
        assert!(x_len > 0 && y_bins > 0, "Histogram2D: zero dimension");
        assert!(
            y_lo < y_hi && y_lo.is_finite() && y_hi.is_finite(),
            "Histogram2D: invalid y range"
        );
        Histogram2D {
            x_len,
            y_lo,
            y_hi,
            y_bins,
            counts: vec![0; x_len * y_bins],
            col_totals: vec![0; x_len],
        }
    }

    /// Number of columns (x values).
    pub fn x_len(&self) -> usize {
        self.x_len
    }

    /// Number of y bins.
    pub fn y_bins(&self) -> usize {
        self.y_bins
    }

    /// Adds an observation at column `x`.
    ///
    /// # Panics
    /// Panics when `x` is out of range.
    pub fn add(&mut self, x: usize, y: f64) {
        assert!(x < self.x_len, "Histogram2D::add: x = {x} out of range");
        let w = (self.y_hi - self.y_lo) / self.y_bins as f64;
        let idx = ((y - self.y_lo) / w).floor();
        let b = if y.is_nan() || idx < 0.0 {
            0
        } else {
            (idx as usize).min(self.y_bins - 1)
        };
        self.counts[x * self.y_bins + b] += 1;
        self.col_totals[x] += 1;
    }

    /// Raw count in cell `(x, y_bin)`.
    pub fn count(&self, x: usize, y_bin: usize) -> u64 {
        self.counts[x * self.y_bins + y_bin]
    }

    /// Total observations in column `x`.
    pub fn col_total(&self, x: usize) -> u64 {
        self.col_totals[x]
    }

    /// Density of cell `(x, y_bin)` normalized **within its column** — the
    /// shading used in Fig. 5 (each time step is a distribution over ADR).
    pub fn col_density(&self, x: usize, y_bin: usize) -> f64 {
        let t = self.col_totals[x];
        if t == 0 {
            0.0
        } else {
            self.count(x, y_bin) as f64 / t as f64
        }
    }

    /// Column `x` as a vector of densities (length `y_bins`).
    pub fn column(&self, x: usize) -> Vec<f64> {
        (0..self.y_bins).map(|b| self.col_density(x, b)).collect()
    }

    /// Midpoint of y bin `b`.
    pub fn y_bin_center(&self, b: usize) -> f64 {
        let w = (self.y_hi - self.y_lo) / self.y_bins as f64;
        self.y_lo + (b as f64 + 0.5) * w
    }

    /// Renders the histogram as an ASCII shade map (rows = y bins from high
    /// to low, columns = x), using ` .:-=+*#%@` as the density ramp.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        for b in (0..self.y_bins).rev() {
            for x in 0..self.x_len {
                let d = self.col_density(x, b);
                let idx = ((d * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist1d_binning() {
        let mut h = Histogram1D::new(0.0, 1.0, 4);
        h.add(0.1); // bin 0
        h.add(0.3); // bin 1
        h.add(0.99); // bin 3
        h.add(1.5); // clamped to bin 3
        h.add(-0.5); // clamped to bin 0
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn hist1d_masses_sum_to_one() {
        let h = Histogram1D::from_samples(0.0, 1.0, 10, &[0.05, 0.15, 0.25, 0.35]);
        let s: f64 = h.masses().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Empty histogram has zero masses.
        let e = Histogram1D::new(0.0, 1.0, 3);
        assert_eq!(e.masses(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn hist1d_centers_and_mean() {
        let h = Histogram1D::from_samples(0.0, 1.0, 2, &[0.2, 0.2, 0.8, 0.8]);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-15);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-15);
        assert!((h.mean() - 0.5).abs() < 1e-12);
        assert!(Histogram1D::new(0.0, 1.0, 2).mean().is_nan());
    }

    #[test]
    fn hist1d_merge() {
        let mut a = Histogram1D::from_samples(0.0, 1.0, 4, &[0.1, 0.6]);
        let b = Histogram1D::from_samples(0.0, 1.0, 4, &[0.7, 0.9]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2); // 0.6 and 0.7
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn hist1d_merge_rejects_mismatch() {
        let mut a = Histogram1D::new(0.0, 1.0, 4);
        let b = Histogram1D::new(0.0, 2.0, 4);
        a.merge(&b);
    }

    #[test]
    fn hist1d_nan_goes_to_bin_zero() {
        let mut h = Histogram1D::new(0.0, 1.0, 3);
        h.add(f64::NAN);
        assert_eq!(h.count(0), 1);
    }

    #[test]
    fn hist2d_columns() {
        let mut h = Histogram2D::new(3, 0.0, 1.0, 2);
        h.add(0, 0.2);
        h.add(0, 0.3);
        h.add(0, 0.8);
        h.add(2, 0.9);
        assert_eq!(h.col_total(0), 3);
        assert_eq!(h.col_total(1), 0);
        assert_eq!(h.count(0, 0), 2);
        assert!((h.col_density(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.col_density(1, 0), 0.0);
        assert_eq!(h.column(2), vec![0.0, 1.0]);
        assert!((h.y_bin_center(1) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn hist2d_ascii_has_right_shape() {
        let mut h = Histogram2D::new(4, 0.0, 1.0, 3);
        h.add(0, 0.1);
        h.add(3, 0.95);
        let art = h.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Dense cells render as the darkest ramp character '@'.
        assert_eq!(lines[2].chars().next().unwrap(), '@'); // (x=0, lowest bin)
        assert_eq!(lines[0].chars().nth(3).unwrap(), '@'); // (x=3, highest bin)
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hist2d_rejects_bad_column() {
        let mut h = Histogram2D::new(2, 0.0, 1.0, 2);
        h.add(2, 0.5);
    }
}
