//! Nonparametric bootstrap confidence intervals.
//!
//! The paper reports mean ± one standard deviation across five trials;
//! bootstrap percentile intervals give a distribution-free alternative for
//! the same summaries (and for per-user ADR limits, where normality is a
//! poor assumption near the 0 boundary).

use crate::rng::SimRng;

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower percentile bound.
    pub lo: f64,
    /// The point estimate (the statistic on the original sample).
    pub estimate: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Nominal coverage level in `(0, 1)`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains a value.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// # Panics
/// Panics for empty samples, `resamples == 0`, or `level` outside (0, 1).
pub fn bootstrap_ci(
    sample: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    rng: &mut SimRng,
) -> ConfidenceInterval {
    assert!(!sample.is_empty(), "bootstrap: empty sample");
    assert!(resamples > 0, "bootstrap: zero resamples");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "bootstrap: bad level"
    );

    let estimate = statistic(sample);
    let n = sample.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; n];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = sample[rng.index(n)];
        }
        stats.push(statistic(&scratch));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    ConfidenceInterval {
        lo: stats[lo_idx],
        estimate,
        hi: stats[hi_idx],
        level,
    }
}

/// Percentile-bootstrap confidence interval for a statistic over
/// **stratified** samples: each resample draws with replacement *within*
/// every stratum, preserving the strata sizes, and the statistic sees
/// the full set of resampled strata. This is the right resampling scheme
/// for group-gap statistics (e.g. max-minus-min of per-group means),
/// where pooled resampling would let group sizes drift.
///
/// Empty strata are passed through empty — the statistic must handle
/// them (e.g. by skipping the group).
///
/// # Panics
/// Panics when `strata` is empty or every stratum is empty, for
/// `resamples == 0`, or `level` outside (0, 1).
pub fn bootstrap_stratified_ci(
    strata: &[&[f64]],
    statistic: impl Fn(&[Vec<f64>]) -> f64,
    resamples: usize,
    level: f64,
    rng: &mut SimRng,
) -> ConfidenceInterval {
    assert!(!strata.is_empty(), "bootstrap: empty sample");
    assert!(
        strata.iter().any(|s| !s.is_empty()),
        "bootstrap: empty sample"
    );
    assert!(resamples > 0, "bootstrap: zero resamples");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "bootstrap: bad level"
    );

    let original: Vec<Vec<f64>> = strata.iter().map(|s| s.to_vec()).collect();
    let estimate = statistic(&original);
    let mut scratch: Vec<Vec<f64>> = strata.iter().map(|s| vec![0.0; s.len()]).collect();
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for (stratum, resampled) in strata.iter().zip(scratch.iter_mut()) {
            for slot in resampled.iter_mut() {
                *slot = stratum[rng.index(stratum.len())];
            }
        }
        stats.push(statistic(&scratch));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * resamples as f64) as usize).min(resamples - 1);
    let hi_idx = (((1.0 - alpha) * resamples as f64) as usize).min(resamples - 1);
    ConfidenceInterval {
        lo: stats[lo_idx],
        estimate,
        hi: stats[hi_idx],
        level,
    }
}

/// Bootstrap CI for the mean — the workhorse call.
pub fn bootstrap_mean_ci(
    sample: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut SimRng,
) -> ConfidenceInterval {
    bootstrap_ci(
        sample,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_covers_true_mean() {
        let mut rng = SimRng::new(1);
        // Sample from U[0,1]: true mean 0.5.
        let sample: Vec<f64> = (0..2_000).map(|_| rng.uniform()).collect();
        let ci = bootstrap_mean_ci(&sample, 2_000, 0.95, &mut rng);
        assert!(ci.contains(0.5), "{ci:?}");
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        assert!(ci.width() < 0.06);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let mut rng = SimRng::new(2);
        let small: Vec<f64> = (0..50).map(|_| rng.uniform()).collect();
        let large: Vec<f64> = (0..5_000).map(|_| rng.uniform()).collect();
        let ci_small = bootstrap_mean_ci(&small, 1_000, 0.9, &mut rng);
        let ci_large = bootstrap_mean_ci(&large, 1_000, 0.9, &mut rng);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn custom_statistic_median() {
        let sample = [1.0, 2.0, 3.0, 4.0, 100.0];
        let mut rng = SimRng::new(3);
        let ci = bootstrap_ci(&sample, crate::describe::median, 1_000, 0.9, &mut rng);
        // The median is robust to the outlier: estimate is 3.
        assert_eq!(ci.estimate, 3.0);
        assert!(ci.hi <= 100.0);
    }

    #[test]
    fn coverage_calibration_rough() {
        // Across many draws, the 90% interval should cover the true mean
        // roughly 90% of the time (loose tolerance for speed).
        let mut rng = SimRng::new(4);
        let mut covered = 0;
        let runs = 60;
        for _ in 0..runs {
            let sample: Vec<f64> = (0..60).map(|_| rng.uniform()).collect();
            let ci = bootstrap_mean_ci(&sample, 300, 0.9, &mut rng);
            if ci.contains(0.5) {
                covered += 1;
            }
        }
        assert!(covered >= 45, "coverage {covered}/{runs}");
    }

    fn group_gap(groups: &[Vec<f64>]) -> f64 {
        let means: Vec<f64> = groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|g| g.iter().sum::<f64>() / g.len() as f64)
            .collect();
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    #[test]
    fn stratified_ci_preserves_strata_and_covers_gap() {
        let mut rng = SimRng::new(5);
        let a: Vec<f64> = (0..400).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..400).map(|_| 0.2 + rng.uniform()).collect();
        let ci = bootstrap_stratified_ci(&[&a, &b], group_gap, 500, 0.95, &mut rng);
        assert!(ci.contains(0.2), "{ci:?}");
        assert!(ci.lo < ci.hi);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn stratified_ci_tolerates_empty_strata() {
        let mut rng = SimRng::new(6);
        let a = [1.0, 1.5, 0.5];
        let ci = bootstrap_stratified_ci(&[&a, &[]], group_gap, 100, 0.9, &mut rng);
        // One non-empty group: the gap statistic is identically zero.
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lo, 0.0);
        assert_eq!(ci.hi, 0.0);
    }

    #[test]
    fn stratified_ci_is_deterministic_for_a_seed() {
        let a = [0.1, 0.9, 0.4, 0.6];
        let b = [0.2, 0.8];
        let run = || {
            let mut rng = SimRng::new(7);
            bootstrap_stratified_ci(&[&a, &b], group_gap, 200, 0.9, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn stratified_rejects_all_empty() {
        let mut rng = SimRng::new(0);
        bootstrap_stratified_ci(&[&[], &[]], group_gap, 10, 0.9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        let mut rng = SimRng::new(0);
        bootstrap_mean_ci(&[], 10, 0.9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bad level")]
    fn rejects_bad_level() {
        let mut rng = SimRng::new(0);
        bootstrap_mean_ci(&[1.0], 10, 1.0, &mut rng);
    }
}
