//! Bit-level codec primitives shared by the workspace's binary formats
//! (notably the `eqimpact-trace` columnar trace store): zigzag mapping,
//! LEB128-style varints, and a table-driven CRC-32.
//!
//! Everything here is dependency-free and symmetric: each encoder has a
//! decoder that round-trips every value exactly, and the decoders never
//! panic on malformed input — truncation and overflow come back as
//! `None` so callers can surface named errors.

/// Maps a signed value onto an unsigned one with small magnitudes first
/// (`0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`), so varints of
/// small-magnitude deltas stay short regardless of sign.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Largest encoded size of one varint (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` as a little-endian base-128 varint (7 payload bits per
/// byte, high bit = continuation).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one varint starting at `*pos`, advancing `*pos` past it.
///
/// Returns `None` (leaving `*pos` unspecified) on truncated input or an
/// encoding longer than [`MAX_VARINT_LEN`] bytes / overflowing 64 bits —
/// never panics.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only carry the single remaining bit.
        if shift == 63 && payload > 1 {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, `0xEDB88320`) of `bytes` — the frame
/// checksum of the trace store.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_orders_by_magnitude() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 0x7F);
        assert_eq!(buf, vec![0x7F]);
        buf.clear();
        write_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit set, nothing follows.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
        // Empty input.
        pos = 0;
        assert_eq!(read_varint(&[], &mut pos), None);
        // 11 continuation bytes can never be a canonical u64.
        let too_long = [0x80u8; 11];
        pos = 0;
        assert_eq!(read_varint(&too_long, &mut pos), None);
        // A 10th byte carrying more than the last bit overflows.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x02);
        pos = 0;
        assert_eq!(read_varint(&overflow, &mut pos), None);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
