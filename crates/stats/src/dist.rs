//! Probability distributions used by the closed-loop simulations.
//!
//! Everything is implemented from first principles: the normal CDF uses our
//! own `erf` (Abramowitz & Stegun 7.1.26 refined to double precision via
//! the W. J. Cody rational approximations is overkill here; we use the
//! high-accuracy series/continued-fraction split), and the normal quantile
//! uses Acklam's rational approximation polished with one Halley step.

use crate::rng::SimRng;

/// Common sampling interface for scalar distributions.
pub trait Sample {
    /// Draws one sample using the provided stream.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

// ---------------------------------------------------------------------------
// Error function and normal distribution
// ---------------------------------------------------------------------------

/// The error function `erf(x)`, accurate to ~1e-15.
///
/// Series expansion for `|x| <= 2.0`, continued-fraction complement above.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    if x > 6.0 {
        return 1.0;
    }
    if x <= 2.0 {
        // Maclaurin series: erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1)/(n!(2n+1)).
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0u32;
        loop {
            n += 1;
            term *= -x2 / n as f64;
            let contribution = term / (2 * n + 1) as f64;
            sum += contribution;
            if contribution.abs() < 1e-17 * sum.abs() {
                break;
            }
            if n > 200 {
                break;
            }
        }
        (2.0 / std::f64::consts::PI.sqrt()) * sum
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 2.0 {
        1.0 - erf(x)
    } else {
        erfc_cf(x)
    }
}

/// Continued-fraction evaluation of erfc for x >= 2 (Lentz's algorithm).
fn erfc_cf(x: f64) -> f64 {
    // erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + 1/(2x + 2/(x + 3/(2x + ...))))
    let mut f = x;
    let mut c = x;
    let mut d = 0.0;
    let tiny = 1e-300;
    for k in 1..300 {
        // erfc(x)·√π·exp(x²) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...)))),
        // i.e. partial numerators a_k = k/2 with constant denominator x.
        let an = k as f64 / 2.0;
        let bn = x;
        d = bn + an * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = bn + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    // f now approximates x + CF, so erfc = exp(-x^2)/sqrt(pi) / f.
    (-x * x).exp() / (std::f64::consts::PI.sqrt() * f)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal density `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal quantile (inverse CDF) via Acklam's approximation plus
/// one Halley refinement step; accurate to ~1e-13 on (0, 1).
///
/// Returns `-inf` at 0 and `+inf` at 1.
///
/// # Panics
/// Panics for `p` outside `[0, 1]` or NaN.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile: p = {p} outside [0,1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against our own CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// A normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N(mean, sd²)`.
    ///
    /// # Panics
    /// Panics if `sd <= 0` or either parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd > 0.0 && sd.is_finite() && mean.is_finite(),
            "Normal: invalid parameters mean={mean}, sd={sd}"
        );
        Normal { mean, sd }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation parameter.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.sd)
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    /// Quantile at probability `p`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * std_normal_quantile(p)
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.sd * rng.standard_normal()
    }
}

// ---------------------------------------------------------------------------
// Bernoulli
// ---------------------------------------------------------------------------

/// A Bernoulli distribution over `{0.0, 1.0}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or NaN.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Bernoulli: p = {p} outside [0,1]");
        Bernoulli { p }
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean (= p).
    pub fn mean(&self) -> f64 {
        self.p
    }

    /// Variance `p (1 - p)`.
    pub fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }

    /// Draws a boolean.
    pub fn sample_bool(&self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p)
    }
}

impl Sample for Bernoulli {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.sample_bool(rng) {
            1.0
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

/// A continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates `U[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "Uniform: invalid range [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_in(self.lo, self.hi)
    }
}

// ---------------------------------------------------------------------------
// Categorical
// ---------------------------------------------------------------------------

/// A categorical distribution over indices `0..k` with given probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    /// Normalized probabilities.
    probs: Vec<f64>,
    /// Cumulative sums for inverse-CDF sampling.
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights
    /// (normalized internally).
    ///
    /// # Panics
    /// Panics on empty, negative, non-finite, or all-zero weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "Categorical: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "Categorical: zero total weight");
        let probs: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Categorical { probs, cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether there are zero categories (never true for a constructed
    /// value; included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of category `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Normalized probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Draws a category index by inverse-CDF binary search.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cumulative"))
        {
            Ok(i) => (i + 1).min(self.probs.len() - 1),
            Err(i) => i.min(self.probs.len() - 1),
        }
    }
}

impl Sample for Categorical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_index(rng) as f64
    }
}

// ---------------------------------------------------------------------------
// Empirical
// ---------------------------------------------------------------------------

/// An empirical distribution backed by observed samples.
///
/// Supports the exact empirical CDF and bootstrap resampling. Used to
/// compare a trajectory's empirical law against the invariant measure.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Sorted observations.
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from observations (NaNs rejected).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "Empirical: no samples");
        let mut sorted = samples.to_vec();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "Empirical: NaN in samples"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Empirical { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution holds zero observations (never true for a
    /// constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Empirical CDF at `x`: fraction of samples `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (inverted CDF, lower interpolation).
    ///
    /// # Panics
    /// Panics for `p` outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p outside [0,1]");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let idx = (p * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sorted observations.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sorted[rng.index(self.sorted.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, expected) in cases {
            assert!(
                (erf(x) - expected).abs() < 1e-12,
                "erf({x}) = {}, expected {expected}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[0.1, 0.7, 1.5, 2.5, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((std_normal_cdf(1.959963984540054) - 0.975).abs() < 1e-10);
        assert!((std_normal_cdf(-1.959963984540054) - 0.025).abs() < 1e-10);
        assert!((std_normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999] {
            let x = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(x) - p).abs() < 1e-10,
                "p = {p}, x = {x}, cdf = {}",
                std_normal_cdf(x)
            );
        }
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn normal_distribution_api() {
        let n = Normal::new(2.0, 3.0);
        assert_eq!(n.mean(), 2.0);
        assert_eq!(n.sd(), 3.0);
        assert!((n.cdf(2.0) - 0.5).abs() < 1e-14);
        assert!((n.quantile(0.5) - 2.0).abs() < 1e-10);
        assert!(n.pdf(2.0) > n.pdf(5.0));
        let mut rng = SimRng::new(1);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn normal_rejects_bad_sd() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    fn bernoulli_api() {
        let b = Bernoulli::new(0.25);
        assert_eq!(b.p(), 0.25);
        assert_eq!(b.mean(), 0.25);
        assert!((b.variance() - 0.1875).abs() < 1e-15);
        let mut rng = SimRng::new(2);
        let mean: f64 = (0..20_000).map(|_| b.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bernoulli_rejects_bad_p() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn uniform_api() {
        let u = Uniform::new(-1.0, 3.0);
        assert_eq!(u.mean(), 1.0);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            assert!((-1.0..3.0).contains(&x));
        }
    }

    #[test]
    fn categorical_sampling_matches_probs() {
        let c = Categorical::new(&[1.0, 2.0, 7.0]);
        assert!((c.prob(0) - 0.1).abs() < 1e-15);
        assert!((c.prob(2) - 0.7).abs() < 1e-15);
        assert_eq!(c.len(), 3);
        let mut rng = SimRng::new(4);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[c.sample_index(&mut rng)] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let f = cnt as f64 / n as f64;
            assert!((f - c.prob(i)).abs() < 0.02, "category {i}: {f}");
        }
    }

    #[test]
    fn categorical_race_distribution_of_the_paper() {
        // The paper's race sampling distribution.
        let c = Categorical::new(&[0.1235, 0.8406, 0.0359]);
        let total: f64 = c.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn categorical_rejects_zero_weights() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn empirical_cdf_and_quantile() {
        let e = Empirical::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 3.0);
        assert_eq!(e.mean(), 2.0);
    }

    #[test]
    fn empirical_resampling_stays_in_support() {
        let e = Empirical::new(&[1.0, 5.0, 9.0]);
        let mut rng = SimRng::new(6);
        for _ in 0..100 {
            let x = e.sample(&mut rng);
            assert!(x == 1.0 || x == 5.0 || x == 9.0);
        }
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empirical_rejects_empty() {
        Empirical::new(&[]);
    }
}
