//! Convergence diagnostics for distributions.
//!
//! Unique ergodicity says `(P*)^n ν → µ` weakly for every initial law `ν`.
//! We verify this numerically by comparing empirical laws with the
//! two-sample Kolmogorov-Smirnov statistic, histogram total variation, and
//! the 1-Wasserstein (earth-mover) distance.

use crate::hist::Histogram1D;

/// Two-sample Kolmogorov-Smirnov statistic: the sup-distance between the
/// two empirical CDFs. Ranges in `[0, 1]`; 0 means identical laws.
///
/// # Panics
/// Panics when either sample is empty or contains NaN.
pub fn kolmogorov_smirnov(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS: empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    assert!(
        sa.iter().chain(sb.iter()).all(|x| !x.is_nan()),
        "KS: NaN sample"
    );
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));

    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Asymptotic two-sample KS p-value (Kolmogorov distribution tail), using
/// the first 100 terms of the alternating series. Small-sample accuracy is
/// rough but adequate for convergence *diagnostics*.
pub fn ks_p_value(statistic: f64, n_a: usize, n_b: usize) -> f64 {
    if statistic <= 0.0 {
        return 1.0;
    }
    let n_eff = (n_a as f64 * n_b as f64) / (n_a as f64 + n_b as f64);
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * statistic;
    let mut p = 0.0;
    for k in 1..=100 {
        let sign = if k % 2 == 1 { 1.0 } else { -1.0 };
        p += sign * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
    }
    (2.0 * p).clamp(0.0, 1.0)
}

/// Total-variation distance between two histograms with identical geometry:
/// `(1/2) Σ_b |p_b - q_b|`. Ranges in `[0, 1]`.
///
/// # Panics
/// Panics when geometries differ.
pub fn total_variation_histogram(p: &Histogram1D, q: &Histogram1D) -> f64 {
    assert!(
        p.lo() == q.lo() && p.hi() == q.hi() && p.bins() == q.bins(),
        "TV: histogram geometry mismatch"
    );
    let pm = p.masses();
    let qm = q.masses();
    0.5 * pm.iter().zip(&qm).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Total-variation distance between two discrete probability vectors.
///
/// # Panics
/// Panics on length mismatch.
pub fn total_variation_discrete(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "TV: length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// 1-Wasserstein (earth mover) distance between two empirical samples,
/// computed from sorted samples.
///
/// For equal sizes this is `mean |a_(i) - b_(i)|`; for unequal sizes we
/// integrate the absolute difference of empirical quantile functions on a
/// shared grid of `n_a + n_b` quantile levels.
///
/// # Panics
/// Panics when either sample is empty or contains NaN.
pub fn wasserstein1(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "W1: empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    assert!(
        sa.iter().chain(sb.iter()).all(|x| !x.is_nan()),
        "W1: NaN sample"
    );
    sa.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));

    if sa.len() == sb.len() {
        return sa.iter().zip(&sb).map(|(x, y)| (x - y).abs()).sum::<f64>() / sa.len() as f64;
    }

    // Merge all CDF jump points; integrate |F_a^{-1}(u) - F_b^{-1}(u)| du.
    let n = sa.len() + sb.len();
    let mut total = 0.0;
    let mut prev_u = 0.0;
    // Quantile step function evaluation at the midpoint of each u-segment.
    let levels: Vec<f64> = {
        let mut ls: Vec<f64> = (1..=sa.len())
            .map(|i| i as f64 / sa.len() as f64)
            .chain((1..=sb.len()).map(|j| j as f64 / sb.len() as f64))
            .collect();
        ls.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        ls.dedup();
        ls
    };
    let quant = |s: &[f64], u: f64| -> f64 {
        // Left-continuous inverse of the empirical CDF.
        let idx = ((u * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[idx - 1]
    };
    for &u in &levels {
        let mid = 0.5 * (prev_u + u);
        total += (u - prev_u) * (quant(&sa, mid) - quant(&sb, mid)).abs();
        prev_u = u;
    }
    debug_assert!(levels.len() <= n);
    total
}

/// Geometric-decay fit: given a positive sequence `d_n`, estimates the rate
/// `r` in `d_n ≈ C r^n` by least squares on `log d_n`. Entries `<= 0` are
/// skipped. Returns `None` if fewer than two positive entries exist.
///
/// A fitted `r < 1` is the numerical signature of an *attractive* invariant
/// measure (geometric ergodicity of the sampled chain).
pub fn fit_geometric_rate(distances: &[f64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = distances
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0.0 && d.is_finite())
        .map(|(n, &d)| (n as f64, d.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(slope.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(kolmogorov_smirnov(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert_eq!(kolmogorov_smirnov(&a, &b), 1.0);
    }

    #[test]
    fn ks_known_value() {
        // F_a jumps at 1,2; F_b jumps at 1.5: D = 0.5.
        let a = [1.0, 2.0];
        let b = [1.5, 1.5];
        assert!((kolmogorov_smirnov(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_same_distribution_small() {
        let mut rng = SimRng::new(1);
        let a: Vec<f64> = (0..2000).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.uniform()).collect();
        let d = kolmogorov_smirnov(&a, &b);
        assert!(d < 0.06, "KS = {d}");
        assert!(ks_p_value(d, 2000, 2000) > 0.01);
    }

    #[test]
    fn ks_different_distributions_detected() {
        let mut rng = SimRng::new(2);
        let a: Vec<f64> = (0..2000).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.uniform() + 0.5).collect();
        let d = kolmogorov_smirnov(&a, &b);
        assert!(d > 0.3, "KS = {d}");
        assert!(ks_p_value(d, 2000, 2000) < 1e-6);
    }

    #[test]
    fn p_value_bounds() {
        assert_eq!(ks_p_value(0.0, 10, 10), 1.0);
        let p = ks_p_value(1.0, 100, 100);
        assert!((0.0..1e-10).contains(&p));
    }

    #[test]
    fn tv_histogram() {
        let a = Histogram1D::from_samples(0.0, 1.0, 2, &[0.1, 0.2, 0.3, 0.4]);
        let b = Histogram1D::from_samples(0.0, 1.0, 2, &[0.6, 0.7, 0.8, 0.9]);
        assert!((total_variation_histogram(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation_histogram(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn tv_histogram_rejects_mismatch() {
        let a = Histogram1D::new(0.0, 1.0, 2);
        let b = Histogram1D::new(0.0, 1.0, 3);
        total_variation_histogram(&a, &b);
    }

    #[test]
    fn tv_discrete() {
        assert!((total_variation_discrete(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-15);
        assert!((total_variation_discrete(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn wasserstein_equal_sizes() {
        let a = [0.0, 1.0];
        let b = [1.0, 2.0];
        assert!((wasserstein1(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(wasserstein1(&a, &a), 0.0);
    }

    #[test]
    fn wasserstein_translation_equals_shift() {
        let mut rng = SimRng::new(3);
        let a: Vec<f64> = (0..500).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.7).collect();
        assert!((wasserstein1(&a, &b) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn wasserstein_unequal_sizes() {
        // a = δ_0, b = (δ_0 + δ_1)/2: W1 = 0.5.
        let a = [0.0];
        let b = [0.0, 1.0];
        assert!((wasserstein1(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_rate_recovered() {
        let d: Vec<f64> = (0..20).map(|n| 5.0 * 0.8f64.powi(n)).collect();
        let r = fit_geometric_rate(&d).unwrap();
        assert!((r - 0.8).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn geometric_rate_skips_nonpositive() {
        let d = [1.0, 0.0, 0.25, -1.0, 0.0625];
        // Positive entries at n = 0, 2, 4 with ratio 0.5 per step.
        let r = fit_geometric_rate(&d).unwrap();
        assert!((r - 0.5).abs() < 1e-9);
    }

    #[test]
    fn geometric_rate_degenerate() {
        assert!(fit_geometric_rate(&[]).is_none());
        assert!(fit_geometric_rate(&[1.0]).is_none());
        assert!(fit_geometric_rate(&[0.0, -1.0]).is_none());
    }
}
