//! Dependency-free observability for the eqimpact workspace.
//!
//! The crate is a fixed **catalog** of statically allocated instruments
//! ([`metrics`]) behind one process-wide switch, the [`Recorder`]. Every
//! instrument operation starts with a single relaxed atomic load: while
//! no recorder is installed the whole plane is a guaranteed no-op — one
//! predictable branch, zero allocation, zero `Instant::now()` calls — so
//! instrumented hot paths cost nothing measurable and the engine's
//! bit-identity contract is untouched (the instruments only *observe*
//! the computation, never feed back into it).
//!
//! Instrument kinds:
//!
//! - [`Counter`] — a monotone event tally, sharded over cache-padded
//!   atomics so concurrent lanes don't bounce one cache line.
//! - [`Gauge`] — a current-value/peak pair (e.g. busy budget lanes).
//! - [`Histogram`] — fixed log2 buckets (no allocation, values 0 to
//!   `u64::MAX`) for sizes or durations, with count and sum.
//! - [`PhaseSpan`] — a scoped timer over a duration histogram; entering
//!   while disabled returns an inert guard without reading the clock.
//! - [`LaneSet`] — per-lane occupancy tallies for the worker pool.
//!
//! Export is the [`TelemetrySnapshot`]: a point-in-time capture split
//! into a **deterministic** section (counts, byte/frame tallies, size
//! histograms — identical across runs and `--threads` values for a
//! deterministic workload) and a **wall-clock** section (durations, pool
//! scheduling, lane occupancy — honest numbers that vary run to run),
//! rendered as JSON or an aligned text table. The split is the
//! determinism contract: anything scheduling-dependent is quarantined in
//! the wall-clock section, so the deterministic section can be byte-
//! compared in tests and CI.

#![forbid(unsafe_code)]

pub mod instruments;
pub mod metrics;
pub mod progress;
pub mod snapshot;

pub use instruments::{
    Counter, Gauge, Histogram, LaneSet, ManualTimer, PhaseSpan, Section, SpanGuard, Unit,
};
pub use snapshot::TelemetrySnapshot;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The process-wide switch every instrument branches on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a recorder is installed. One relaxed load — this is the
/// entire disabled-path cost of any instrument operation.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide recorder: install it to start recording into the
/// [`metrics`] catalog, capture a [`TelemetrySnapshot`] at any point,
/// uninstall to return the whole plane to its no-op state.
pub struct Recorder;

impl Recorder {
    /// Resets every instrument and enables recording. Idempotent, but
    /// note the reset: installing mid-run discards whatever was counted
    /// so far.
    pub fn install() {
        Self::reset();
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Disables recording; the catalog keeps its tallies for inspection
    /// until the next [`Recorder::install`] or [`Recorder::reset`].
    pub fn uninstall() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled (see [`enabled`]).
    pub fn is_installed() -> bool {
        enabled()
    }

    /// Zeroes every instrument in the catalog and the progress goal.
    pub fn reset() {
        for c in metrics::COUNTERS {
            c.reset();
        }
        for g in metrics::GAUGES {
            g.reset();
        }
        for h in metrics::HISTOGRAMS {
            h.reset();
        }
        for s in metrics::SPANS {
            s.reset();
        }
        for l in metrics::LANE_SETS {
            l.reset();
        }
        progress::reset_goal();
    }

    /// Captures a [`TelemetrySnapshot`] of the whole catalog.
    pub fn snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot::capture()
    }
}

/// Serializes tests that install/reset the recorder: the catalog is
/// process-global, so concurrent tests in one binary would otherwise
/// tally into each other's snapshots. Hold the returned guard for the
/// whole test; a panicking holder does not wedge later tests.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_gates_the_whole_catalog() {
        let _t = test_guard();
        Recorder::reset();
        metrics::LOOP_STEPS.add(5);
        assert_eq!(metrics::LOOP_STEPS.total(), 0, "disabled counter counted");

        Recorder::install();
        metrics::LOOP_STEPS.add(5);
        assert_eq!(metrics::LOOP_STEPS.total(), 5);

        Recorder::uninstall();
        metrics::LOOP_STEPS.add(5);
        assert_eq!(
            metrics::LOOP_STEPS.total(),
            5,
            "uninstalled counter counted"
        );

        Recorder::reset();
        assert_eq!(metrics::LOOP_STEPS.total(), 0);
    }

    #[test]
    fn install_resets_previous_tallies() {
        let _t = test_guard();
        Recorder::install();
        metrics::LOOP_STEPS.add(3);
        Recorder::install();
        assert_eq!(metrics::LOOP_STEPS.total(), 0);
        Recorder::uninstall();
        Recorder::reset();
    }
}
