//! The central instrument catalog. Rust has no life-before-main, so
//! rather than a registration protocol every instrument in the
//! workspace lives here as a `static`, and the snapshot iterates these
//! fixed arrays — which also pins the render order, keeping snapshots
//! deterministic by construction.
//!
//! Naming: `<plane>.<event>`, with the plane matching the crate that
//! drives the instrument (`loop.*` from core's runners, `pool.*` from
//! `core::pool`, `trace.*` from the trace store, …).

use crate::instruments::{Counter, Gauge, Histogram, LaneSet, PhaseSpan, Section, Unit};

// --- loop plane (core::closed_loop / core::shard) -----------------------

/// Loop steps completed (sequential and sharded runners alike).
pub static LOOP_STEPS: Counter = Counter::new("loop.steps", Section::Deterministic);
/// The observe phase: population → visible features. In sharded runs
/// each shard's slice is one scope, so the count is steps × shards.
pub static LOOP_OBSERVE: PhaseSpan = PhaseSpan::new("loop.observe");
/// The signal phase: AI scoring over the visible features.
pub static LOOP_SIGNAL: PhaseSpan = PhaseSpan::new("loop.signal");
/// The respond phase: population reactions to the broadcast signals.
pub static LOOP_RESPOND: PhaseSpan = PhaseSpan::new("loop.respond");
/// The filter phase: the feedback filter at the step barrier.
pub static LOOP_FILTER: PhaseSpan = PhaseSpan::new("loop.filter");
/// The record phase: `LoopRecord::push_step` plus the step sink.
pub static LOOP_RECORD: PhaseSpan = PhaseSpan::new("loop.record");
/// The retrain phase: delay-line pop, retrain and checkpointing.
pub static LOOP_RETRAIN: PhaseSpan = PhaseSpan::new("loop.retrain");

// --- pool plane (core::pool) — scheduling-dependent, all wall-clock -----

/// Budget leases taken.
pub static POOL_LEASES: Counter = Counter::new("pool.leases", Section::WallClock);
/// Lanes requested across all leases (the caller's lane included).
pub static POOL_LANES_REQUESTED: Counter = Counter::new("pool.lanes_requested", Section::WallClock);
/// Lanes actually granted across all leases.
pub static POOL_LANES_GRANTED: Counter = Counter::new("pool.lanes_granted", Section::WallClock);
/// Leases granted fewer lanes than requested (budget exhaustion).
pub static POOL_LEASES_CLAMPED: Counter = Counter::new("pool.leases_clamped", Section::WallClock);
/// Extra budget lanes currently held by live leases (peak = high-water).
pub static POOL_LANES_BUSY: Gauge = Gauge::new("pool.lanes_busy", Section::WallClock);
/// Jobs executed on pool worker threads.
pub static POOL_JOBS_RUN: Counter = Counter::new("pool.jobs_run", Section::WallClock);
/// Jobs executed inline on the submitting thread (its own stripe).
pub static POOL_JOBS_INLINE: Counter = Counter::new("pool.jobs_inline", Section::WallClock);
/// Jobs that panicked (caught at the pool barrier).
pub static POOL_PANICS: Counter = Counter::new("pool.panics", Section::WallClock);
/// Submit-to-start latency of worker-lane jobs.
pub static POOL_QUEUE_WAIT: PhaseSpan = PhaseSpan::wall_clock("pool.queue_wait");
/// Jobs per lane (lane 0 = the calling thread, lane w+1 = worker w).
pub static POOL_LANE_JOBS: LaneSet = LaneSet::new("pool.lane_jobs");

// --- trace plane (crates/trace) -----------------------------------------

/// EQTRACE1 frames written (header, groups, steps, checkpoints, footer).
pub static TRACE_FRAMES_WRITTEN: Counter =
    Counter::new("trace.frames_written", Section::Deterministic);
/// EQTRACE1 frames read back.
pub static TRACE_FRAMES_READ: Counter = Counter::new("trace.frames_read", Section::Deterministic);
/// CRC mismatches hit while reading.
pub static TRACE_CHECKSUM_FAILURES: Counter =
    Counter::new("trace.checksum_failures", Section::Deterministic);
/// Payload sizes of written frames.
pub static TRACE_FRAME_BYTES: Histogram =
    Histogram::new("trace.frame_bytes", Section::Deterministic, Unit::Bytes);
/// Raw (pre-encoding) bytes of columns the codec kept plain.
pub static TRACE_RAW_BYTES_PLAIN: Counter =
    Counter::new("trace.codec.plain.raw_bytes", Section::Deterministic);
/// Encoded bytes of columns the codec kept plain.
pub static TRACE_ENC_BYTES_PLAIN: Counter =
    Counter::new("trace.codec.plain.encoded_bytes", Section::Deterministic);
/// Raw bytes of columns the codec run-length encoded.
pub static TRACE_RAW_BYTES_RLE: Counter =
    Counter::new("trace.codec.rle.raw_bytes", Section::Deterministic);
/// Encoded bytes of columns the codec run-length encoded.
pub static TRACE_ENC_BYTES_RLE: Counter =
    Counter::new("trace.codec.rle.encoded_bytes", Section::Deterministic);
/// Raw bytes of columns encoded in the byte-swapped word domain.
pub static TRACE_RAW_BYTES_SWAP: Counter =
    Counter::new("trace.codec.swap.raw_bytes", Section::Deterministic);
/// Encoded bytes of columns encoded in the byte-swapped word domain.
pub static TRACE_ENC_BYTES_SWAP: Counter =
    Counter::new("trace.codec.swap.encoded_bytes", Section::Deterministic);
/// Raw bytes of columns both byte-swapped and run-length encoded.
pub static TRACE_RAW_BYTES_SWAP_RLE: Counter =
    Counter::new("trace.codec.swap_rle.raw_bytes", Section::Deterministic);
/// Encoded bytes of columns both byte-swapped and run-length encoded.
pub static TRACE_ENC_BYTES_SWAP_RLE: Counter =
    Counter::new("trace.codec.swap_rle.encoded_bytes", Section::Deterministic);

// --- lab / certify planes ------------------------------------------------

/// Sweep cells evaluated (one per candidate × trace).
pub static SWEEP_CELLS: PhaseSpan = PhaseSpan::new("sweep.cells");
/// Sweep cells that errored or panicked.
pub static SWEEP_CELL_ERRORS: Counter = Counter::new("sweep.cell_errors", Section::Deterministic);
/// Certification cells evaluated (one per trace).
pub static CERTIFY_CELLS: PhaseSpan = PhaseSpan::new("certify.cells");
/// Certification cells that errored or panicked.
pub static CERTIFY_CELL_ERRORS: Counter =
    Counter::new("certify.cell_errors", Section::Deterministic);

// --- harness plane (bench + CLI) -----------------------------------------

/// One perf-harness sample (the bench crate's timed closures).
pub static BENCH_SAMPLE: PhaseSpan = PhaseSpan::wall_clock("bench.sample");
/// One CLI subcommand end to end (the timing footer's clock).
pub static CLI_COMMAND: PhaseSpan = PhaseSpan::wall_clock("cli.command");

/// Every counter, in render order.
pub static COUNTERS: [&Counter; 21] = [
    &LOOP_STEPS,
    &POOL_LEASES,
    &POOL_LANES_REQUESTED,
    &POOL_LANES_GRANTED,
    &POOL_LEASES_CLAMPED,
    &POOL_JOBS_RUN,
    &POOL_JOBS_INLINE,
    &POOL_PANICS,
    &TRACE_FRAMES_WRITTEN,
    &TRACE_FRAMES_READ,
    &TRACE_CHECKSUM_FAILURES,
    &TRACE_RAW_BYTES_PLAIN,
    &TRACE_ENC_BYTES_PLAIN,
    &TRACE_RAW_BYTES_RLE,
    &TRACE_ENC_BYTES_RLE,
    &TRACE_RAW_BYTES_SWAP,
    &TRACE_ENC_BYTES_SWAP,
    &TRACE_RAW_BYTES_SWAP_RLE,
    &TRACE_ENC_BYTES_SWAP_RLE,
    &SWEEP_CELL_ERRORS,
    &CERTIFY_CELL_ERRORS,
];

/// Every gauge, in render order.
pub static GAUGES: [&Gauge; 1] = [&POOL_LANES_BUSY];

/// Every standalone histogram, in render order.
pub static HISTOGRAMS: [&Histogram; 1] = [&TRACE_FRAME_BYTES];

/// Every phase span, in render order.
pub static SPANS: [&PhaseSpan; 11] = [
    &LOOP_OBSERVE,
    &LOOP_SIGNAL,
    &LOOP_RESPOND,
    &LOOP_FILTER,
    &LOOP_RECORD,
    &LOOP_RETRAIN,
    &SWEEP_CELLS,
    &CERTIFY_CELLS,
    &POOL_QUEUE_WAIT,
    &BENCH_SAMPLE,
    &CLI_COMMAND,
];

/// Every lane set, in render order.
pub static LANE_SETS: [&LaneSet; 1] = [&POOL_LANE_JOBS];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn catalog_names_are_unique() {
        let mut names = BTreeSet::new();
        let mut count = 0usize;
        for c in COUNTERS {
            names.insert(c.name());
            count += 1;
        }
        for g in GAUGES {
            names.insert(g.name());
            count += 1;
        }
        for h in HISTOGRAMS {
            names.insert(h.name());
            count += 1;
        }
        for s in SPANS {
            names.insert(s.name());
            count += 1;
        }
        for l in LANE_SETS {
            names.insert(l.name());
            count += 1;
        }
        assert_eq!(
            names.len(),
            count,
            "duplicate instrument name in the catalog"
        );
    }
}
