//! The `--progress` heartbeat: a background thread printing work rate
//! and ETA to stderr for long runs. "Work units" are whatever the
//! instrumented engines complete — loop steps plus sweep/certify cells
//! — and the goal is registered incrementally by the engines themselves
//! ([`add_goal`]) as runs start, so nested work (trials × steps) simply
//! accumulates.

use crate::metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Work units the instrumented engines expect to complete.
static GOAL: AtomicU64 = AtomicU64::new(0);

/// Registers `n` upcoming work units (loop steps or cells). No-op while
/// the recorder is disabled, so uninstrumented runs never pay for it.
#[inline]
pub fn add_goal(n: u64) {
    if crate::enabled() {
        GOAL.fetch_add(n, Ordering::Relaxed);
    }
}

/// The registered goal.
pub fn goal() -> u64 {
    GOAL.load(Ordering::Relaxed)
}

/// Zeroes the goal (part of [`crate::Recorder::reset`]).
pub fn reset_goal() {
    GOAL.store(0, Ordering::Relaxed);
}

/// Work units completed so far: loop steps plus sweep and certify cells.
pub fn done() -> u64 {
    metrics::LOOP_STEPS.total() + metrics::SWEEP_CELLS.count() + metrics::CERTIFY_CELLS.count()
}

/// A running heartbeat thread; dropping it stops the thread promptly.
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

/// Starts the heartbeat: every `interval` it prints completed units,
/// rate, and — when a goal is registered — the ETA, to stderr. Ticks
/// with nothing completed yet stay silent.
pub fn start_heartbeat(interval: Duration) -> Heartbeat {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let shared = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("eqimpact-progress".to_string())
        .spawn(move || {
            let (lock, cv) = &*shared;
            let mut last_done = done();
            let mut last_at = Instant::now();
            let mut stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                let (guard, _) = cv
                    .wait_timeout(stopped, interval)
                    .unwrap_or_else(PoisonError::into_inner);
                stopped = guard;
                if *stopped {
                    return;
                }
                let now = Instant::now();
                let current = done();
                let dt = now.duration_since(last_at).as_secs_f64();
                let rate = if dt > 0.0 {
                    current.saturating_sub(last_done) as f64 / dt
                } else {
                    0.0
                };
                last_done = current;
                last_at = now;
                if current == 0 {
                    continue;
                }
                let goal = goal();
                if goal > current && rate > 0.0 {
                    let eta = (goal - current) as f64 / rate;
                    eprintln!("[progress] {current}/{goal} units · {rate:.0}/s · eta {eta:.1}s");
                } else if goal > 0 {
                    eprintln!("[progress] {current}/{goal} units · {rate:.0}/s");
                } else {
                    eprintln!("[progress] {current} units · {rate:.0}/s");
                }
            }
        })
        .expect("progress heartbeat: failed to spawn");
    Heartbeat {
        stop,
        handle: Some(handle),
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{test_guard, Recorder};

    #[test]
    fn goal_accumulates_only_while_enabled() {
        let _t = test_guard();
        Recorder::reset();
        add_goal(10);
        assert_eq!(goal(), 0);
        Recorder::install();
        add_goal(10);
        add_goal(5);
        assert_eq!(goal(), 15);
        Recorder::uninstall();
        Recorder::reset();
        assert_eq!(goal(), 0);
    }

    #[test]
    fn heartbeat_starts_and_stops_cleanly() {
        let _t = test_guard();
        Recorder::install();
        metrics::LOOP_STEPS.add(2);
        let hb = start_heartbeat(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        drop(hb);
        Recorder::uninstall();
        Recorder::reset();
    }
}
