//! The instrument kinds: sharded counters, gauges, log2 histograms,
//! scoped phase spans and per-lane tallies. Every mutating operation
//! branches on [`crate::enabled`] first; the disabled path is one
//! relaxed atomic load.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Which snapshot section an instrument's tallies belong to (see the
/// crate docs for the determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Scheduling-invariant: byte-identical across runs and thread
    /// counts for a deterministic workload.
    Deterministic,
    /// Wall-clock/scheduling-dependent: varies run to run.
    WallClock,
}

impl Section {
    /// The snapshot key of this section.
    pub fn label(self) -> &'static str {
        match self {
            Section::Deterministic => "deterministic",
            Section::WallClock => "wall_clock",
        }
    }
}

/// What a [`Histogram`]'s values measure (labels for rendering only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Durations in nanoseconds.
    Nanos,
    /// Sizes in bytes.
    Bytes,
    /// Dimensionless counts.
    Count,
}

impl Unit {
    /// A short suffix for text rendering.
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Nanos => "ns",
            Unit::Bytes => "B",
            Unit::Count => "",
        }
    }
}

/// One cache line of counter state: the alignment keeps concurrent
/// lanes' increments off each other's lines.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    // A repeat-initializer for the shard array in `Counter::new` (a
    // `static` cannot seed `[_; N]` in a const fn); each shard is a
    // distinct atomic, so the shared-const pitfall does not apply.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: PaddedU64 = PaddedU64(AtomicU64::new(0));
}

/// Shards per [`Counter`] (a power of two; lanes hash into them).
pub const COUNTER_SHARDS: usize = 8;

/// Hands every thread a small stable slot for counter sharding.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn shard_index() -> usize {
    THREAD_SLOT.with(|s| *s) & (COUNTER_SHARDS - 1)
}

/// A monotone event tally, sharded over cache-padded atomics. `total()`
/// sums the shards, so a quiescent total is exact; a mid-run read is a
/// consistent lower bound.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    section: Section,
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter (usable as a `static` initializer).
    pub const fn new(name: &'static str, section: Section) -> Self {
        Counter {
            name,
            section,
            shards: [PaddedU64::ZERO; COUNTER_SHARDS],
        }
    }

    /// The instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The snapshot section this counter reports into.
    pub fn section(&self) -> Section {
        self.section
    }

    /// Adds `n` events. No-op while disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event. No-op while disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The summed tally.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A current-value/peak pair. `add`/`sub` track a level (e.g. busy
/// lanes); `peak()` is the high-water mark since the last reset.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    section: Section,
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge (usable as a `static` initializer).
    pub const fn new(name: &'static str, section: Section) -> Self {
        Gauge {
            name,
            section,
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// The instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The snapshot section this gauge reports into.
    pub fn section(&self) -> Section {
        self.section
    }

    /// Raises the level by `n`, updating the peak. No-op while disabled.
    /// Callers pairing `add`/`sub` across an enable/disable edge must
    /// gate both on the same decision (see `BudgetLease` in core).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
            self.peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Lowers the level by `n` (saturating at zero). Unlike [`Self::add`]
    /// this is **not** gated on [`crate::enabled`]: the matching `add`
    /// already was, and a level raised while enabled must come back down
    /// even if recording stopped in between.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The high-water mark since the last reset.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Zeroes level and peak.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// Buckets of a [`Histogram`]: one for zero plus one per bit length, so
/// any `u64` lands without allocation or clamping.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index of `v`: `0` for zero, otherwise `v`'s bit length
/// (bucket `i` holds `[2^(i-1), 2^i)`; `u64::MAX` lands in bucket 64).
pub const fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A fixed-bucket log2 histogram with count and (wrapping) sum. Bucket
/// counts of a size histogram are scheduling-invariant and belong in
/// the deterministic section; duration histograms are wall-clock.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    section: Section,
    unit: Unit,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// A zeroed histogram (usable as a `static` initializer).
    pub const fn new(name: &'static str, section: Section, unit: Unit) -> Self {
        // Repeat-initializer for the bucket array; every bucket is its
        // own atomic, so the shared-const pitfall does not apply.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            section,
            unit,
            count: ZERO,
            sum: ZERO,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// The instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The snapshot section this histogram reports into.
    pub fn section(&self) -> Section {
        self.section
    }

    /// What the recorded values measure.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Records one value. No-op while disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if crate::enabled() {
            self.record(v);
        }
    }

    /// Records unconditionally (callers that already checked the gate).
    #[inline]
    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Values recorded since the last reset.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A scoped timer over a duration histogram. [`Self::enter`] while
/// disabled returns an inert guard without touching the clock; while
/// enabled the guard records the elapsed nanoseconds on drop. The call
/// *count* of a span wired at a deterministic site (one enter per loop
/// step, per cell, …) is scheduling-invariant, so spans carry a flag
/// routing their count into the deterministic section while their
/// timings always stay wall-clock.
#[derive(Debug)]
pub struct PhaseSpan {
    hist: Histogram,
    deterministic_count: bool,
}

impl PhaseSpan {
    /// A span whose call count is scheduling-invariant.
    pub const fn new(name: &'static str) -> Self {
        PhaseSpan {
            hist: Histogram::new(name, Section::WallClock, Unit::Nanos),
            deterministic_count: true,
        }
    }

    /// A span whose call count depends on scheduling (queue waits, CLI
    /// wrappers): everything about it is wall-clock.
    pub const fn wall_clock(name: &'static str) -> Self {
        PhaseSpan {
            hist: Histogram::new(name, Section::WallClock, Unit::Nanos),
            deterministic_count: false,
        }
    }

    /// The instrument name.
    pub fn name(&self) -> &'static str {
        self.hist.name()
    }

    /// Whether the call count reports into the deterministic section.
    pub fn deterministic_count(&self) -> bool {
        self.deterministic_count
    }

    /// Starts a scope; the returned guard records its elapsed time when
    /// dropped. Inert (no clock read) while disabled.
    #[inline]
    pub fn enter(&self) -> SpanGuard<'_> {
        SpanGuard {
            active: crate::enabled().then(|| (self, Instant::now())),
        }
    }

    /// Records an externally measured duration. No-op while disabled.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.hist.observe(ns);
    }

    /// Starts a manual timer that **always** measures wall time (the
    /// timing-footer API: callers need the number even with telemetry
    /// off) and records into the span only if enabled at stop.
    pub fn start_timer(&'static self) -> ManualTimer {
        ManualTimer {
            span: self,
            start: Instant::now(),
        }
    }

    /// Times `f`, returning its result and the elapsed milliseconds.
    /// Like [`Self::start_timer`], always measures; records if enabled.
    pub fn time_ms<R>(&'static self, f: impl FnOnce() -> R) -> (R, f64) {
        let timer = self.start_timer();
        let result = f();
        (result, timer.stop_ms())
    }

    /// Scopes entered since the last reset.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum()
    }

    /// The count in duration bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.hist.bucket(i)
    }

    /// Zeroes the span.
    pub fn reset(&self) {
        self.hist.reset();
    }
}

/// The scope of one [`PhaseSpan::enter`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    active: Option<(&'a PhaseSpan, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((span, start)) = self.active.take() {
            // Cap at u64::MAX ns (~585 years); record() is fine with it.
            span.hist
                .record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// An explicitly stopped timer (see [`PhaseSpan::start_timer`]).
#[derive(Debug)]
pub struct ManualTimer {
    span: &'static PhaseSpan,
    start: Instant,
}

impl ManualTimer {
    /// Stops the timer, records the duration if enabled, and returns the
    /// elapsed milliseconds.
    pub fn stop_ms(self) -> f64 {
        let elapsed = self.start.elapsed();
        self.span
            .record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        elapsed.as_secs_f64() * 1e3
    }
}

/// Lanes tracked per [`LaneSet`]; higher lanes fold into the last slot.
pub const MAX_LANES: usize = 64;

/// Per-lane event tallies (pool occupancy: lane 0 is the calling
/// thread's stripe, lane `w + 1` is worker `w`). Wall-clock by nature.
#[derive(Debug)]
pub struct LaneSet {
    name: &'static str,
    lanes: [PaddedU64; MAX_LANES],
}

impl LaneSet {
    /// A zeroed lane set (usable as a `static` initializer).
    pub const fn new(name: &'static str) -> Self {
        LaneSet {
            name,
            lanes: [PaddedU64::ZERO; MAX_LANES],
        }
    }

    /// The instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events to `lane`. No-op while disabled.
    #[inline]
    pub fn record(&self, lane: usize, n: u64) {
        if crate::enabled() {
            self.lanes[lane.min(MAX_LANES - 1)]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The per-lane tallies, trailing zero lanes trimmed.
    pub fn counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self
            .lanes
            .iter()
            .map(|l| l.0.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        counts
    }

    /// Zeroes every lane.
    pub fn reset(&self) {
        for l in &self.lanes {
            l.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{test_guard, Recorder};

    #[test]
    fn bucket_of_edge_cases() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "bucket 64 must end at u64::MAX");
    }

    #[test]
    fn histogram_tallies_zero_and_max() {
        let _t = test_guard();
        Recorder::install();
        static H: Histogram = Histogram::new("test.h", Section::Deterministic, Unit::Count);
        H.reset();
        H.observe(0);
        H.observe(0);
        H.observe(u64::MAX);
        H.observe(7);
        assert_eq!(H.count(), 4);
        assert_eq!(H.bucket(0), 2);
        assert_eq!(H.bucket(64), 1);
        assert_eq!(H.bucket(bucket_of(7)), 1);
        assert_eq!(H.sum(), u64::MAX.wrapping_add(7));
        Recorder::uninstall();
        Recorder::reset();
    }

    #[test]
    fn counter_sums_across_threads() {
        let _t = test_guard();
        Recorder::install();
        static C: Counter = Counter::new("test.c", Section::Deterministic);
        C.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C.incr();
                    }
                });
            }
        });
        assert_eq!(C.total(), 4000);
        Recorder::uninstall();
        Recorder::reset();
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let _t = test_guard();
        Recorder::install();
        static G: Gauge = Gauge::new("test.g", Section::WallClock);
        G.reset();
        G.add(3);
        G.add(2);
        G.sub(4);
        assert_eq!(G.value(), 1);
        assert_eq!(G.peak(), 5);
        G.sub(10);
        assert_eq!(G.value(), 0, "sub saturates at zero");
        Recorder::uninstall();
        Recorder::reset();
    }

    #[test]
    fn span_guard_records_only_when_enabled() {
        let _t = test_guard();
        static S: PhaseSpan = PhaseSpan::new("test.s");
        Recorder::reset();
        {
            let _g = S.enter();
        }
        assert_eq!(S.count(), 0, "disabled span recorded");
        Recorder::install();
        {
            let _g = S.enter();
        }
        assert_eq!(S.count(), 1);
        let (value, ms) = S.time_ms(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(ms >= 0.0);
        assert_eq!(S.count(), 2);
        Recorder::uninstall();
        // Manual timers still measure with telemetry off, without
        // recording.
        let timer = S.start_timer();
        assert!(timer.stop_ms() >= 0.0);
        assert_eq!(S.count(), 2);
        Recorder::reset();
    }

    #[test]
    fn lane_set_trims_trailing_zero_lanes() {
        let _t = test_guard();
        Recorder::install();
        static L: LaneSet = LaneSet::new("test.l");
        L.reset();
        L.record(0, 2);
        L.record(3, 1);
        assert_eq!(L.counts(), vec![2, 0, 0, 1]);
        L.record(MAX_LANES + 5, 1);
        assert_eq!(
            L.counts().len(),
            MAX_LANES,
            "overflow lane folds into the last slot"
        );
        Recorder::uninstall();
        Recorder::reset();
    }
}
