//! Point-in-time capture and rendering of the [`crate::metrics`]
//! catalog. The JSON render is split into a `"deterministic"` object —
//! integers only, emitted in fixed catalog order, so its bytes are
//! identical across runs and thread counts for a deterministic workload
//! — and a `"wall_clock"` object carrying everything timing- or
//! scheduling-dependent.

use crate::instruments::{Section, Unit, HISTOGRAM_BUCKETS};
use crate::metrics;

/// One counter's captured state.
#[derive(Debug, Clone)]
pub struct CounterSnap {
    /// Instrument name.
    pub name: &'static str,
    /// Snapshot section.
    pub section: Section,
    /// Summed tally.
    pub total: u64,
}

/// One gauge's captured state.
#[derive(Debug, Clone)]
pub struct GaugeSnap {
    /// Instrument name.
    pub name: &'static str,
    /// Snapshot section.
    pub section: Section,
    /// Current level.
    pub value: u64,
    /// High-water mark.
    pub peak: u64,
}

/// One histogram's captured state.
#[derive(Debug, Clone)]
pub struct HistogramSnap {
    /// Instrument name.
    pub name: &'static str,
    /// Snapshot section.
    pub section: Section,
    /// Value unit.
    pub unit: Unit,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, count)` in index order.
    pub buckets: Vec<(usize, u64)>,
}

/// One phase span's captured state.
#[derive(Debug, Clone)]
pub struct SpanSnap {
    /// Instrument name.
    pub name: &'static str,
    /// Whether the call count reports into the deterministic section.
    pub deterministic_count: bool,
    /// Scopes recorded.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
    /// Non-empty duration buckets as `(bucket index, count)`.
    pub buckets: Vec<(usize, u64)>,
}

/// One lane set's captured state.
#[derive(Debug, Clone)]
pub struct LaneSnap {
    /// Instrument name.
    pub name: &'static str,
    /// Per-lane tallies, trailing zeros trimmed.
    pub lanes: Vec<u64>,
}

/// A captured catalog, ready to render (see the module docs).
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Counters in catalog order.
    pub counters: Vec<CounterSnap>,
    /// Gauges in catalog order.
    pub gauges: Vec<GaugeSnap>,
    /// Histograms in catalog order.
    pub histograms: Vec<HistogramSnap>,
    /// Spans in catalog order.
    pub spans: Vec<SpanSnap>,
    /// Lane sets in catalog order.
    pub lanes: Vec<LaneSnap>,
}

fn nonzero_buckets(bucket: impl Fn(usize) -> u64) -> Vec<(usize, u64)> {
    (0..HISTOGRAM_BUCKETS)
        .filter_map(|i| {
            let c = bucket(i);
            (c > 0).then_some((i, c))
        })
        .collect()
}

impl TelemetrySnapshot {
    /// Captures the current state of every instrument in the catalog.
    /// Works whether or not a recorder is installed (an idle catalog
    /// snapshots as all zeros).
    pub fn capture() -> Self {
        TelemetrySnapshot {
            counters: metrics::COUNTERS
                .iter()
                .map(|c| CounterSnap {
                    name: c.name(),
                    section: c.section(),
                    total: c.total(),
                })
                .collect(),
            gauges: metrics::GAUGES
                .iter()
                .map(|g| GaugeSnap {
                    name: g.name(),
                    section: g.section(),
                    value: g.value(),
                    peak: g.peak(),
                })
                .collect(),
            histograms: metrics::HISTOGRAMS
                .iter()
                .map(|h| HistogramSnap {
                    name: h.name(),
                    section: h.section(),
                    unit: h.unit(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: nonzero_buckets(|i| h.bucket(i)),
                })
                .collect(),
            spans: metrics::SPANS
                .iter()
                .map(|s| SpanSnap {
                    name: s.name(),
                    deterministic_count: s.deterministic_count(),
                    count: s.count(),
                    total_ns: s.total_ns(),
                    buckets: nonzero_buckets(|i| s.bucket(i)),
                })
                .collect(),
            lanes: metrics::LANE_SETS
                .iter()
                .map(|l| LaneSnap {
                    name: l.name(),
                    lanes: l.counts(),
                })
                .collect(),
        }
    }

    /// The deterministic section alone, as JSON. These bytes are the
    /// comparison key of the determinism contract: identical across runs
    /// and `--threads` values for a deterministic workload (integers
    /// only, fixed catalog order).
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        self.render_deterministic(&mut out, "");
        out
    }

    /// The full snapshot as JSON: `{"deterministic": …, "wall_clock": …}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"deterministic\": ");
        self.render_deterministic(&mut out, "  ");
        out.push_str(",\n  \"wall_clock\": ");
        self.render_wall_clock(&mut out, "  ");
        out.push_str("\n}\n");
        out
    }

    fn render_deterministic(&self, out: &mut String, base: &str) {
        out.push_str("{\n");
        out.push_str(&format!("{base}  \"counters\": {{\n"));
        let det_counters: Vec<_> = self
            .counters
            .iter()
            .filter(|c| c.section == Section::Deterministic)
            .collect();
        for (i, c) in det_counters.iter().enumerate() {
            let comma = if i + 1 < det_counters.len() { "," } else { "" };
            out.push_str(&format!("{base}    \"{}\": {}{comma}\n", c.name, c.total));
        }
        out.push_str(&format!("{base}  }},\n"));
        out.push_str(&format!("{base}  \"spans\": {{\n"));
        let det_spans: Vec<_> = self
            .spans
            .iter()
            .filter(|s| s.deterministic_count)
            .collect();
        for (i, s) in det_spans.iter().enumerate() {
            let comma = if i + 1 < det_spans.len() { "," } else { "" };
            out.push_str(&format!("{base}    \"{}\": {}{comma}\n", s.name, s.count));
        }
        out.push_str(&format!("{base}  }},\n"));
        out.push_str(&format!("{base}  \"histograms\": {{\n"));
        let det_hists: Vec<_> = self
            .histograms
            .iter()
            .filter(|h| h.section == Section::Deterministic)
            .collect();
        for (i, h) in det_hists.iter().enumerate() {
            let comma = if i + 1 < det_hists.len() { "," } else { "" };
            out.push_str(&format!(
                "{base}    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": {}}}{comma}\n",
                h.name,
                h.count,
                h.sum,
                render_buckets(&h.buckets)
            ));
        }
        out.push_str(&format!("{base}  }}\n"));
        out.push_str(&format!("{base}}}"));
    }

    fn render_wall_clock(&self, out: &mut String, base: &str) {
        out.push_str("{\n");
        out.push_str(&format!("{base}  \"counters\": {{\n"));
        let wall_counters: Vec<_> = self
            .counters
            .iter()
            .filter(|c| c.section == Section::WallClock)
            .collect();
        for (i, c) in wall_counters.iter().enumerate() {
            let comma = if i + 1 < wall_counters.len() { "," } else { "" };
            out.push_str(&format!("{base}    \"{}\": {}{comma}\n", c.name, c.total));
        }
        out.push_str(&format!("{base}  }},\n"));
        out.push_str(&format!("{base}  \"gauges\": {{\n"));
        for (i, g) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            out.push_str(&format!(
                "{base}    \"{}\": {{\"value\": {}, \"peak\": {}}}{comma}\n",
                g.name, g.value, g.peak
            ));
        }
        out.push_str(&format!("{base}  }},\n"));
        out.push_str(&format!("{base}  \"spans\": {{\n"));
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            let mean_ns = s.total_ns.checked_div(s.count).unwrap_or(0);
            out.push_str(&format!(
                "{base}    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
                 \"buckets\": {}}}{comma}\n",
                s.name,
                s.count,
                s.total_ns,
                mean_ns,
                render_buckets(&s.buckets)
            ));
        }
        out.push_str(&format!("{base}  }},\n"));
        out.push_str(&format!("{base}  \"lanes\": {{\n"));
        for (i, l) in self.lanes.iter().enumerate() {
            let comma = if i + 1 < self.lanes.len() { "," } else { "" };
            let lanes: Vec<String> = l.lanes.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!(
                "{base}    \"{}\": [{}]{comma}\n",
                l.name,
                lanes.join(", ")
            ));
        }
        out.push_str(&format!("{base}  }}\n"));
        out.push_str(&format!("{base}}}"));
    }

    /// An aligned text table of every instrument that recorded anything,
    /// deterministic rows first.
    pub fn render_text(&self) -> String {
        let mut out = String::from("telemetry snapshot\n  [deterministic]\n");
        let mut det_rows = 0usize;
        for c in self
            .counters
            .iter()
            .filter(|c| c.section == Section::Deterministic)
        {
            if c.total > 0 {
                out.push_str(&format!("  {:<32} {:>12}\n", c.name, c.total));
                det_rows += 1;
            }
        }
        for s in self.spans.iter().filter(|s| s.deterministic_count) {
            if s.count > 0 {
                out.push_str(&format!("  {:<32} {:>12} calls\n", s.name, s.count));
                det_rows += 1;
            }
        }
        for h in self
            .histograms
            .iter()
            .filter(|h| h.section == Section::Deterministic)
        {
            if h.count > 0 {
                out.push_str(&format!(
                    "  {:<32} {:>12} values, sum {} {}\n",
                    h.name,
                    h.count,
                    h.sum,
                    h.unit.suffix()
                ));
                det_rows += 1;
            }
        }
        if det_rows == 0 {
            out.push_str("  (no events recorded)\n");
        }
        out.push_str("  [wall-clock]\n");
        let mut wall_rows = 0usize;
        for s in &self.spans {
            if s.count > 0 {
                let total_ms = s.total_ns as f64 / 1e6;
                let mean_us = s.total_ns as f64 / 1e3 / s.count as f64;
                out.push_str(&format!(
                    "  {:<32} {:>12} calls {:>12.3} ms total {:>10.2} us/call\n",
                    s.name, s.count, total_ms, mean_us
                ));
                wall_rows += 1;
            }
        }
        for c in self
            .counters
            .iter()
            .filter(|c| c.section == Section::WallClock)
        {
            if c.total > 0 {
                out.push_str(&format!("  {:<32} {:>12}\n", c.name, c.total));
                wall_rows += 1;
            }
        }
        for g in &self.gauges {
            if g.value > 0 || g.peak > 0 {
                out.push_str(&format!(
                    "  {:<32} {:>12} (peak {})\n",
                    g.name, g.value, g.peak
                ));
                wall_rows += 1;
            }
        }
        for l in &self.lanes {
            if !l.lanes.is_empty() {
                let lanes: Vec<String> = l.lanes.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("  {:<32} [{}]\n", l.name, lanes.join(", ")));
                wall_rows += 1;
            }
        }
        if wall_rows == 0 {
            out.push_str("  (no events recorded)\n");
        }
        out
    }
}

fn render_buckets(buckets: &[(usize, u64)]) -> String {
    let pairs: Vec<String> = buckets.iter().map(|(i, c)| format!("[{i}, {c}]")).collect();
    format!("[{}]", pairs.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, test_guard, Recorder};

    #[test]
    fn deterministic_json_is_stable_and_integer_only() {
        let _t = test_guard();
        Recorder::install();
        metrics::LOOP_STEPS.add(10);
        metrics::TRACE_FRAMES_WRITTEN.add(3);
        metrics::TRACE_FRAME_BYTES.observe(100);
        metrics::LOOP_OBSERVE.record_ns(1234);
        let a = TelemetrySnapshot::capture();
        let b = TelemetrySnapshot::capture();
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(a.deterministic_json().contains("\"loop.steps\": 10"));
        assert!(a.deterministic_json().contains("\"loop.observe\": 1"));
        assert!(
            !a.deterministic_json().contains('.') || !a.deterministic_json().contains("_ns"),
            "no timing fields may leak into the deterministic section"
        );
        // The wall-clock side carries the span's timing, not the
        // deterministic side.
        assert!(!a.deterministic_json().contains("total_ns"));
        assert!(a.render_json().contains("total_ns"));
        Recorder::uninstall();
        Recorder::reset();
    }

    #[test]
    fn render_text_skips_idle_instruments() {
        let _t = test_guard();
        Recorder::reset();
        let idle = TelemetrySnapshot::capture();
        assert!(idle.render_text().contains("(no events recorded)"));
        Recorder::install();
        metrics::POOL_JOBS_RUN.add(7);
        let busy = TelemetrySnapshot::capture();
        assert!(busy.render_text().contains("pool.jobs_run"));
        assert!(!busy.render_text().contains("pool.panics"));
        Recorder::uninstall();
        Recorder::reset();
    }
}
