//! The hiring loop as a first-class
//! [`Scenario`](eqimpact_core::scenario::Scenario).
//!
//! Each trial runs **both** screeners over the same applicant pool — the
//! retrained [`AdaptiveScreener`](crate::screener::AdaptiveScreener) and
//! the credential-gate baseline — so the rendered artifacts contrast the
//! two policies the way the paper's introduction contrasts its lenders:
//! the gate treats every visible credential identically yet produces
//! unequal impact across races, while the adaptive screener's decisions
//! feed back through track records.

use crate::sim::{run_trial, run_trial_sunk, HiringConfig, HiringOutcome, ScreenerKind};
use eqimpact_census::{Race, FIRST_YEAR};
use eqimpact_core::impact::{conditioned_equal_impact_report, group_limits};
use eqimpact_core::scenario::{
    Artifact, ArtifactSpec, Scale, Scenario, ScenarioConfig, ScenarioReport, TraceMeta,
};
use eqimpact_core::treatment::equal_treatment_report;
use eqimpact_stats::{Json, ToJson};

/// The hiring configuration of a scale.
pub fn scale_config(scale: Scale, screener: ScreenerKind) -> HiringConfig {
    HiringConfig {
        applicants: scale.pick(800, 300),
        trials: scale.pick(5, 2),
        screener,
        ..HiringConfig::default()
    }
}

/// One trial of the scenario: both screeners over the same pool.
pub struct HiringTrial {
    /// The retrained logistic screener's outcome.
    pub adaptive: HiringOutcome,
    /// The credential-gate baseline's outcome.
    pub credential: HiringOutcome,
}

/// The hiring loop as a registry scenario: census applicants, a
/// retrained logistic screener vs a credential gate, and the
/// track-record feedback filter.
pub struct HiringScenario;

/// The trace-header variant name of a screener's recorded loop.
pub fn variant_name(screener: ScreenerKind) -> &'static str {
    match screener {
        ScreenerKind::Adaptive => "adaptive",
        ScreenerKind::Credential => "credential",
    }
}

/// The per-trial [`HiringConfig`] a scenario config resolves to (scale
/// shapes, shard count, the scenario's record policy, and the seed
/// override).
pub fn trial_config(config: &ScenarioConfig, screener: ScreenerKind) -> HiringConfig {
    let base = scale_config(config.scale, screener);
    HiringConfig {
        shards: config.shards,
        policy: Scenario::record_policy(&HiringScenario, config.scale),
        seed: config.seed.unwrap_or(base.seed),
        ..base
    }
}

/// The artifacts [`HiringScenario`] renders.
const ARTIFACTS: &[ArtifactSpec] = &[
    ArtifactSpec {
        name: "hire-rates",
        description: "race-wise hire-rate series, adaptive vs credential-gate",
    },
    ArtifactSpec {
        name: "track-record",
        description: "race-wise mean track-record series, adaptive vs credential-gate",
    },
    ArtifactSpec {
        name: "fairness",
        description: "equal-treatment / equal-impact verdicts per screener",
    },
];

impl Scenario for HiringScenario {
    type Outcome = HiringTrial;

    fn name(&self) -> &'static str {
        "hiring"
    }

    fn description(&self) -> &'static str {
        "hiring loop: census applicants, retrained logistic screener vs credential gate"
    }

    fn artifacts(&self) -> &'static [ArtifactSpec] {
        ARTIFACTS
    }

    fn trials(&self, scale: Scale) -> usize {
        scale_config(scale, ScreenerKind::Adaptive).trials
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn run_trial(&self, config: &ScenarioConfig, trial: usize) -> HiringTrial {
        let run = |screener| {
            let hiring = trial_config(config, screener);
            match &config.trace {
                None => run_trial(&hiring, trial),
                Some(factory) => {
                    let meta = TraceMeta {
                        scenario: "hiring".to_string(),
                        variant: variant_name(screener).to_string(),
                        trial,
                        scale: config.scale,
                        seed: hiring.seed,
                        shards: hiring.shards,
                        delay: hiring.delay,
                        policy: hiring.policy,
                    };
                    let mut sink = factory.sink(&meta);
                    run_trial_sunk(&hiring, trial, &mut sink)
                }
            }
        };
        HiringTrial {
            adaptive: run(ScreenerKind::Adaptive),
            credential: run(ScreenerKind::Credential),
        }
    }

    fn render(&self, config: &ScenarioConfig, outcomes: &[HiringTrial]) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        report.summary.push(format!(
            "effective base seed: {} (trial t uses seed + t)",
            trial_config(config, ScreenerKind::Adaptive).seed
        ));
        if config.wants("hire-rates") {
            render_series(
                outcomes,
                HiringOutcome::race_hire_series,
                "hire-rates",
                "hiring_hire_rates.csv",
                "hire_rate",
                &mut report,
            );
        }
        if config.wants("track-record") {
            render_series(
                outcomes,
                HiringOutcome::race_track_series,
                "track-record",
                "hiring_track_record.csv",
                "mean_track_record",
                &mut report,
            );
        }
        if config.wants("fairness") {
            render_fairness(outcomes, &mut report);
        }
        report
    }
}

/// Cross-trial mean of a per-outcome race series.
fn mean_series(
    outcomes: &[HiringTrial],
    pick: impl Fn(&HiringTrial) -> &HiringOutcome,
    series: impl Fn(&HiringOutcome, Race) -> Vec<f64>,
    race: Race,
) -> Vec<f64> {
    let per_trial: Vec<Vec<f64>> = outcomes.iter().map(|t| series(pick(t), race)).collect();
    let steps = per_trial.first().map(|s| s.len()).unwrap_or(0);
    (0..steps)
        .map(|k| {
            let vals: Vec<f64> = per_trial
                .iter()
                .map(|s| s[k])
                .filter(|v| !v.is_nan())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

/// Renders one race-series artifact:
/// `year,race,adaptive_<what>,credential_<what>`.
fn render_series(
    outcomes: &[HiringTrial],
    series: fn(&HiringOutcome, Race) -> Vec<f64>,
    name: &'static str,
    file: &str,
    what: &str,
    out: &mut ScenarioReport,
) {
    let mut csv = format!("year,race,adaptive_{what},credential_{what}\n");
    let mut final_lines = Vec::new();
    for race in Race::ALL {
        let adaptive = mean_series(outcomes, |t| &t.adaptive, series, race);
        let credential = mean_series(outcomes, |t| &t.credential, series, race);
        for (k, (a, c)) in adaptive.iter().zip(&credential).enumerate() {
            csv.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                FIRST_YEAR + k as u32,
                race.label(),
                a,
                c
            ));
        }
        final_lines.push(format!(
            "  {:<12} adaptive {:.4}, credential-gate {:.4}",
            race.label(),
            adaptive.last().copied().unwrap_or(f64::NAN),
            credential.last().copied().unwrap_or(f64::NAN)
        ));
    }
    out.summary.push(format!(
        "{name} — final {what} by race (mean across trials):"
    ));
    out.summary.extend(final_lines);
    out.artifacts.push(Artifact {
        name,
        file: file.to_string(),
        contents: csv,
    });
}

/// The equal-treatment / equal-impact verdicts of one screener's trial-0
/// record, race-conditioned — computed once and reused for both the JSON
/// artifact and the console summary.
struct FairnessVerdict {
    race_limits: Vec<f64>,
    impact_max_spread: f64,
    json: Json,
}

fn fairness_verdict(outcome: &HiringOutcome) -> FairnessVerdict {
    let classes: Vec<Vec<usize>> = Race::ALL.iter().map(|&r| outcome.race_indices(r)).collect();
    let treatment = equal_treatment_report(&outcome.record, 1e-9);
    let impact = conditioned_equal_impact_report(&outcome.record, &classes, 0.25, 0.05);
    let race_limits = group_limits(&impact, &classes);
    let labels: Vec<Json> = Race::ALL.iter().map(|r| r.label().to_json()).collect();
    let json = Json::obj([
        ("races", Json::Arr(labels)),
        ("race_impact_limits", race_limits.to_json()),
        ("impact_max_spread", impact.max_spread.to_json()),
        ("impact_all_coincide", impact.all_coincide.to_json()),
        (
            "treatment_max_signal_spread",
            treatment.max_signal_spread.to_json(),
        ),
        ("treatment_same_signal", treatment.same_signal.to_json()),
        ("treatment_satisfied", treatment.satisfied.to_json()),
    ]);
    FairnessVerdict {
        race_limits,
        impact_max_spread: impact.max_spread,
        json,
    }
}

fn render_fairness(outcomes: &[HiringTrial], out: &mut ScenarioReport) {
    let Some(first) = outcomes.first() else {
        out.summary.push("fairness: no trials".to_string());
        return;
    };
    let adaptive = fairness_verdict(&first.adaptive);
    let credential = fairness_verdict(&first.credential);
    for (label, v) in [("adaptive", &adaptive), ("credential-gate", &credential)] {
        out.summary.push(format!(
            "fairness [{label}]: race impact limits [{:.4}, {:.4}, {:.4}], spread {:.4}",
            v.race_limits[0], v.race_limits[1], v.race_limits[2], v.impact_max_spread
        ));
    }
    let doc = Json::obj([
        ("adaptive", adaptive.json),
        ("credential_gate", credential.json),
    ]);
    out.artifacts.push(Artifact {
        name: "fairness",
        file: "hiring_fairness.json".to_string(),
        contents: doc.render_pretty(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_core::scenario::{run_scenario, DynScenario};

    #[test]
    fn scale_config_shapes() {
        let paper = scale_config(Scale::Paper, ScreenerKind::Adaptive);
        assert_eq!((paper.applicants, paper.trials), (800, 5));
        let quick = scale_config(Scale::Quick, ScreenerKind::Credential);
        assert_eq!((quick.applicants, quick.trials), (300, 2));
        assert_eq!(quick.screener, ScreenerKind::Credential);
    }

    #[test]
    fn registry_metadata_is_complete() {
        let s: &dyn DynScenario = &HiringScenario;
        assert_eq!(s.name(), "hiring");
        assert!(s.supports_sharding());
        let names: Vec<&str> = s.artifacts().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["hire-rates", "track-record", "fairness"]);
    }

    #[test]
    fn quick_run_produces_all_artifacts() {
        let report = run_scenario(&HiringScenario, &ScenarioConfig::new(Scale::Quick)).unwrap();
        let names: Vec<&str> = report.artifacts.iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["hire-rates", "track-record", "fairness"]);
        // Series CSVs cover 3 races x 19 rounds + header.
        assert_eq!(report.artifacts[0].contents.lines().count(), 3 * 19 + 1);
        assert_eq!(report.artifacts[1].contents.lines().count(), 3 * 19 + 1);
        assert!(report.artifacts[2].contents.contains("credential_gate"));
        // The credential gate does not treat race groups to equal impact:
        // the summary carries both verdicts.
        assert!(report.summary.iter().any(|l| l.contains("credential-gate")));
    }
}
