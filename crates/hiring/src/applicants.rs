//! The applicant-pool population block: census-sampled households whose
//! resources refresh yearly, with on-the-job experience accumulating
//! inside the loop.
//!
//! [`ApplicantPool`] is **shardable** with the same contract as the
//! credit population: all randomness of applicant `i` at round `k` (the
//! yearly resource resample and the placement outcome) comes from the
//! index-keyed [`RowStreams`](eqimpact_core::shard::RowStreams), so the
//! loop's record is bit-identical for any shard count.

use crate::model;
use eqimpact_census::{HouseholdSampler, IncomeTable, Race, FIRST_YEAR, LAST_YEAR};
use eqimpact_core::closed_loop::UserPopulation;
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::shard::{
    shard_bounds, ColsMut, PopulationShard, RowStreams, ShardablePopulation,
};
use eqimpact_stats::SimRng;
use std::ops::Range;
use std::sync::Arc;

/// Width of the visible feature rows: `[credential_code, experience]`.
pub const VISIBLE_WIDTH: usize = 2;

/// Index of the credential code in the visible rows.
pub const VISIBLE_CREDENTIAL: usize = 0;

/// Index of the accumulated experience (successful years) in the visible
/// rows. Visible but unscored by the adaptive screener — the analog of
/// the raw income the credit lender sees but only uses for sizing.
pub const VISIBLE_EXPERIENCE: usize = 1;

/// One applicant: fixed race, yearly-resampled resources, accumulated
/// experience.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Applicant {
    /// Stable index in the pool.
    pub id: usize,
    /// Race, sampled once at generation (the protected attribute the
    /// screener must not score on).
    pub race: Race,
    /// Current household resources in $K (`z_i(k)`), refreshed yearly
    /// from the census income tables.
    pub resources: f64,
    /// Successful placement years so far.
    pub experience: f64,
}

/// The applicant pool: `N` applicants whose resources are resampled every
/// round from the census tables (clamped at the table's last year), with
/// experience growing on successful placements.
pub struct ApplicantPool {
    table: Arc<IncomeTable>,
    applicants: Vec<Applicant>,
    start_year: u32,
}

impl ApplicantPool {
    /// Generates a pool of `n` applicants with a deterministic stream.
    pub fn generate(n: usize, rng: &mut SimRng) -> Self {
        let table = Arc::new(IncomeTable::embedded());
        let sampler = HouseholdSampler::new(&table);
        let mut applicants = Vec::with_capacity(n);
        for id in 0..n {
            let race = sampler.sample_race(rng);
            let resources = sampler
                .sample_income(FIRST_YEAR, race, rng)
                .expect("FIRST_YEAR is always in range");
            applicants.push(Applicant {
                id,
                race,
                resources,
                experience: 0.0,
            });
        }
        ApplicantPool {
            table,
            applicants,
            start_year: FIRST_YEAR,
        }
    }

    /// Race of applicant `i`.
    pub fn race(&self, i: usize) -> Race {
        self.applicants[i].race
    }

    /// All races in applicant order.
    pub fn races(&self) -> Vec<Race> {
        self.applicants.iter().map(|a| a.race).collect()
    }

    /// The applicants.
    pub fn applicants(&self) -> &[Applicant] {
        &self.applicants
    }

    /// The calendar year simulated at round `k` (clamped to the table).
    pub fn year_of_round(&self, k: usize) -> u32 {
        year_of_round(self.start_year, k)
    }
}

/// The calendar year of round `k` from a start year, clamped to the table.
fn year_of_round(start_year: u32, k: usize) -> u32 {
    start_year
        .saturating_add(k.min(u32::MAX as usize) as u32)
        .min(LAST_YEAR)
}

/// The shared observe sweep: resamples resources (rounds > 0) and writes
/// the visible columns, drawing applicant `start_row + j`'s randomness
/// from `streams.for_row(start_row + j)`.
fn observe_applicant_cols(
    table: &IncomeTable,
    applicants: &mut [Applicant],
    start_row: usize,
    k: usize,
    year: u32,
    streams: &RowStreams,
    out: &mut ColsMut<'_>,
) {
    let sampler = HouseholdSampler::new(table);
    let (cred_col, exp_col) = out.cols_pair_mut(VISIBLE_CREDENTIAL, VISIBLE_EXPERIENCE);
    for (j, a) in applicants.iter_mut().enumerate() {
        let i = start_row + j;
        // Round 0 keeps the generation-time resources; later rounds
        // resample from that year's distribution.
        if k > 0 {
            let mut rng = streams.for_row(i);
            a.resources = sampler
                .sample_income(year, a.race, &mut rng)
                .expect("year clamped into range");
        }
        cred_col[j] = model::credential_code(a.resources);
        exp_col[j] = a.experience;
    }
}

/// The shared respond sweep: placement outcome per applicant, randomness
/// keyed by the global row; a success accrues one year of experience.
fn respond_applicant_rows(
    applicants: &mut [Applicant],
    start_row: usize,
    signals: &[f64],
    streams: &RowStreams,
    out: &mut [f64],
) {
    assert_eq!(signals.len(), applicants.len(), "signals length");
    for (j, (a, &signal)) in applicants.iter_mut().zip(signals).enumerate() {
        let mut rng = streams.for_row(start_row + j);
        let y = model::sample_performance(a.resources, a.experience, signal, &mut rng);
        if y == 1.0 {
            a.experience += 1.0;
        }
        out[j] = y;
    }
}

impl UserPopulation for ApplicantPool {
    fn user_count(&self) -> usize {
        self.applicants.len()
    }

    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        let n = self.applicants.len();
        let year = self.year_of_round(k);
        let streams = RowStreams::observe(rng, k);
        out.reshape(n, VISIBLE_WIDTH);
        let mut cols = ColsMut::full(out);
        observe_applicant_cols(
            &self.table,
            &mut self.applicants,
            0,
            k,
            year,
            &streams,
            &mut cols,
        );
    }

    fn respond_into(&mut self, k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        let n = self.applicants.len();
        let streams = RowStreams::respond(rng, k);
        out.clear();
        out.resize(n, 0.0);
        respond_applicant_rows(&mut self.applicants, 0, signals, &streams, out);
    }
}

/// One contiguous row-partition of an [`ApplicantPool`]: owns its
/// applicants, shares the (read-only) income table.
pub struct ApplicantShard {
    table: Arc<IncomeTable>,
    applicants: Vec<Applicant>,
    start_row: usize,
    start_year: u32,
}

impl PopulationShard for ApplicantShard {
    fn rows(&self) -> Range<usize> {
        self.start_row..self.start_row + self.applicants.len()
    }

    fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
        let year = year_of_round(self.start_year, k);
        observe_applicant_cols(
            &self.table,
            &mut self.applicants,
            self.start_row,
            k,
            year,
            streams,
            out,
        );
    }

    fn respond_rows(&mut self, _k: usize, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
        respond_applicant_rows(&mut self.applicants, self.start_row, signals, streams, out);
    }
}

impl ShardablePopulation for ApplicantPool {
    type Shard = ApplicantShard;

    fn feature_width(&self) -> usize {
        VISIBLE_WIDTH
    }

    fn into_row_shards(self, parts: usize) -> Vec<ApplicantShard> {
        let ApplicantPool {
            table,
            mut applicants,
            start_year,
        } = self;
        let bounds = shard_bounds(applicants.len(), parts);
        let mut shards = Vec::with_capacity(bounds.len());
        // Split back-to-front so each chunk is a cheap tail split.
        for range in bounds.into_iter().rev() {
            let chunk = applicants.split_off(range.start);
            shards.push(ApplicantShard {
                table: Arc::clone(&table),
                applicants: chunk,
                start_row: range.start,
                start_year,
            });
        }
        shards.reverse();
        shards
    }

    fn from_row_shards(shards: Vec<ApplicantShard>) -> Self {
        let mut shards = shards;
        shards.sort_by_key(|s| s.start_row);
        let table = shards
            .first()
            .map(|s| Arc::clone(&s.table))
            .unwrap_or_else(|| Arc::new(IncomeTable::embedded()));
        let start_year = shards.first().map(|s| s.start_year).unwrap_or(FIRST_YEAR);
        let mut applicants = Vec::with_capacity(shards.iter().map(|s| s.applicants.len()).sum());
        for shard in shards {
            applicants.extend(shard.applicants);
        }
        ApplicantPool {
            table,
            applicants,
            start_year,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_and_race_access() {
        let mut rng = SimRng::new(1);
        let pool = ApplicantPool::generate(300, &mut rng);
        assert_eq!(pool.user_count(), 300);
        assert_eq!(pool.races().len(), 300);
        assert_eq!(pool.race(0), pool.races()[0]);
        assert!(pool.applicants().iter().all(|a| a.resources > 0.0));
        assert!(pool.applicants().iter().all(|a| a.experience == 0.0));
    }

    #[test]
    fn year_clamping() {
        let mut rng = SimRng::new(2);
        let pool = ApplicantPool::generate(10, &mut rng);
        assert_eq!(pool.year_of_round(0), 2002);
        assert_eq!(pool.year_of_round(18), 2020);
        assert_eq!(pool.year_of_round(50), 2020);
    }

    #[test]
    fn observe_exposes_credential_and_experience() {
        let mut rng = SimRng::new(3);
        let mut pool = ApplicantPool::generate(50, &mut rng);
        let visible = pool.observe(0, &mut rng);
        assert_eq!(visible.row_count(), 50);
        assert_eq!(visible.width(), VISIBLE_WIDTH);
        for (j, a) in pool.applicants().iter().enumerate() {
            assert_eq!(
                visible.col(VISIBLE_CREDENTIAL)[j],
                model::credential_code(a.resources)
            );
            assert_eq!(visible.col(VISIBLE_EXPERIENCE)[j], 0.0);
        }
    }

    #[test]
    fn successful_placements_accrue_experience() {
        let mut rng = SimRng::new(4);
        let mut pool = ApplicantPool::generate(200, &mut rng);
        pool.observe(0, &mut rng);
        // Hire everyone: the well-resourced mostly succeed.
        let hired = vec![1.0; 200];
        let actions = pool.respond(0, &hired, &mut rng);
        let successes: f64 = actions.iter().sum();
        assert!(successes > 50.0, "successes = {successes}");
        let accrued: f64 = pool.applicants().iter().map(|a| a.experience).sum();
        assert_eq!(accrued, successes);
        // Reject everyone: nothing accrues and every outcome is 0.
        let rejected = vec![0.0; 200];
        let actions = pool.respond(1, &rejected, &mut rng);
        assert!(actions.iter().all(|&y| y == 0.0));
        let still: f64 = pool.applicants().iter().map(|a| a.experience).sum();
        assert_eq!(still, accrued);
    }

    #[test]
    fn shard_roundtrip_preserves_applicants() {
        let mut rng = SimRng::new(5);
        let pool = ApplicantPool::generate(97, &mut rng);
        let races = pool.races();
        let shards = pool.into_row_shards(5);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards[0].rows().start, 0);
        assert_eq!(shards.last().unwrap().rows().end, 97);
        let back = ApplicantPool::from_row_shards(shards);
        assert_eq!(back.user_count(), 97);
        assert_eq!(back.races(), races);
    }

    #[test]
    fn sharded_sweeps_match_sequential() {
        let mut rng = SimRng::new(6);
        let n = 60;
        let mut pool = ApplicantPool::generate(n, &mut rng);
        let mut shards = ApplicantPool::generate(n, &mut SimRng::new(6)).into_row_shards(3);

        let root = SimRng::new(40);
        for k in 0..4 {
            let mut seq_rng = root.clone();
            let visible = pool.observe(k, &mut seq_rng);
            let signals: Vec<f64> = visible.col(VISIBLE_CREDENTIAL).to_vec();
            let actions = pool.respond(k, &signals, &mut seq_rng);

            let observe = RowStreams::observe(&root, k);
            let respond = RowStreams::respond(&root, k);
            let mut vis = FeatureMatrix::zeros(n, VISIBLE_WIDTH);
            let mut act = vec![0.0; n];
            for shard in shards.iter_mut() {
                let rows = shard.rows();
                let cols: Vec<&mut [f64]> = vis
                    .col_slices_mut()
                    .into_iter()
                    .map(|c| &mut c[rows.start..rows.end])
                    .collect();
                let mut out = ColsMut::new(cols, rows.clone());
                shard.observe_cols(k, &observe, &mut out);
                shard.respond_rows(k, &signals[rows.clone()], &respond, &mut act[rows]);
            }
            assert_eq!(vis, visible, "round {k} features");
            assert_eq!(act, actions, "round {k} actions");
        }
    }
}
