//! The hiring scenario's sweep face: off-policy candidate grids over
//! recorded hiring traces (`experiments sweep hiring`).
//!
//! Candidates combine the tracer's screener policies with the
//! track-record filter and a hire threshold on the signal channel. As in
//! the credit sweep, the checkpointed fast-path engages only when the
//! candidate's policy is the trace's recorded variant.

use crate::trace::{build_screener, DECISION_THRESHOLD, POLICIES};
use crate::track::TrackRecordFilter;
use eqimpact_lab::{CandidateGrid, CandidateSpec, SweepEval, SweepTarget};
use eqimpact_trace::scenario::unknown_policy;
use eqimpact_trace::{evaluate_off_policy_with, OffPolicyOptions, TraceError, TraceReader};
use std::io::Read;

/// The sweep face of the hiring scenario (registered next to
/// [`HiringTracer`](crate::HiringTracer) in the sweep registry).
pub struct HiringSweep;

/// The screener policies a sweep can instantiate (the tracer's list).
const POLICY_NAMES: &[&str] = &["adaptive", "credential"];

/// The feedback filters a sweep can instantiate.
const FILTER_NAMES: &[&str] = &["track-record"];

impl SweepTarget for HiringSweep {
    fn name(&self) -> &'static str {
        "hiring"
    }

    fn default_grid(&self) -> CandidateGrid {
        CandidateGrid::new(
            POLICY_NAMES.iter().copied(),
            FILTER_NAMES.iter().copied(),
            [DECISION_THRESHOLD, 0.25, 0.5],
        )
    }

    fn known_policies(&self) -> &'static [&'static str] {
        POLICY_NAMES
    }

    fn known_filters(&self) -> &'static [&'static str] {
        FILTER_NAMES
    }

    fn evaluate(
        &self,
        input: &mut dyn Read,
        candidate: &CandidateSpec,
    ) -> Result<SweepEval, TraceError> {
        let reader = TraceReader::new(input)?;
        let header = reader.header().clone();
        let screener = build_screener(&candidate.policy)
            .ok_or_else(|| unknown_policy(&candidate.policy, POLICIES))?;
        let options = OffPolicyOptions {
            use_checkpoints: header.checkpoints && candidate.policy == header.variant,
        };
        let outcome = evaluate_off_policy_with(
            reader,
            screener,
            TrackRecordFilter::new(),
            candidate.threshold,
            options,
        )?;
        Ok(SweepEval { header, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::variant_name;
    use crate::sim::{run_trial_sunk, HiringConfig, ScreenerKind};
    use eqimpact_core::scenario::{Scale, TraceMeta};
    use eqimpact_trace::{TraceHeader, TraceStepSink};

    fn checkpointed_trace() -> Vec<u8> {
        let config = HiringConfig {
            applicants: 90,
            rounds: 6,
            trials: 1,
            seed: 13,
            screener: ScreenerKind::Adaptive,
            ..HiringConfig::default()
        };
        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: "hiring".to_string(),
            variant: variant_name(config.screener).to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: config.seed,
            shards: config.shards,
            delay: config.delay,
            policy: config.policy,
        })
        .with_checkpoints();
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        run_trial_sunk(&config, 0, &mut sink);
        sink.finish().expect("trace finishes")
    }

    #[test]
    fn grid_axes_match_the_known_names() {
        let grid = HiringSweep.default_grid();
        assert_eq!(grid.policies, POLICY_NAMES);
        assert_eq!(grid.filters, FILTER_NAMES);
        assert!(!grid.is_empty());
    }

    #[test]
    fn checkpoint_fast_path_matches_the_retrained_answer() {
        let bytes = checkpointed_trace();
        let fast = CandidateSpec {
            index: 0,
            policy: "adaptive".to_string(),
            filter: "track-record".to_string(),
            threshold: 0.0,
        };
        let eval = HiringSweep
            .evaluate(&mut bytes.as_slice(), &fast)
            .expect("sweep evaluates");
        assert!(eval.header.checkpoints);
        let slow = evaluate_off_policy_with(
            TraceReader::new(&mut bytes.as_slice()).unwrap(),
            build_screener("adaptive").unwrap(),
            TrackRecordFilter::new(),
            0.0,
            OffPolicyOptions {
                use_checkpoints: false,
            },
        )
        .expect("retrained evaluation");
        assert_eq!(eval.outcome.agreement, slow.agreement);
        assert_eq!(eval.outcome.counterfactual, slow.counterfactual);
    }

    #[test]
    fn cross_policy_candidates_are_evaluated_without_checkpoints() {
        let bytes = checkpointed_trace();
        let candidate = CandidateSpec {
            index: 1,
            policy: "credential".to_string(),
            filter: "track-record".to_string(),
            threshold: 0.0,
        };
        let eval = HiringSweep
            .evaluate(&mut bytes.as_slice(), &candidate)
            .expect("sweep evaluates");
        let plain = evaluate_off_policy_with(
            TraceReader::new(&mut bytes.as_slice()).unwrap(),
            build_screener("credential").unwrap(),
            TrackRecordFilter::new(),
            0.0,
            OffPolicyOptions {
                use_checkpoints: false,
            },
        )
        .expect("retrained evaluation");
        assert_eq!(eval.outcome.counterfactual, plain.counterfactual);
    }
}
