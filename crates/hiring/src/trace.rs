//! Replay and off-policy evaluation of recorded hiring traces.
//!
//! [`HiringTracer`] rebuilds the screener named by a trace's `variant`
//! header (adaptive or credential-gate) together with a fresh
//! [`TrackRecordFilter`], replaying a recorded hiring round sequence
//! byte-identically. Off-policy, it answers the cross-screener
//! counterfactual directly from the log: "who would the credential gate
//! have hired among the applicants the adaptive screener actually saw
//! (and vice versa), and what does that do to the race-wise hire rates?"

use crate::screener::{AdaptiveScreener, CredentialScreener};
use crate::track::TrackRecordFilter;
use eqimpact_core::closed_loop::AiSystem;
use eqimpact_trace::scenario::{unknown_policy, PolicySpec, ReplaySummary, TraceReplayer};
use eqimpact_trace::{
    evaluate_off_policy, off_policy_report, OffPolicyReport, ReplayRunner, TraceError, TraceReader,
};
use std::io::Read;

/// Positive-decision threshold on the signal channel: positive signals
/// are hires.
pub const DECISION_THRESHOLD: f64 = 0.0;

/// The replay face of the hiring scenario (registered next to
/// [`HiringScenario`](crate::HiringScenario) in the tracer registry).
pub struct HiringTracer;

/// The alternative policies [`HiringTracer`] can evaluate.
pub(crate) const POLICIES: &[PolicySpec] = &[
    PolicySpec {
        name: "adaptive",
        description: "the retrained logistic screener",
    },
    PolicySpec {
        name: "credential",
        description: "the credential-gate equal-treatment baseline",
    },
];

/// Builds the screener a variant/policy name denotes.
pub(crate) fn build_screener(name: &str) -> Option<Box<dyn AiSystem>> {
    match name {
        "adaptive" => Some(Box::new(AdaptiveScreener::default_config())),
        "credential" => Some(Box::new(CredentialScreener::new())),
        _ => None,
    }
}

impl TraceReplayer for HiringTracer {
    fn name(&self) -> &'static str {
        "hiring"
    }

    fn policies(&self) -> &'static [PolicySpec] {
        POLICIES
    }

    fn replay(&self, reader: TraceReader<&mut dyn Read>) -> Result<ReplaySummary, TraceError> {
        let header = reader.header().clone();
        let screener =
            build_screener(&header.variant).ok_or_else(|| TraceError::UnknownVariant {
                scenario: header.scenario.clone(),
                variant: header.variant.clone(),
            })?;
        let record = ReplayRunner::new(reader, screener, TrackRecordFilter::new()).run()?;
        Ok(ReplaySummary { header, record })
    }

    fn evaluate(
        &self,
        reader: TraceReader<&mut dyn Read>,
        policy: &str,
    ) -> Result<OffPolicyReport, TraceError> {
        let header = reader.header().clone();
        let screener = build_screener(policy).ok_or_else(|| unknown_policy(policy, POLICIES))?;
        let outcome = evaluate_off_policy(
            reader,
            screener,
            TrackRecordFilter::new(),
            DECISION_THRESHOLD,
        )?;
        Ok(off_policy_report(
            &outcome,
            &header,
            policy,
            DECISION_THRESHOLD,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::variant_name;
    use crate::sim::{run_trial_sunk, HiringConfig, ScreenerKind};
    use eqimpact_core::scenario::Scale;
    use eqimpact_trace::{TraceHeader, TraceStepSink, FORMAT_VERSION};

    fn record_trace(config: &HiringConfig, trial: usize) -> (Vec<u8>, eqimpact_core::LoopRecord) {
        record_trace_with(config, trial, false)
    }

    fn record_trace_with(
        config: &HiringConfig,
        trial: usize,
        checkpoints: bool,
    ) -> (Vec<u8>, eqimpact_core::LoopRecord) {
        let header = TraceHeader {
            version: FORMAT_VERSION,
            scenario: "hiring".to_string(),
            variant: variant_name(config.screener).to_string(),
            trial,
            scale: Scale::Quick,
            seed: config.seed,
            shards: config.shards,
            delay: config.delay,
            policy: config.policy,
            checkpoints,
        };
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        let outcome = run_trial_sunk(config, trial, &mut sink);
        (sink.finish().expect("trace finishes"), outcome.record)
    }

    fn small_config(screener: ScreenerKind) -> HiringConfig {
        HiringConfig {
            applicants: 120,
            rounds: 8,
            trials: 1,
            seed: 3,
            screener,
            ..HiringConfig::default()
        }
    }

    #[test]
    fn replay_reproduces_both_screeners_byte_identically() {
        for screener in [ScreenerKind::Adaptive, ScreenerKind::Credential] {
            let config = small_config(screener);
            let (bytes, original) = record_trace(&config, 0);
            let mut input: &[u8] = &bytes;
            let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
            let summary = HiringTracer.replay(reader).unwrap();
            assert_eq!(summary.record, original, "{screener:?}");
        }
    }

    #[test]
    fn checkpointed_replay_skips_retraining_byte_identically() {
        let config = small_config(ScreenerKind::Adaptive);
        let (bytes, original) = record_trace_with(&config, 0, true);
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        let mut runner = eqimpact_trace::ReplayRunner::new(
            reader,
            AdaptiveScreener::default_config(),
            TrackRecordFilter::new(),
        );
        let record = runner.run().unwrap();
        assert_eq!(record, original);
        assert!(
            runner.checkpoints_restored() > 0,
            "checkpoint fast-path never engaged"
        );
        let (screener, _) = runner.into_parts();
        assert_eq!(screener.refits(), 0, "restore must replace every retrain");
    }

    #[test]
    fn cross_screener_off_policy_reports_hire_rate_contrast() {
        // Record the adaptive screener, ask what the credential gate
        // would have done with the same applicants.
        let (bytes, _) = record_trace(&small_config(ScreenerKind::Adaptive), 0);
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        let report = HiringTracer.evaluate(reader, "credential").unwrap();
        assert_eq!(report.policy, "credential");
        assert_eq!(report.variant, "adaptive");
        // The gate hires a strict subset rate: positive rates differ.
        assert!(report.candidate.positive_rate < report.baseline.positive_rate);
        // And its equal treatment of credentials lands unequal impact:
        // a positive demographic-parity gap.
        assert!(report.candidate.parity_gap > 0.0);
        assert!(report.agreement.is_finite());
    }
}
