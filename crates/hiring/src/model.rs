//! The job-performance model: a Gaussian conditional-independence analog
//! of the credit study's eq. (10)-(11), retargeted at hiring.
//!
//! An applicant's **resources** `z_i(k)` ($K household income, sampled
//! from the census tables as a socioeconomic proxy) determine whether a
//! job placement succeeds: holding the position costs a fixed
//! [`SUPPORT_COST_K`] per year (commuting, childcare, relocation), and
//! accumulated on-the-job [`experience`](EXPERIENCE_BONUS_K) adds
//! effective resources. The **readiness margin** is the fraction of
//! effective resources left after the support cost, and a placement
//! succeeds with probability `Φ(3 x)` on a positive margin — the same
//! probit shape as the paper's repayment model, so the theory transfers
//! unchanged.

use eqimpact_stats::dist::std_normal_cdf;
use eqimpact_stats::SimRng;

/// Annual cost of holding the job, $K (commuting, childcare, …).
pub const SUPPORT_COST_K: f64 = 20.0;

/// Effective extra resources per year of accumulated experience, $K.
pub const EXPERIENCE_BONUS_K: f64 = 2.0;

/// Years of experience beyond which the bonus saturates.
pub const EXPERIENCE_CAP: f64 = 10.0;

/// Sensitivity of the success probability (`Φ(3 x)`).
pub const SUCCESS_SENSITIVITY: f64 = 3.0;

/// Resource threshold of the visible credential code `1_{z ≥ 35}` ($K):
/// the screener sees only whether the applicant's household clears it
/// (a degree/certification proxy), never the raw resources.
pub const CREDENTIAL_THRESHOLD_K: f64 = 35.0;

/// The readiness margin: the fraction of effective resources left after
/// the support cost, `x = (z + 2·min(e, 10) − 20) / z`.
///
/// # Panics
/// Panics for non-positive resources.
pub fn readiness(resources_k: f64, experience: f64) -> f64 {
    assert!(resources_k > 0.0, "readiness: resources must be positive");
    let effective = resources_k + EXPERIENCE_BONUS_K * experience.min(EXPERIENCE_CAP);
    (effective - SUPPORT_COST_K) / resources_k
}

/// Success probability given the readiness margin: `Φ(3 x)` for `x > 0`,
/// zero otherwise.
pub fn success_probability(margin: f64) -> f64 {
    if margin <= 0.0 {
        0.0
    } else {
        std_normal_cdf(SUCCESS_SENSITIVITY * margin)
    }
}

/// Samples the binary placement outcome `y_i(k)`: forced 0 when not hired
/// (`signal <= 0`) or the margin is non-positive, Bernoulli(`Φ(3x)`)
/// otherwise.
pub fn sample_performance(resources_k: f64, experience: f64, signal: f64, rng: &mut SimRng) -> f64 {
    if signal <= 0.0 {
        return 0.0;
    }
    let x = readiness(resources_k, experience);
    if x <= 0.0 {
        return 0.0;
    }
    if rng.bernoulli(success_probability(x)) {
        1.0
    } else {
        0.0
    }
}

/// The visible credential code `1_{z ≥ 35}`.
pub fn credential_code(resources_k: f64) -> f64 {
    if resources_k >= CREDENTIAL_THRESHOLD_K {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_margin_shape() {
        // z = 50, no experience: x = (50 - 20)/50 = 0.6.
        assert!((readiness(50.0, 0.0) - 0.6).abs() < 1e-12);
        // Experience adds capped effective resources.
        assert!((readiness(50.0, 5.0) - 0.8).abs() < 1e-12);
        assert_eq!(readiness(50.0, 10.0), readiness(50.0, 25.0));
        // Below the support cost the margin is negative.
        assert!(readiness(15.0, 0.0) < 0.0);
    }

    #[test]
    fn success_probability_branches() {
        assert_eq!(success_probability(-0.1), 0.0);
        assert_eq!(success_probability(0.0), 0.0);
        assert!((success_probability(1.0 / 3.0) - std_normal_cdf(1.0)).abs() < 1e-15);
        assert!(success_probability(0.9) > 0.99);
    }

    #[test]
    fn forced_failures() {
        let mut rng = SimRng::new(1);
        // Not hired: no outcome to observe.
        assert_eq!(sample_performance(100.0, 0.0, 0.0, &mut rng), 0.0);
        // Resources below the support cost: the placement always fails.
        assert_eq!(sample_performance(12.0, 0.0, 1.0, &mut rng), 0.0);
    }

    #[test]
    fn well_resourced_applicants_mostly_succeed() {
        let mut rng = SimRng::new(2);
        let n = 5_000;
        let ok: f64 = (0..n)
            .map(|_| sample_performance(120.0, 0.0, 1.0, &mut rng))
            .sum();
        assert!(ok / n as f64 > 0.99);
    }

    #[test]
    fn experience_raises_success_odds() {
        // z = 25: x goes from 0.2 (rookie) to 1.0 (10 years).
        assert!(
            success_probability(readiness(25.0, 10.0))
                > success_probability(readiness(25.0, 0.0)) + 0.2
        );
    }

    #[test]
    fn credential_threshold() {
        assert_eq!(credential_code(34.999), 0.0);
        assert_eq!(credential_code(35.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resources_rejected() {
        readiness(0.0, 0.0);
    }
}
