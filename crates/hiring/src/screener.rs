//! The screener: two implementations of the loop's AI-system block.
//!
//! * [`AdaptiveScreener`] — the retrained logistic screener: hire
//!   everyone for a warmup period, then refit a logistic model each round
//!   on `(track_record, credential)` over past placements and hire by
//!   cut-off — the hiring analog of the paper's scorecard lender;
//! * [`CredentialScreener`] — the "most equal treatment" baseline: hire
//!   exactly the credentialed, forever. Identical treatment of identical
//!   visible features, unequal impact across races because credential
//!   rates differ.
//!
//! The broadcast signal `π(k, i)` is `1.0` (offer) or `0.0` (reject).
//! Both screeners are [`ShardableAi`]: the per-row decision reads `&self`
//! only, so each round's screening sweep parallelizes over row shards
//! with bit-identical records.

use crate::applicants::VISIBLE_CREDENTIAL;
use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::closed_loop::{AiSystem, Feedback};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::shard::{ColsView, ShardableAi};
use eqimpact_ml::logistic::{LogisticModel, LogisticRegression};

/// The default warmup: rounds during which everyone is hired before the
/// first model exists.
pub const WARMUP_ROUNDS: usize = 2;

/// The default decision cut-off on the linear score.
pub const CUTOFF: f64 = 0.5;

/// The retrained logistic screener.
pub struct AdaptiveScreener {
    warmup_rounds: usize,
    cutoff: f64,
    fitter: LogisticRegression,
    /// `track_record_i(k−1)` as known to the screener (from the last
    /// feedback); `1.0` (clean record) for applicants never seen.
    prev_track: Vec<f64>,
    /// Accumulated training rows `(track_record, credential)`, flat.
    train_rows: FeatureMatrix,
    /// Accumulated labels `y_i(j)` (hired applicants only).
    train_labels: Vec<f64>,
    model: Option<LogisticModel>,
    refits: usize,
}

impl AdaptiveScreener {
    /// Creates the screener with the default warmup and cut-off.
    pub fn default_config() -> Self {
        AdaptiveScreener::new(WARMUP_ROUNDS, CUTOFF)
    }

    /// Creates a screener with explicit warmup and cut-off.
    pub fn new(warmup_rounds: usize, cutoff: f64) -> Self {
        AdaptiveScreener {
            warmup_rounds,
            cutoff,
            fitter: LogisticRegression::default(),
            prev_track: Vec::new(),
            train_rows: FeatureMatrix::new(2),
            train_labels: Vec::new(),
            model: None,
            refits: 0,
        }
    }

    /// The current model, if any retraining has happened.
    pub fn model(&self) -> Option<&LogisticModel> {
        self.model.as_ref()
    }

    /// Number of refits performed.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// Accumulated training-set size.
    pub fn training_size(&self) -> usize {
        self.train_labels.len()
    }
}

impl AiSystem for AdaptiveScreener {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        // Sequential-path safety net only: a stateful shard-capable AI
        // block is a per-population block (see `ShardableAi`'s docs) —
        // reuse against a differently sized pool is out of contract, and
        // the `&self` sharded sweep cannot resize. This resize merely
        // keeps the sequential path from indexing another pool's records
        // until the first retrain, mirroring the credit lenders.
        if self.prev_track.len() != visible.row_count() {
            self.prev_track = vec![1.0; visible.row_count()];
        }
        self.signals_full(k, visible, out);
    }

    fn retrain(&mut self, _k: usize, feedback: &Feedback) {
        if self.prev_track.len() != feedback.actions.len() {
            self.prev_track = vec![1.0; feedback.actions.len()];
        }
        // Training rows pair the screener's *previous* knowledge of the
        // track record with this round's credential and outcome, hired
        // applicants only.
        let cred = feedback.visible.col(VISIBLE_CREDENTIAL);
        for (i, &action) in feedback.actions.iter().enumerate() {
            if feedback.signals[i] > 0.0 {
                self.train_rows.push_row(&[self.prev_track[i], cred[i]]);
                self.train_labels.push(action);
            }
        }
        self.prev_track.clone_from(&feedback.per_user);

        if !self.train_labels.is_empty() {
            let data = eqimpact_ml::Dataset::from_columns(
                &self.train_rows.col_slices(),
                &self.train_labels,
            )
            .expect("rows built consistently");
            if let Ok(model) = self.fitter.fit(&data) {
                self.model = Some(model);
                self.refits += 1;
            }
        }
    }

    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        out.push_field("prev_track", &self.prev_track);
        if let Some(model) = &self.model {
            out.push_scalar("model.intercept", model.intercept);
            out.push_field("model.coefficients", &model.coefficients);
            out.push_scalar("model.iterations", model.iterations as f64);
            out.push_scalar("model.converged", if model.converged { 1.0 } else { 0.0 });
        }
        true
    }

    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let Some(prev_track) = checkpoint.field("prev_track") else {
            return false;
        };
        self.prev_track.clear();
        self.prev_track.extend_from_slice(prev_track);
        // The model is present exactly when its intercept was captured;
        // the training set stays untouched — decisions never read it.
        self.model = checkpoint
            .scalar("model.intercept")
            .map(|intercept| LogisticModel {
                intercept,
                coefficients: checkpoint
                    .field("model.coefficients")
                    .unwrap_or(&[])
                    .to_vec(),
                iterations: checkpoint.scalar("model.iterations").unwrap_or(0.0) as usize,
                converged: checkpoint.scalar("model.converged") == Some(1.0),
            });
        true
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl ShardableAi for AdaptiveScreener {
    fn signals_batch(&self, k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        if k < self.warmup_rounds || self.model.is_none() {
            // Warmup, or no model yet: keep hiring.
            for o in out.iter_mut() {
                *o = 1.0;
            }
            return;
        }
        let m = self.model.as_ref().expect("checked above");
        // Applicants beyond the last feedback carry a clean record,
        // matching the retrain sizing; the whole lane is then scored in
        // one batched pass.
        let prev: Vec<f64> = visible
            .rows()
            .map(|i| self.prev_track.get(i).copied().unwrap_or(1.0))
            .collect();
        let mut scores = vec![0.0; out.len()];
        m.linear_scores_into(&[&prev, visible.col(VISIBLE_CREDENTIAL)], &mut scores);
        for (o, &s) in out.iter_mut().zip(&scores) {
            *o = if s >= self.cutoff { 1.0 } else { 0.0 };
        }
    }
}

/// The credential-gate baseline: hire exactly the credentialed.
#[derive(Debug, Clone, Default)]
pub struct CredentialScreener;

impl CredentialScreener {
    /// Creates the screener.
    pub fn new() -> Self {
        CredentialScreener
    }
}

impl AiSystem for CredentialScreener {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        self.signals_full(k, visible, out);
    }

    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

impl ShardableAi for CredentialScreener {
    fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        out.copy_from_slice(visible.col(VISIBLE_CREDENTIAL));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visible_matrix(rows: &[(f64, f64)]) -> FeatureMatrix {
        let nested: Vec<Vec<f64>> = rows.iter().map(|&(c, e)| vec![c, e]).collect();
        FeatureMatrix::from_nested(&nested)
    }

    #[test]
    fn adaptive_warmup_hires_everyone() {
        let mut s = AdaptiveScreener::default_config();
        let visible = visible_matrix(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(s.signals(0, &visible), vec![1.0, 1.0]);
        assert_eq!(s.signals(1, &visible), vec![1.0, 1.0]);
        assert!(s.model().is_none());
    }

    #[test]
    fn adaptive_learns_and_rejects() {
        let mut s = AdaptiveScreener::default_config();
        // Synthetic history: uncredentialed placements fail, credentialed
        // succeed, with track-record contrast.
        let n = 400;
        let rows: Vec<(f64, f64)> = (0..n)
            .map(|i| (if i % 2 == 0 { 0.0 } else { 1.0 }, 0.0))
            .collect();
        let visible = visible_matrix(&rows);
        let signals = vec![1.0; n];
        let actions: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let per_user = actions.clone();
        let feedback = Feedback {
            step: 0,
            per_user,
            aggregate: 0.5,
            visible: visible.clone(),
            signals,
            actions,
        };
        s.retrain(0, &feedback);
        assert_eq!(s.refits(), 1);
        assert_eq!(s.training_size(), n);
        let model = s.model().unwrap();
        assert!(
            model.coefficients[1] > 0.0,
            "credential coef = {}",
            model.coefficients[1]
        );
        // Past warmup, the failed uncredentialed applicant is rejected and
        // the successful credentialed one hired.
        let decisions = s.signals(2, &visible);
        assert_eq!(decisions[0], 0.0);
        assert_eq!(decisions[1], 1.0);
    }

    #[test]
    fn credential_screener_gates_on_the_code() {
        let mut s = CredentialScreener::new();
        let visible = visible_matrix(&[(1.0, 3.0), (0.0, 9.0)]);
        // Experience is visible but never consulted.
        assert_eq!(s.signals(0, &visible), vec![1.0, 0.0]);
        assert_eq!(s.signals(7, &visible), vec![1.0, 0.0]);
    }
}
