//! Simulation drivers: one trial and the multi-trial hiring protocol.

use crate::applicants::ApplicantPool;
use crate::screener::{AdaptiveScreener, CredentialScreener};
use crate::track::TrackRecordFilter;
use eqimpact_census::Race;
use eqimpact_core::closed_loop::LoopBuilder;
use eqimpact_core::recorder::{LoopRecord, RecordPolicy, StepSink};
use eqimpact_core::shard::ShardableAi;
use eqimpact_core::trials::run_trials_with;
use eqimpact_ml::logistic::LogisticModel;
use eqimpact_stats::SimRng;

/// Which screener drives the loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScreenerKind {
    /// The retrained logistic screener.
    Adaptive,
    /// The credential-gate equal-treatment baseline.
    Credential,
}

/// Configuration of a hiring experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiringConfig {
    /// Number of applicants.
    pub applicants: usize,
    /// Number of yearly hiring rounds.
    pub rounds: usize,
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `t` uses stream `seed + t`.
    pub seed: u64,
    /// The screener.
    pub screener: ScreenerKind,
    /// Feedback delay in rounds (the paper's Fig. 1 delay; 1 by default).
    pub delay: usize,
    /// Intra-trial shards: `1` runs the sequential `LoopRunner`, `n > 1`
    /// the `ShardedRunner` over `n` row shards, `0` auto-shards. The
    /// record is bit-identical for every setting.
    pub shards: usize,
    /// How much telemetry to keep.
    pub policy: RecordPolicy,
}

impl Default for HiringConfig {
    fn default() -> Self {
        HiringConfig {
            applicants: 800,
            rounds: 19,
            trials: 5,
            seed: 1_990,
            screener: ScreenerKind::Adaptive,
            delay: 1,
            shards: 1,
            policy: RecordPolicy::Full,
        }
    }
}

/// Everything produced by one trial.
#[derive(Debug, Clone)]
pub struct HiringOutcome {
    /// Full loop telemetry; `filtered[k][i]` is applicant `i`'s track
    /// record at round `k`.
    pub record: LoopRecord,
    /// Race per applicant (fixed at generation).
    pub races: Vec<Race>,
    /// The screener's final logistic model, when the screener is
    /// [`ScreenerKind::Adaptive`] and at least one refit happened.
    pub model: Option<LogisticModel>,
}

impl HiringOutcome {
    /// Applicant indices of a race.
    pub fn race_indices(&self, race: Race) -> Vec<usize> {
        self.races
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == race)
            .map(|(i, _)| i)
            .collect()
    }

    /// The race-wise hire-rate series: fraction of the race hired at each
    /// round (the equal-treatment view).
    pub fn race_hire_series(&self, race: Race) -> Vec<f64> {
        let members = self.race_indices(race);
        (0..self.record.steps())
            .map(|k| {
                if members.is_empty() {
                    f64::NAN
                } else {
                    let signals = self.record.signals(k);
                    members.iter().filter(|&&i| signals[i] > 0.0).count() as f64
                        / members.len() as f64
                }
            })
            .collect()
    }

    /// The race-wise mean track-record series (the equal-impact view).
    pub fn race_track_series(&self, race: Race) -> Vec<f64> {
        let members = self.race_indices(race);
        (0..self.record.steps())
            .map(|k| {
                if members.is_empty() {
                    f64::NAN
                } else {
                    let filtered = self.record.filtered(k);
                    members.iter().map(|&i| filtered[i]).sum::<f64>() / members.len() as f64
                }
            })
            .collect()
    }

    /// Overall hire rate at round `k`.
    pub fn hire_rate(&self, k: usize) -> f64 {
        let signals = self.record.signals(k);
        signals.iter().filter(|&&s| s > 0.0).count() as f64 / signals.len() as f64
    }
}

/// Runs one screener through the loop with static dispatch (sequential or
/// sharded per `config.shards`; records are bit-identical either way).
fn run_screener<S: ShardableAi, K: StepSink>(
    screener: S,
    pool: ApplicantPool,
    config: &HiringConfig,
    loop_rng: &mut SimRng,
    sink: &mut K,
) -> (LoopRecord, S) {
    let builder = LoopBuilder::new(screener, pool)
        .filter(TrackRecordFilter::new())
        .delay(config.delay)
        .record(config.policy);
    if config.shards == 1 {
        let mut runner = builder.build();
        let record = runner.run_with_sink(config.rounds, loop_rng, sink);
        let (screener, _pool, _filter) = runner.into_parts();
        (record, screener)
    } else {
        let mut runner = builder.shards(config.shards).build_sharded();
        let record = runner.run_with_sink(config.rounds, loop_rng, sink);
        let (screener, _pool, _filter) = runner.into_parts();
        (record, screener)
    }
}

/// Runs one trial of the configured experiment. Deterministic in
/// `(config, trial_index)`.
pub fn run_trial(config: &HiringConfig, trial_index: usize) -> HiringOutcome {
    run_trial_sunk(config, trial_index, &mut ())
}

/// [`run_trial`] with a [`StepSink`] observing the loop's raw telemetry
/// — the entry point trace recording goes through. The sink first
/// receives the race metadata (labels in [`Race::ALL`] order, one code
/// per applicant), then one call per round.
pub fn run_trial_sunk<K: StepSink>(
    config: &HiringConfig,
    trial_index: usize,
    sink: &mut K,
) -> HiringOutcome {
    assert!(config.applicants > 0, "run_trial: zero applicants");
    assert!(config.rounds > 0, "run_trial: zero rounds");
    let rng = SimRng::new(config.seed.wrapping_add(trial_index as u64));
    let mut pool_rng = rng.split(1);
    let mut loop_rng = rng.split(2);

    let pool = ApplicantPool::generate(config.applicants, &mut pool_rng);
    let races = pool.races();
    let labels: Vec<&str> = Race::ALL.iter().map(|r| r.label()).collect();
    let codes: Vec<u32> = races.iter().map(|r| r.index() as u32).collect();
    sink.on_groups(&labels, &codes);

    let (record, model) = match config.screener {
        ScreenerKind::Adaptive => {
            let (record, screener) = run_screener(
                AdaptiveScreener::default_config(),
                pool,
                config,
                &mut loop_rng,
                sink,
            );
            (record, screener.model().cloned())
        }
        ScreenerKind::Credential => {
            let (record, _screener) =
                run_screener(CredentialScreener::new(), pool, config, &mut loop_rng, sink);
            (record, None)
        }
    };

    HiringOutcome {
        record,
        races,
        model,
    }
}

/// Runs the full multi-trial protocol in parallel (a fresh applicant pool
/// per trial), striped over worker threads leased from the process-wide
/// [`eqimpact_core::pool::ThreadBudget`] — shared with the intra-trial
/// sharded sweeps, so `trials × shards` stays within the host's lanes.
pub fn run_trials_protocol(config: &HiringConfig) -> Vec<HiringOutcome> {
    assert!(config.trials > 0, "run_trials_protocol: zero trials");
    run_trials_with(config.trials, |t| run_trial(config, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(screener: ScreenerKind) -> HiringConfig {
        HiringConfig {
            applicants: 200,
            rounds: 12,
            trials: 2,
            seed: 11,
            screener,
            ..Default::default()
        }
    }

    #[test]
    fn trial_is_deterministic() {
        let config = small_config(ScreenerKind::Adaptive);
        let a = run_trial(&config, 0);
        let b = run_trial(&config, 0);
        assert_eq!(a.record, b.record);
        assert_eq!(a.races, b.races);
    }

    #[test]
    fn trials_differ_across_indices() {
        let config = small_config(ScreenerKind::Adaptive);
        let a = run_trial(&config, 0);
        let b = run_trial(&config, 1);
        assert_ne!(a.record, b.record);
    }

    #[test]
    fn warmup_rounds_hire_everyone() {
        let config = small_config(ScreenerKind::Adaptive);
        let outcome = run_trial(&config, 0);
        assert_eq!(outcome.hire_rate(0), 1.0);
        assert_eq!(outcome.hire_rate(1), 1.0);
    }

    #[test]
    fn adaptive_screener_fits_a_model() {
        let config = small_config(ScreenerKind::Adaptive);
        let outcome = run_trial(&config, 0);
        let model = outcome.model.expect("model fitted");
        assert!(model.coefficients.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn credential_screener_reproduces_credential_rates() {
        let config = small_config(ScreenerKind::Credential);
        let outcome = run_trial(&config, 0);
        // Hire rate equals the credentialed share: strictly between 0 and 1.
        let rate = outcome.hire_rate(3);
        assert!(rate > 0.0 && rate < 1.0, "rate = {rate}");
        // And the race-wise hire rates differ (unequal impact of the
        // equal-treatment gate).
        let finals: Vec<f64> = Race::ALL
            .iter()
            .map(|&r| *outcome.race_hire_series(r).last().expect("rounds > 0"))
            .collect();
        let hi = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = finals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(hi - lo > 0.05, "race hire-rate spread = {}", hi - lo);
    }

    #[test]
    fn race_series_have_round_length() {
        let config = small_config(ScreenerKind::Adaptive);
        let outcome = run_trial(&config, 0);
        for race in Race::ALL {
            assert_eq!(outcome.race_hire_series(race).len(), 12);
            assert_eq!(outcome.race_track_series(race).len(), 12);
            for v in outcome.race_track_series(race) {
                assert!(v.is_nan() || (0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn sharded_trials_are_bit_identical_for_every_screener() {
        for screener in [ScreenerKind::Adaptive, ScreenerKind::Credential] {
            let config = HiringConfig {
                applicants: 150,
                rounds: 8,
                ..small_config(screener)
            };
            let reference = run_trial(&config, 0);
            for shards in [2usize, 8, 0] {
                let outcome = run_trial(&HiringConfig { shards, ..config }, 0);
                assert_eq!(
                    outcome.record, reference.record,
                    "{screener:?} x {shards} shards"
                );
                assert_eq!(outcome.races, reference.races);
            }
        }
    }

    #[test]
    fn thin_policy_flows_through() {
        let config = HiringConfig {
            policy: RecordPolicy::Thin,
            shards: 2,
            ..small_config(ScreenerKind::Credential)
        };
        let outcome = run_trial(&config, 0);
        assert_eq!(outcome.record.policy(), RecordPolicy::Thin);
        assert_eq!(outcome.record.mean_actions().len(), 12);
    }

    #[test]
    fn protocol_runs_all_trials() {
        let config = small_config(ScreenerKind::Adaptive);
        let outcomes = run_trials_protocol(&config);
        assert_eq!(outcomes.len(), 2);
        let again = run_trials_protocol(&config);
        assert_eq!(outcomes[0].record, again[0].record);
        assert_eq!(outcomes[1].record, again[1].record);
    }
}
