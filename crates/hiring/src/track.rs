//! The track-record feedback filter: per-applicant running success rates
//! over placements, the hiring analog of the credit study's ADR filter.
//!
//! A *placement* is a round in which the applicant was hired
//! (`π(k, i) > 0`); its outcome is the binary performance `y_i(k)`. The
//! track record of applicant `i` at round `k` is the fraction of
//! successful placements among all their placements up to `k`; applicants
//! never hired carry a **clean record of 1.0** (presumption of
//! competence), the mirror image of the credit study's clean-history
//! ADR 0.
//!
//! The aggregate channel smooths the per-round cohort success rate with
//! an [`EwmaFilter`] from `eqimpact-control` — Fig. 1's "filter" block
//! instantiated with fading memory instead of full history.

use eqimpact_control::filter::{EwmaFilter, Filter};
use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::closed_loop::{Feedback, FeedbackFilter};
use eqimpact_core::features::FeatureMatrix;

/// Default EWMA weight of the aggregate success channel.
pub const AGGREGATE_EWMA_ALPHA: f64 = 0.3;

/// The loop's feedback filter: maintains per-applicant placement and
/// success counters and emits `per_user = track_record_i(k)`.
#[derive(Debug, Clone)]
pub struct TrackRecordFilter {
    placements: Vec<u64>,
    successes: Vec<u64>,
    aggregate: EwmaFilter,
}

impl TrackRecordFilter {
    /// Creates an empty filter (sized on first use) with the default
    /// aggregate EWMA weight.
    pub fn new() -> Self {
        TrackRecordFilter {
            placements: Vec::new(),
            successes: Vec::new(),
            aggregate: EwmaFilter::new(AGGREGATE_EWMA_ALPHA),
        }
    }

    /// Track record of applicant `i`: successes over placements, `1.0`
    /// for applicants never hired.
    pub fn track_record(&self, i: usize) -> f64 {
        if self.placements[i] == 0 {
            1.0
        } else {
            self.successes[i] as f64 / self.placements[i] as f64
        }
    }

    /// Total placements of applicant `i`.
    pub fn placements(&self, i: usize) -> u64 {
        self.placements[i]
    }

    /// Number of applicants tracked (0 before the first round).
    pub fn user_count(&self) -> usize {
        self.placements.len()
    }
}

impl Default for TrackRecordFilter {
    fn default() -> Self {
        TrackRecordFilter::new()
    }
}

impl FeedbackFilter for TrackRecordFilter {
    fn apply_into(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        out: &mut Feedback,
    ) {
        if self.placements.len() != actions.len() {
            self.placements = vec![0; actions.len()];
            self.successes = vec![0; actions.len()];
        }
        let mut hired = 0u64;
        let mut succeeded = 0u64;
        for i in 0..actions.len() {
            if signals[i] > 0.0 {
                hired += 1;
                self.placements[i] += 1;
                if actions[i] == 1.0 {
                    succeeded += 1;
                    self.successes[i] += 1;
                }
            }
        }
        if hired > 0 {
            self.aggregate.push(succeeded as f64 / hired as f64);
        }
        out.step = k;
        out.per_user.clear();
        out.per_user
            .extend((0..actions.len()).map(|i| self.track_record(i)));
        // Before any cohort has been hired the EWMA holds NaN; report the
        // clean-record prior instead.
        let smoothed = self.aggregate.value();
        out.aggregate = if smoothed.is_nan() { 1.0 } else { smoothed };
        out.visible.fill_from(visible);
        out.signals.clear();
        out.signals.extend_from_slice(signals);
        out.actions.clear();
        out.actions.extend_from_slice(actions);
    }

    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        out.field_mut("filter.placements")
            .extend(self.placements.iter().map(|&c| c as f64));
        out.field_mut("filter.successes")
            .extend(self.successes.iter().map(|&c| c as f64));
        // The EWMA's Option state travels as a [present, value] pair.
        let state = self.aggregate.state();
        out.push_field(
            "filter.aggregate",
            &[
                if state.is_some() { 1.0 } else { 0.0 },
                state.unwrap_or(0.0),
            ],
        );
        true
    }

    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let (Some(placements), Some(successes)) = (
            checkpoint.field("filter.placements"),
            checkpoint.field("filter.successes"),
        ) else {
            return false;
        };
        // Counts are exact in f64 (bounded by rounds, far below 2^53).
        self.placements = placements.iter().map(|&c| c as u64).collect();
        self.successes = successes.iter().map(|&c| c as u64).collect();
        if let Some([present, value]) = checkpoint.field("filter.aggregate") {
            self.aggregate
                .restore_state((*present != 0.0).then_some(*value));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_hired_carry_clean_records() {
        let mut f = TrackRecordFilter::new();
        let visible = FeatureMatrix::zeros(2, 0);
        let fb = f.apply(0, &visible, &[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(fb.per_user, vec![1.0, 1.0]);
        assert_eq!(fb.aggregate, 1.0, "no cohort yet: clean prior");
    }

    #[test]
    fn records_track_successes_over_placements() {
        let mut f = TrackRecordFilter::new();
        let visible = FeatureMatrix::zeros(2, 0);
        // Round 0: both hired, only user 0 succeeds.
        let fb = f.apply(0, &visible, &[1.0, 1.0], &[1.0, 0.0]);
        assert_eq!(fb.per_user, vec![1.0, 0.0]);
        assert_eq!(fb.aggregate, 0.5);
        // Round 1: user 1 not hired; their record freezes.
        let fb = f.apply(1, &visible, &[1.0, 0.0], &[0.0, 0.0]);
        assert_eq!(fb.per_user, vec![0.5, 0.0]);
        assert_eq!(f.placements(0), 2);
        assert_eq!(f.placements(1), 1);
        assert_eq!(f.user_count(), 2);
        // EWMA: 0.3 * 0 + 0.7 * 0.5.
        assert!((fb.aggregate - 0.35).abs() < 1e-12);
    }

    #[test]
    fn every_feedback_field_is_assigned() {
        // The runner recycles Feedback packages; a stale field would leak
        // a previous step into retraining.
        let mut f = TrackRecordFilter::new();
        let v0 = FeatureMatrix::from_nested(&[vec![1.0], vec![0.0]]);
        let mut fb = f.apply(0, &v0, &[1.0, 1.0], &[1.0, 1.0]);
        let v1 = FeatureMatrix::from_nested(&[vec![0.0], vec![1.0]]);
        f.apply_into(1, &v1, &[0.0, 1.0], &[0.0, 0.0], &mut fb);
        assert_eq!(fb.step, 1);
        assert_eq!(fb.visible, v1);
        assert_eq!(fb.signals, vec![0.0, 1.0]);
        assert_eq!(fb.actions, vec![0.0, 0.0]);
    }
}
