//! A second closed-loop workload: **hiring/admissions** through the
//! paper's Fig. 1 lens, assembled from the existing building blocks —
//! census demographics (`eqimpact-census`), logistic scoring
//! (`eqimpact-ml`) and a fading-memory filter (`eqimpact-control`) —
//! on the generic loop machinery of `eqimpact-core`.
//!
//! A screener (the AI system) decides each round who is hired; hired
//! applicants succeed or fail on the job according to their household
//! resources and accumulated experience (the user population); a filter
//! turns outcomes into per-applicant **track records** that feed the
//! screener's next retraining — the same closed loop as the credit case
//! study, with access to work instead of access to credit.
//!
//! * [`model`] — the probit job-performance model (readiness margin,
//!   success probability);
//! * [`applicants`] — the shardable applicant-pool population block;
//! * [`screener`] — the retrained logistic screener and the
//!   credential-gate equal-treatment baseline;
//! * [`track`] — the track-record feedback filter (per-applicant running
//!   success rates, EWMA-smoothed aggregate);
//! * [`sim`] — configuration, single trials and the multi-trial protocol;
//! * [`scenario`] — the workload as a registry
//!   [`Scenario`](eqimpact_core::scenario::Scenario) (`experiments run
//!   hiring`);
//! * [`trace`] — replay and off-policy evaluation of recorded hiring
//!   traces (`experiments record hiring` / `experiments replay`);
//! * [`sweep`] — the counterfactual-lab sweep face: candidate grids of
//!   screeners/thresholds evaluated off-policy over recorded traces
//!   (`experiments sweep hiring`).
//!
//! The loop inherits the workspace-wide determinism contract: records
//! are **bit-identical for every intra-trial shard count**, including
//! the sequential runner (property-tested in `tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use eqimpact_hiring::sim::{run_trial, HiringConfig, ScreenerKind};
//!
//! let config = HiringConfig {
//!     applicants: 100,
//!     rounds: 6,
//!     screener: ScreenerKind::Credential,
//!     ..HiringConfig::default()
//! };
//! let outcome = run_trial(&config, 0);
//! assert_eq!(outcome.record.steps(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod applicants;
pub mod certify;
pub mod model;
pub mod scenario;
pub mod screener;
pub mod sim;
pub mod sweep;
pub mod trace;
pub mod track;

pub use applicants::{Applicant, ApplicantPool, ApplicantShard};
pub use certify::HiringCertify;
pub use scenario::HiringScenario;
pub use screener::{AdaptiveScreener, CredentialScreener};
pub use sim::{run_trial, run_trials_protocol, HiringConfig, HiringOutcome, ScreenerKind};
pub use sweep::HiringSweep;
pub use trace::HiringTracer;
pub use track::TrackRecordFilter;
