//! The hiring scenario's certification face: maps recorded hiring traces
//! onto the certification plane (`experiments certify hiring`).
//!
//! The certified state channel is the per-applicant track record, kept in
//! `[0, 1]` by the `TrackRecordFilter` with a clean record at `1.0`. The
//! model dynamics come from the adaptive screener's checkpoint fields
//! (`model.intercept` + `model.coefficients`); the credential variant
//! records no checkpoints, so its checkpoint-dynamics checks come back
//! inconclusive by design — that is the honest verdict for a loop with no
//! retrained model.

use crate::trace::DECISION_THRESHOLD;
use eqimpact_certify::{CertifyTarget, ExtractionSpec};

/// The certification face of the hiring scenario (registered next to
/// [`HiringTracer`](crate::HiringTracer) in the certify registry).
pub struct HiringCertify;

impl CertifyTarget for HiringCertify {
    fn name(&self) -> &'static str {
        "hiring"
    }

    fn spec(&self) -> ExtractionSpec {
        ExtractionSpec {
            state_lo: 0.0,
            state_hi: 1.0,
            bins: 8,
            threshold: DECISION_THRESHOLD,
            model_fields: &["model.intercept", "model.coefficients"],
            sampled_trajectories: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::variant_name;
    use crate::sim::{run_trial_sunk, HiringConfig, ScreenerKind};
    use eqimpact_certify::engine::{certificate_of, CertifyConfig};
    use eqimpact_certify::extract;
    use eqimpact_core::scenario::{Scale, TraceMeta};
    use eqimpact_stats::SimRng;
    use eqimpact_trace::{TraceHeader, TraceStepSink};

    fn checkpointed_trace() -> Vec<u8> {
        let config = HiringConfig {
            applicants: 90,
            rounds: 6,
            trials: 1,
            seed: 13,
            screener: ScreenerKind::Adaptive,
            ..HiringConfig::default()
        };
        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: "hiring".to_string(),
            variant: variant_name(config.screener).to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: config.seed,
            shards: config.shards,
            delay: config.delay,
            policy: config.policy,
        })
        .with_checkpoints();
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        run_trial_sunk(&config, 0, &mut sink);
        sink.finish().expect("trace finishes")
    }

    #[test]
    fn recorded_hiring_trace_extracts_and_renders_all_checks() {
        let bytes = checkpointed_trace();
        let ex = extract(&HiringCertify.spec(), &mut bytes.as_slice()).expect("extracts");
        assert_eq!(ex.steps, 6);
        assert_eq!(ex.users, 90);
        assert!(ex.transition_count() > 0);
        assert!(!ex.checkpoints.is_empty(), "adaptive checkpoints present");
        let cert = certificate_of(
            "hiring-000",
            &ex,
            &CertifyConfig::default(),
            &SimRng::new(42),
        );
        let names: Vec<&str> = cert.checks.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "primitivity",
                "unique-ergodicity",
                "contraction",
                "lyapunov",
                "iss"
            ]
        );
        for check in &cert.checks {
            assert!(!check.detail.is_empty(), "check {}", check.name);
        }
    }
}
