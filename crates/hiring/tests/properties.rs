//! Property-based tests for the hiring scenario, headlined by the
//! determinism guarantee: the serialized loop record is **byte-identical
//! for shard counts {1, 2, 8} versus the sequential runner**.

use eqimpact_hiring::model::{credential_code, readiness, sample_performance, success_probability};
use eqimpact_hiring::sim::{run_trial, HiringConfig, ScreenerKind};
use eqimpact_stats::SimRng;
use proptest::prelude::*;

/// Serializes a record to its canonical JSON byte representation.
fn record_bytes(config: &HiringConfig, trial: usize) -> String {
    run_trial(config, trial).record.to_json().render()
}

proptest! {
    /// The tentpole acceptance property: for random pool sizes, seeds and
    /// both screeners, every shard count in {2, 8} (and auto) produces a
    /// serialized record byte-identical to the sequential (1-shard)
    /// runner's.
    #[test]
    fn sharded_records_serialize_byte_identically(
        applicants in 20usize..90,
        seed in 0u64..1_000,
        adaptive in prop::bool::ANY,
    ) {
        let screener = if adaptive { ScreenerKind::Adaptive } else { ScreenerKind::Credential };
        let config = HiringConfig {
            applicants,
            rounds: 6,
            trials: 1,
            seed,
            screener,
            shards: 1,
            ..HiringConfig::default()
        };
        let sequential = record_bytes(&config, 0);
        for shards in [2usize, 8] {
            let sharded = record_bytes(&HiringConfig { shards, ..config }, 0);
            prop_assert_eq!(&sequential, &sharded, "shards = {}", shards);
        }
    }

    #[test]
    fn readiness_bounded_and_monotone_in_experience(
        resources in 1.0f64..400.0,
        e1 in 0.0f64..30.0,
        e2 in 0.0f64..30.0,
    ) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(readiness(resources, lo) <= readiness(resources, hi) + 1e-12);
        // x = (z + bonus - 20)/z <= 1 + 20/z - 20/z... bounded above by
        // 1 + cap·bonus/z; just check finiteness and the probability range.
        prop_assert!(readiness(resources, e1).is_finite());
        let p = success_probability(readiness(resources, e1));
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn not_hired_never_produces_an_outcome(
        resources in 1.0f64..400.0,
        experience in 0.0f64..30.0,
        seed in 0u64..100,
    ) {
        let mut rng = SimRng::new(seed);
        prop_assert_eq!(sample_performance(resources, experience, 0.0, &mut rng), 0.0);
    }

    #[test]
    fn credential_code_is_binary(resources in 0.5f64..500.0) {
        let c = credential_code(resources);
        prop_assert!(c == 0.0 || c == 1.0);
        prop_assert_eq!(c == 1.0, resources >= 35.0);
    }

    #[test]
    fn trials_are_deterministic_and_distinct(seed in 0u64..200) {
        let config = HiringConfig {
            applicants: 40,
            rounds: 5,
            trials: 1,
            seed,
            ..HiringConfig::default()
        };
        prop_assert_eq!(record_bytes(&config, 0), record_bytes(&config, 0));
        prop_assert_ne!(record_bytes(&config, 0), record_bytes(&config, 1));
    }
}

/// The fixed-shape acceptance check, independent of proptest shrinking:
/// shard counts {1, 2, 8} all serialize identically on both screeners.
#[test]
fn acceptance_shard_counts_one_two_eight() {
    for screener in [ScreenerKind::Adaptive, ScreenerKind::Credential] {
        let base = HiringConfig {
            applicants: 120,
            rounds: 8,
            trials: 1,
            seed: 77,
            screener,
            ..HiringConfig::default()
        };
        let reference = record_bytes(&HiringConfig { shards: 1, ..base }, 0);
        for shards in [2usize, 8] {
            let sharded = record_bytes(&HiringConfig { shards, ..base }, 0);
            assert_eq!(reference, sharded, "{screener:?} x {shards} shards");
        }
    }
}
