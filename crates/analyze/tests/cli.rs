//! Exit-code and `--json` contract of the `analyze` binary: 0 on a
//! clean workspace, 1 on findings (demonstrably red on the fixture
//! violations), 2 on bad arguments.

use std::ffi::OsStr;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn real_workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run<I, S>(args: I) -> Output
where
    I: IntoIterator<Item = S>,
    S: AsRef<OsStr>,
{
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(args)
        .output()
        .expect("analyze binary runs")
}

#[test]
fn clean_workspace_exits_zero() {
    let out = run([real_workspace_root().as_os_str()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the real workspace must analyze clean; report:\n{stdout}"
    );
    assert!(stdout.contains("result: 0 finding(s)"), "report:\n{stdout}");
}

#[test]
fn fixture_violations_exit_one() {
    let out = run([fixture_root().as_os_str()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "report:\n{stdout}");
    // The findings are named with rule, file and line.
    assert!(stdout.contains("R5 crates/bench/src/experiments.rs:5"));
    assert!(stdout.contains("R7 Cargo.toml:9"));
}

#[test]
fn bad_arguments_exit_two() {
    let out = run(["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty(), "usage goes to stderr");

    let out = run(["/definitely/not/a/workspace"]);
    assert_eq!(out.status.code(), Some(2), "unreadable root is exit 2");
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let dir = std::env::temp_dir();
    let a_path = dir.join(format!("analyze-cli-a-{}.json", std::process::id()));
    let b_path = dir.join(format!("analyze-cli-b-{}.json", std::process::id()));
    let root = fixture_root();

    let a = run([root.as_os_str(), "--json".as_ref(), a_path.as_os_str()]);
    let b = run([
        root.as_os_str(),
        "--json".as_ref(),
        b_path.as_os_str(),
        "--quiet".as_ref(),
    ]);
    assert_eq!(a.status.code(), Some(1));
    assert_eq!(b.status.code(), Some(1));
    // --quiet collapses the report to the one-line summary.
    let quiet_out = String::from_utf8_lossy(&b.stdout);
    assert!(
        quiet_out.starts_with("analyze: 16 finding(s)"),
        "quiet summary:\n{quiet_out}"
    );

    let a_bytes = std::fs::read(&a_path).expect("first JSON report");
    let b_bytes = std::fs::read(&b_path).expect("second JSON report");
    assert_eq!(a_bytes, b_bytes, "JSON report must be deterministic");
    let text = String::from_utf8(a_bytes).expect("JSON report is UTF-8");
    assert!(text.contains("\"findings_active\": 16"), "report:\n{text}");
    let _ = std::fs::remove_file(&a_path);
    let _ = std::fs::remove_file(&b_path);
}
