//! Fixture: reassociating float folds (R6) plus the waiver spectrum (R0).
//! A `.sum::<f64>()` named in this doc comment must not fire.

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()
}

pub fn total(v: &[f64]) -> f64 {
    // analyze::allow(R6): fixture demonstrates a waived fold
    v.iter().sum::<f64>()
}

pub fn stale() -> f64 {
    // analyze::allow(R6): nothing to waive on this line
    0.0
}

pub fn unknown() -> f64 {
    // analyze::allow(R9): no such rule
    0.0
}

pub fn reasonless(v: &[f64]) -> f64 {
    // analyze::allow(R6)
    v.iter().fold(0.0, |a, x| a + x)
}
