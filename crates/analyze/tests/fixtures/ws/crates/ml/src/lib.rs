//! Fixture: float-fold hot path (R6) and waiver hygiene (R0).
#![forbid(unsafe_code)]

pub mod logistic;
