//! Fixture: deterministic-plane violations (rules R1-R4).
//! Mentions of Instant::now() and HashMap in this comment must not fire.

pub fn clock() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn epoch_nanos() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}

pub fn table() {
    let _ = std::collections::HashMap::<u32, u32>::new();
}

pub fn spawn_worker() {
    std::thread::spawn(|| {}).join().ok();
}

pub fn peek(v: &[u8]) -> u8 {
    let s = "thread::spawn inside a string literal";
    let _ = s;
    unsafe { *v.as_ptr() }
}

pub fn peek_documented(v: &[u8]) -> u8 {
    // SAFETY: the fixture slice is non-empty by contract.
    unsafe { *v.as_ptr() }
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        let _ = std::collections::HashSet::<u32>::new();
        let _ = std::time::Instant::now();
    }
}
