//! Fixture: panic-contract violations (R5).
//! An `.unwrap()` named in this doc comment must not fire.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn boom() {
    panic!("fixture panic");
}

pub fn expected(v: Option<u32>) -> u32 {
    v.expect("fixture expect")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[7]), 7);
        let _ = Some(1u32).unwrap();
    }
}
