//! Fixture: unsafe-free crate missing #![forbid(unsafe_code)] (R4).

pub mod experiments;
