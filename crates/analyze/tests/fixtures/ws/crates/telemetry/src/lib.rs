//! Fixture: the wall-clock home (scope negative for R1).
#![forbid(unsafe_code)]

pub mod instruments;
