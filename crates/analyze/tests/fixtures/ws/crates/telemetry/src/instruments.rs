//! The sanctioned wall-clock module: host-clock reads are allowed here.

pub fn now_nanos() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
