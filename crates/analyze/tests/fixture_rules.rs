//! Integration tests over the fixture mini-workspace in
//! `tests/fixtures/ws`: every rule fires on a known line, near-miss
//! text in comments/strings/test code stays silent, and the rendered
//! report is byte-identical across runs.

use std::path::{Path, PathBuf};

use eqimpact_analyze::{analyze, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn run() -> Report {
    analyze(&fixture_root()).expect("fixture workspace analyzes")
}

/// The complete expected set of active findings, as (rule, file, line).
const EXPECTED_ACTIVE: &[(&str, &str, u32)] = &[
    ("R0", "crates/ml/src/logistic.rs", 14),
    ("R0", "crates/ml/src/logistic.rs", 19),
    ("R0", "crates/ml/src/logistic.rs", 24),
    ("R1", "crates/core/src/lib.rs", 5),
    ("R1", "crates/core/src/lib.rs", 10),
    ("R2", "crates/core/src/lib.rs", 15),
    ("R3", "crates/core/src/lib.rs", 19),
    ("R4", "crates/bench/src/lib.rs", 1),
    ("R4", "crates/core/src/lib.rs", 25),
    ("R5", "crates/bench/src/experiments.rs", 5),
    ("R5", "crates/bench/src/experiments.rs", 9),
    ("R5", "crates/bench/src/experiments.rs", 13),
    ("R6", "crates/ml/src/logistic.rs", 5),
    ("R6", "crates/ml/src/logistic.rs", 25),
    ("R7", "Cargo.toml", 9),
    ("R7", "crates/bench/Cargo.toml", 8),
];

#[test]
fn every_rule_fires_on_its_fixture_line() {
    let report = run();
    let mut active: Vec<(String, String, u32)> = report
        .active()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect();
    active.sort();
    let expected: Vec<(String, String, u32)> = EXPECTED_ACTIVE
        .iter()
        .map(|&(r, f, l)| (r.to_string(), f.to_string(), l))
        .collect();
    assert_eq!(active, expected);
    // Each of R0..R7 fires at least once.
    for id in ["R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7"] {
        assert!(
            active.iter().any(|(r, _, _)| r == id),
            "{id} never fired on the fixtures"
        );
    }
}

#[test]
fn near_misses_stay_silent() {
    let report = run();
    // The sanctioned wall-clock module reads the clock without findings.
    assert!(
        !report.findings.iter().any(|f| f.file.contains("telemetry")),
        "telemetry fixture must be clean"
    );
    // The string literal naming thread::spawn (core lib.rs line 23) and
    // the #[cfg(test)] HashSet/Instant uses (lines 36-37) never fire.
    for silent_line in [23, 36, 37] {
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.file == "crates/core/src/lib.rs" && f.line == silent_line),
            "line {silent_line} of the core fixture must stay silent"
        );
    }
}

#[test]
fn valid_waiver_suppresses_and_is_listed() {
    let report = run();
    // The waived R6 fold is present but inactive.
    let waived: Vec<_> = report.findings.iter().filter(|f| f.waived).collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].rule, "R6");
    assert_eq!(waived[0].file, "crates/ml/src/logistic.rs");
    assert_eq!(waived[0].line, 10);
    // Exactly one valid waiver, reason preserved.
    assert_eq!(report.waivers.len(), 1);
    assert_eq!(report.waivers[0].rule, "R6");
    assert_eq!(report.waivers[0].line, 9);
    assert_eq!(
        report.waivers[0].reason,
        "fixture demonstrates a waived fold"
    );
}

#[test]
fn unsafe_inventory_tracks_documentation() {
    let report = run();
    let inv: Vec<_> = report
        .unsafe_inventory
        .iter()
        .map(|u| (u.file.as_str(), u.line, u.documented))
        .collect();
    assert_eq!(
        inv,
        vec![
            ("crates/core/src/lib.rs", 25, false),
            ("crates/core/src/lib.rs", 30, true),
        ]
    );
    // Crate audits: the unsafe-bearing crate is exempt from the forbid
    // requirement; the forbidding crates are recorded as such.
    let audit = |name: &str| {
        report
            .crates
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("crate {name} audited"))
    };
    assert!(!audit("fixture-core").forbids_unsafe);
    assert_eq!(audit("fixture-core").unsafe_count, 2);
    assert!(audit("fixture-ml").forbids_unsafe);
    assert!(audit("fixture-telemetry").forbids_unsafe);
    assert!(!audit("fixture-bench").forbids_unsafe);
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let a = run();
    let b = run();
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_text(), b.render_text());
    // No absolute paths leak into either rendering.
    let root = fixture_root();
    let root_str = root.to_string_lossy();
    assert!(!a.render_json().contains(root_str.as_ref()));
    assert!(!a.render_text().contains(root_str.as_ref()));
}

#[test]
fn scan_counts_cover_the_fixture_tree() {
    let report = run();
    // 7 source files: core lib, bench lib + experiments, ml lib +
    // logistic, telemetry lib + instruments.
    assert_eq!(report.files_scanned, 7);
    // 5 manifests: the root plus four crates.
    assert_eq!(report.manifests_scanned, 5);
}
