//! Findings aggregation and deterministic rendering.
//!
//! Two renderers over the same `Report`:
//!
//! * `render_text` — aligned, human-first, grouped by rule;
//! * `render_json` — machine-first, byte-identical across runs: the
//!   rule catalog in fixed order, findings sorted by (file, line,
//!   rule), no timestamps, no absolute paths.

use crate::rules::CATALOG;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`R0` ... `R7`).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What fired, with the offending construct named.
    pub message: String,
    /// Rule-level fix hint.
    pub hint: String,
    /// True when a matching waiver covers this finding.
    pub waived: bool,
}

/// One accepted waiver, echoed into the report.
#[derive(Debug, Clone)]
pub struct WaiverEntry {
    /// Waived rule id.
    pub rule: String,
    /// File containing the waiver comment.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The stated reason.
    pub reason: String,
}

/// One `unsafe` keyword in the workspace (R4 inventory).
#[derive(Debug, Clone)]
pub struct UnsafeEntry {
    /// File containing the `unsafe` keyword.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Whether a `// SAFETY:` comment documents it.
    pub documented: bool,
}

/// Per-crate unsafe audit summary (R4).
#[derive(Debug, Clone)]
pub struct CrateAudit {
    /// Crate (package) name.
    pub name: String,
    /// True when the crate root carries `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
    /// Number of non-test `unsafe` keywords in the crate.
    pub unsafe_count: usize,
}

/// The full analysis result.
#[derive(Debug)]
pub struct Report {
    /// All findings, waived ones included, sorted (file, line, rule).
    pub findings: Vec<Finding>,
    /// Accepted waivers, sorted (file, line).
    pub waivers: Vec<WaiverEntry>,
    /// Unsafe inventory, sorted (file, line).
    pub unsafe_inventory: Vec<UnsafeEntry>,
    /// Per-crate audit, sorted by crate name.
    pub crates: Vec<CrateAudit>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// Sorts every section into its canonical order. Called once by
    /// the engine; rendering assumes it has run.
    pub fn canonicalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.waivers
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.unsafe_inventory
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.crates.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Findings that actually gate (not waived).
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Count of gating findings — exit code 1 when nonzero.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    fn rule_counts(&self, id: &str) -> (usize, usize) {
        let total = self.findings.iter().filter(|f| f.rule == id).count();
        let waived = self
            .findings
            .iter()
            .filter(|f| f.rule == id && f.waived)
            .count();
        (total - waived, waived)
    }

    /// Aligned human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("conformance analysis\n");
        out.push_str("====================\n");
        out.push_str(&format!(
            "scanned {} source files, {} manifests\n\n",
            self.files_scanned, self.manifests_scanned
        ));

        out.push_str("rule      name                 active  waived  summary\n");
        for r in &CATALOG {
            let (active, waived) = self.rule_counts(r.id);
            out.push_str(&format!(
                "{:<8}  {:<19}  {:>6}  {:>6}  {}\n",
                r.id, r.name, active, waived, r.summary
            ));
        }

        if self.active_count() > 0 {
            out.push_str("\nfindings\n--------\n");
            for f in self.active() {
                out.push_str(&format!("{} {}:{}\n", f.rule, f.file, f.line));
                out.push_str(&format!("    {}\n", f.message));
                out.push_str(&format!("    hint: {}\n", f.hint));
            }
        }

        if !self.waivers.is_empty() {
            out.push_str("\nwaivers\n-------\n");
            for w in &self.waivers {
                out.push_str(&format!("{} {}:{}  {}\n", w.rule, w.file, w.line, w.reason));
            }
        }

        if !self.unsafe_inventory.is_empty() {
            out.push_str("\nunsafe inventory\n----------------\n");
            for u in &self.unsafe_inventory {
                out.push_str(&format!(
                    "{}:{}  {}\n",
                    u.file,
                    u.line,
                    if u.documented {
                        "documented"
                    } else {
                        "UNDOCUMENTED"
                    }
                ));
            }
        }

        out.push_str(&format!(
            "\nresult: {} finding(s), {} waived, {} waiver(s)\n",
            self.active_count(),
            self.findings.len() - self.active_count(),
            self.waivers.len()
        ));
        out
    }

    /// Deterministic JSON: fixed key order, canonical sorting, no
    /// clocks or absolute paths — byte-identical across runs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"manifests_scanned\": {},\n",
            self.manifests_scanned
        ));
        out.push_str(&format!(
            "  \"findings_active\": {},\n",
            self.active_count()
        ));

        out.push_str("  \"rules\": [\n");
        for (i, r) in CATALOG.iter().enumerate() {
            let (active, waived) = self.rule_counts(r.id);
            out.push_str(&format!(
                "    {{\"id\": {}, \"name\": {}, \"active\": {}, \"waived\": {}}}{}\n",
                esc(r.id),
                esc(r.name),
                active,
                waived,
                comma(i, CATALOG.len())
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"hint\": {}, \"waived\": {}}}{}\n",
                esc(&f.rule),
                esc(&f.file),
                f.line,
                esc(&f.message),
                esc(&f.hint),
                f.waived,
                comma(i, self.findings.len())
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                esc(&w.rule),
                esc(&w.file),
                w.line,
                esc(&w.reason),
                comma(i, self.waivers.len())
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"unsafe_inventory\": [\n");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"documented\": {}}}{}\n",
                esc(&u.file),
                u.line,
                u.documented,
                comma(i, self.unsafe_inventory.len())
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"crates\": [\n");
        for (i, c) in self.crates.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"forbids_unsafe\": {}, \"unsafe_count\": {}}}{}\n",
                esc(&c.name),
                c.forbids_unsafe,
                c.unsafe_count,
                comma(i, self.crates.len())
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "R2".to_string(),
                    file: "crates/trace/src/b.rs".to_string(),
                    line: 9,
                    message: "m2".to_string(),
                    hint: "h2".to_string(),
                    waived: false,
                },
                Finding {
                    rule: "R1".to_string(),
                    file: "crates/core/src/a.rs".to_string(),
                    line: 3,
                    message: "m1".to_string(),
                    hint: "h1".to_string(),
                    waived: true,
                },
            ],
            waivers: vec![WaiverEntry {
                rule: "R1".to_string(),
                file: "crates/core/src/a.rs".to_string(),
                line: 2,
                reason: "because".to_string(),
            }],
            unsafe_inventory: vec![],
            crates: vec![],
            files_scanned: 2,
            manifests_scanned: 1,
        };
        r.canonicalize();
        r
    }

    #[test]
    fn active_count_excludes_waived() {
        let r = sample();
        assert_eq!(r.active_count(), 1);
        assert_eq!(r.findings.len(), 2);
    }

    #[test]
    fn canonical_order_is_file_line_rule() {
        let r = sample();
        assert_eq!(r.findings[0].file, "crates/core/src/a.rs");
        assert_eq!(r.findings[1].file, "crates/trace/src/b.rs");
    }

    #[test]
    fn json_renders_identically_twice() {
        let r = sample();
        assert_eq!(r.render_json(), r.render_json());
        assert!(r.render_json().contains("\"findings_active\": 1"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(esc("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
