//! Per-file scan state: test-region masking and waiver extraction.
//!
//! Sits between the lexer and the rules. For each file it produces
//!
//! * the full token stream (comments included),
//! * a `code` index listing the non-comment tokens,
//! * an `in_test` mask marking every token inside a `#[test]` or
//!   `#[cfg(test)]` item (the panic-contract and friends do not apply
//!   to test code),
//! * the parsed `// analyze::allow(rule-id): reason` waivers.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed `// analyze::allow(rule-id): reason` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id as written (`R1` ... `R7`); validated by the engine.
    pub rule: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// Trimmed reason text after `):`. Empty means the waiver is
    /// malformed — the engine reports that as a finding.
    pub reason: String,
}

/// Lexed view of one source file, ready for rule matching.
pub struct FileScan {
    /// Every token, comments included, in source order.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens.
    pub code: Vec<usize>,
    /// `in_test[k]` is true when `toks[k]` sits inside a test item.
    pub in_test: Vec<bool>,
    /// Waivers parsed from line comments (outside test items too —
    /// a waiver in test code waives nothing, but is still listed so
    /// stale ones surface).
    pub waivers: Vec<Waiver>,
}

impl FileScan {
    /// Lexes and masks one file.
    pub fn new(src: &str) -> FileScan {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(k, _)| k)
            .collect();
        let in_test = mask_test_items(&toks, &code);
        let waivers = parse_waivers(&toks);
        FileScan {
            toks,
            code,
            in_test,
            waivers,
        }
    }

    /// The code token at code-position `p`, if any.
    pub fn code_tok(&self, p: usize) -> Option<&Tok> {
        self.code.get(p).map(|&k| &self.toks[k])
    }

    /// True when the code token at code-position `p` is inside a test
    /// item.
    pub fn code_in_test(&self, p: usize) -> bool {
        self.code.get(p).map(|&k| self.in_test[k]).unwrap_or(false)
    }
}

/// Marks every token belonging to an item annotated `#[test]`,
/// `#[cfg(test)]` (or any `cfg(...)` whose argument list mentions
/// `test`, covering `#[cfg(all(test, ...))]`).
///
/// Works on the code-token sequence: finds an attribute opener `#`
/// `[`, collects the balanced attribute, and if it is test-like skips
/// any stacked attributes and then masks the following item — all
/// tokens (comments included) up to the end of the item's balanced
/// `{ ... }` block or its terminating top-level `;`.
fn mask_test_items(toks: &[Tok], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut p = 0usize;
    while p < code.len() {
        let t = &toks[code[p]];
        if t.is_punct("#") && p + 1 < code.len() && toks[code[p + 1]].is_punct("[") {
            let (attr_end, is_test) = read_attribute(toks, code, p);
            if is_test {
                let mask_from = code[p];
                // Skip any further stacked attributes.
                let mut q = attr_end;
                while q < code.len()
                    && toks[code[q]].is_punct("#")
                    && q + 1 < code.len()
                    && toks[code[q + 1]].is_punct("[")
                {
                    let (next_end, _) = read_attribute(toks, code, q);
                    q = next_end;
                }
                // Mask the item that follows.
                let item_end = skip_item(toks, code, q);
                let mask_to = if item_end > 0 && item_end <= code.len() {
                    code[item_end - 1]
                } else {
                    toks.len() - 1
                };
                for m in mask.iter_mut().take(mask_to + 1).skip(mask_from) {
                    *m = true;
                }
                p = item_end;
                continue;
            }
            p = attr_end;
            continue;
        }
        p += 1;
    }
    mask
}

/// Reads the balanced attribute starting at code-position `p` (which
/// holds `#`). Returns (code-position past `]`, attribute-is-test).
fn read_attribute(toks: &[Tok], code: &[usize], p: usize) -> (usize, bool) {
    // p -> '#', p+1 -> '['. Scan for the matching ']'.
    let mut depth = 0usize;
    let mut q = p + 1;
    let mut body: Vec<&Tok> = Vec::new();
    while q < code.len() {
        let t = &toks[code[q]];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                q += 1;
                break;
            }
        } else if depth >= 1 {
            body.push(t);
        }
        q += 1;
    }
    // Test-like: `test`, or `cfg` with `test` somewhere in its args.
    let is_test = match body.first() {
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => body.iter().skip(1).any(|t| t.is_ident("test")),
        _ => false,
    };
    (q, is_test)
}

/// Skips one item starting at code-position `p`, returning the
/// code-position just past it. An item ends at the close of its first
/// top-level `{ ... }` block (fn body, mod body, impl body) or at a
/// top-level `;` (use / type / extern declarations).
fn skip_item(toks: &[Tok], code: &[usize], p: usize) -> usize {
    let mut q = p;
    let mut stack: Vec<char> = Vec::new();
    while q < code.len() {
        let t = &toks[code[q]];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => stack.push(t.text.chars().next().unwrap_or('{')),
                "}" | ")" | "]" => {
                    let was_brace = stack.last() == Some(&'{');
                    stack.pop();
                    if stack.is_empty() && was_brace && t.is_punct("}") {
                        return q + 1;
                    }
                }
                ";" if stack.is_empty() => return q + 1,
                _ => {}
            }
        }
        q += 1;
    }
    code.len()
}

/// Extracts `analyze::allow(rule): reason` waivers from line comments.
fn parse_waivers(toks: &[Tok]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments (`///`, `//!`) describe the waiver syntax in
        // prose; only plain `//` comments can carry a live waiver.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(at) = t.text.find("analyze::allow(") else {
            continue;
        };
        let rest = &t.text[at + "analyze::allow(".len()..];
        let Some(close) = rest.find(')') else {
            // Unclosed waiver: record with empty id so the engine can
            // flag it as malformed rather than silently ignoring it.
            out.push(Waiver {
                rule: String::new(),
                line: t.line,
                reason: String::new(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Waiver {
            rule,
            line: t.line,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents_outside_tests(src: &str) -> Vec<String> {
        let fs = FileScan::new(src);
        (0..fs.code.len())
            .filter(|&p| !fs.code_in_test(p))
            .filter_map(|p| fs.code_tok(p))
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn hidden() { dead() }\n}\nfn after() {}\n";
        let idents = idents_outside_tests(src);
        assert!(idents.contains(&"live".to_string()));
        assert!(idents.contains(&"after".to_string()));
        assert!(!idents.contains(&"hidden".to_string()));
        assert!(!idents.contains(&"dead".to_string()));
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let src = "#[test]\nfn check() { target() }\nfn live() {}\n";
        let idents = idents_outside_tests(src);
        assert!(!idents.contains(&"target".to_string()));
        assert!(idents.contains(&"live".to_string()));
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() { inner() } }\nfn live() {}\n";
        let idents = idents_outside_tests(src);
        assert!(!idents.contains(&"inner".to_string()));
        assert!(idents.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_all_test_is_masked_but_cfg_feature_is_not() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn a() { ta() }\n#[cfg(feature = \"x\")]\nfn b() { kb() }\n";
        let idents = idents_outside_tests(src);
        assert!(!idents.contains(&"ta".to_string()));
        assert!(idents.contains(&"kb".to_string()));
    }

    #[test]
    fn waiver_parsing() {
        let src =
            "// analyze::allow(R1): wall-clock telemetry\nlet t = 1;\n// analyze::allow(R2)\n";
        let fs = FileScan::new(src);
        assert_eq!(fs.waivers.len(), 2);
        assert_eq!(fs.waivers[0].rule, "R1");
        assert_eq!(fs.waivers[0].line, 1);
        assert_eq!(fs.waivers[0].reason, "wall-clock telemetry");
        assert_eq!(fs.waivers[1].rule, "R2");
        assert_eq!(fs.waivers[1].reason, "");
    }

    #[test]
    fn item_ending_in_semicolon_is_masked() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let idents = idents_outside_tests(src);
        assert!(!idents.contains(&"HashMap".to_string()));
        assert!(idents.contains(&"live".to_string()));
    }
}
