//! `eqimpact-analyze` — the workspace's conformance analyzer.
//!
//! A dependency-free, source-level static-analysis pass that enforces
//! the contracts the determinism guarantee rests on: records, EQTRACE1
//! bytes, certificates, and telemetry counters are bit-identical
//! across runs and thread counts *only if* nothing in the deterministic
//! planes reads a wall clock, iterates a hash table, or spawns its own
//! threads — and the CLI never panics where a named error belongs.
//!
//! The analyzer lexes every workspace source file with its own minimal
//! Rust lexer ([`lexer`]) — comment-, string-, and attribute-aware, so
//! `Instant::now()` in a doc comment or a string literal never fires —
//! and runs the fixed rule catalog ([`rules::CATALOG`]):
//!
//! | id | name | contract |
//! |----|------|----------|
//! | R1 | clock-hygiene | `Instant::now`/`SystemTime` only in telemetry's wall-clock modules |
//! | R2 | order-hygiene | no `HashMap`/`HashSet` in the deterministic planes |
//! | R3 | thread-hygiene | thread spawns / parallelism probes only in `core::pool` |
//! | R4 | unsafe-audit | `// SAFETY:` on every `unsafe`; unsafe-free crates forbid unsafe |
//! | R5 | panic-contract | no `unwrap`/`expect`/`panic!` in CLI/artifact-I/O modules |
//! | R6 | float-fold | no reassociating float folds outside `linalg::kernels` |
//! | R7 | dependency-hygiene | Cargo manifests carry path/workspace deps only |
//!
//! Known-good exceptions are waived in-source with
//! `// analyze::allow(R<n>): reason`; waivers are counted, listed in
//! the report, and themselves audited (rule R0): a waiver without a
//! reason, naming an unknown rule, or matching no finding is a finding.
//!
//! Reports render as aligned text and as deterministic JSON —
//! fixed catalog order, findings sorted by (file, line, rule), no
//! timestamps — byte-identical across runs. The `analyze` binary
//! gates CI with the workspace exit-code contract: 0 clean, 1
//! findings, 2 bad arguments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use report::{Finding, Report};
pub use workspace::analyze;
