//! Workspace discovery and the analysis engine.
//!
//! Walks a workspace root (`Cargo.toml` + `crates/*/src/**` + the
//! facade package's own `src/**`), runs the token rules over every
//! source file, the manifest rule over every `Cargo.toml` (shims
//! included), applies waivers, and folds everything into a `Report`.
//!
//! Out of scope by construction: `tests/`, `benches/`, `examples/`
//! directories (not part of the shipped record path) and the vendored
//! `shims/*/src` stand-ins (scanned for R7 manifests only).

use std::fs;
use std::path::{Path, PathBuf};

use crate::report::{CrateAudit, Finding, Report, UnsafeEntry, WaiverEntry};
use crate::rules;
use crate::scan::FileScan;

/// One discovered crate (package) in the workspace.
struct CrateSrc {
    /// Package name from its manifest.
    name: String,
    /// Relative path of the crate root file (`.../src/lib.rs`).
    lib_rel: String,
    /// Relative paths of every `.rs` file under `src/`, sorted.
    files: Vec<String>,
}

/// Reads a file as UTF-8, mapping errors to a message naming the path.
fn read(root: &Path, rel: &str) -> Result<String, String> {
    fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))
}

/// Recursively lists `.rs` files under `dir`, as sorted relative paths.
fn rs_files(root: &Path, dir: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_string()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(root.join(&d)) else {
            continue;
        };
        let mut names: Vec<(bool, String)> = entries
            .flatten()
            .map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                let is_dir = e.file_type().map(|t| t.is_dir()).unwrap_or(false);
                (is_dir, name)
            })
            .collect();
        names.sort();
        for (is_dir, name) in names {
            let rel = format!("{d}/{name}");
            if is_dir {
                stack.push(rel);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    out
}

/// Lists the immediate subdirectories of `dir`, sorted.
fn subdirs(root: &Path, dir: &str) -> Vec<String> {
    let Ok(entries) = fs::read_dir(root.join(dir)) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

/// Pulls `name = "..."` out of a manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Discovers crates: every `crates/<dir>` with a manifest and a
/// `src/lib.rs`, plus the root facade package when present.
fn discover(root: &Path) -> Result<(Vec<CrateSrc>, Vec<String>), String> {
    let mut crates = Vec::new();
    let mut manifests = Vec::new();

    let root_manifest = read(root, "Cargo.toml")?;
    manifests.push("Cargo.toml".to_string());
    if root_manifest.contains("[package]") {
        if let Some(name) = package_name(&root_manifest) {
            if root.join("src/lib.rs").is_file() {
                crates.push(CrateSrc {
                    name,
                    lib_rel: "src/lib.rs".to_string(),
                    files: rs_files(root, "src"),
                });
            }
        }
    }

    for dir in subdirs(root, "crates") {
        let man_rel = format!("crates/{dir}/Cargo.toml");
        if !root.join(&man_rel).is_file() {
            continue;
        }
        manifests.push(man_rel.clone());
        let manifest = read(root, &man_rel)?;
        let name = package_name(&manifest).unwrap_or_else(|| dir.clone());
        let src_dir = format!("crates/{dir}/src");
        let lib_rel = format!("{src_dir}/lib.rs");
        if root.join(&lib_rel).is_file() {
            crates.push(CrateSrc {
                name,
                lib_rel,
                files: rs_files(root, &src_dir),
            });
        }
    }

    // Shim manifests participate in R7 (their sources do not).
    for dir in subdirs(root, "shims") {
        let man_rel = format!("shims/{dir}/Cargo.toml");
        if root.join(&man_rel).is_file() {
            manifests.push(man_rel);
        }
    }

    crates.sort_by(|a, b| a.name.cmp(&b.name));
    manifests.sort();
    Ok((crates, manifests))
}

/// Runs the full analysis over the workspace at `root`.
///
/// Fails (with a message, not a panic) only on I/O errors such as a
/// missing or unreadable `Cargo.toml`.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let root: PathBuf = root.to_path_buf();
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{}: not a workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    let (crates, manifests) = discover(&root)?;

    let mut findings: Vec<Finding> = Vec::new();
    let mut waiver_entries: Vec<WaiverEntry> = Vec::new();
    let mut unsafe_inventory: Vec<UnsafeEntry> = Vec::new();
    let mut crate_audits: Vec<CrateAudit> = Vec::new();
    let mut files_scanned = 0usize;

    for c in &crates {
        let mut crate_unsafe = 0usize;
        let mut forbids = false;
        for rel in &c.files {
            let src = read(&root, rel)?;
            let fs = FileScan::new(&src);
            files_scanned += 1;

            let mut out = rules::check_file(rel, &fs);

            // Waiver application: a waiver covers findings of its rule
            // on its own line or the line directly below.
            let mut used = vec![false; fs.waivers.len()];
            for f in &mut out.findings {
                for (wi, w) in fs.waivers.iter().enumerate() {
                    if w.rule == f.rule
                        && !w.reason.is_empty()
                        && (f.line == w.line || f.line == w.line + 1)
                    {
                        f.waived = true;
                        used[wi] = true;
                    }
                }
            }

            // Waiver hygiene (R0): malformed, unknown-rule, reason-less
            // or stale waivers are findings in their own right.
            for (wi, w) in fs.waivers.iter().enumerate() {
                let known = rules::rule(&w.rule).is_some() && w.rule != "R0";
                let problem = if !known {
                    Some(format!(
                        "waiver names unknown rule `{}`",
                        if w.rule.is_empty() { "<none>" } else { &w.rule }
                    ))
                } else if w.reason.is_empty() {
                    Some(format!("waiver for {} carries no reason", w.rule))
                } else if !used[wi] {
                    Some(format!(
                        "stale waiver: no {} finding on line {} or {}",
                        w.rule,
                        w.line,
                        w.line + 1
                    ))
                } else {
                    None
                };
                if let Some(message) = problem {
                    let hint = rules::rule("R0").map(|r| r.hint).unwrap_or("");
                    findings.push(Finding {
                        rule: "R0".to_string(),
                        file: rel.clone(),
                        line: w.line,
                        message,
                        hint: hint.to_string(),
                        waived: false,
                    });
                } else {
                    waiver_entries.push(WaiverEntry {
                        rule: w.rule.clone(),
                        file: rel.clone(),
                        line: w.line,
                        reason: w.reason.clone(),
                    });
                }
            }

            for site in &out.unsafe_sites {
                crate_unsafe += 1;
                unsafe_inventory.push(UnsafeEntry {
                    file: rel.clone(),
                    line: site.line,
                    documented: site.documented,
                });
            }
            if *rel == c.lib_rel {
                forbids = out.forbids_unsafe;
            }
            findings.append(&mut out.findings);
        }

        // R4 crate-level: unsafe-free crates must forbid unsafe.
        if crate_unsafe == 0 && !forbids {
            let hint = rules::rule("R4").map(|r| r.hint).unwrap_or("");
            findings.push(Finding {
                rule: "R4".to_string(),
                file: c.lib_rel.clone(),
                line: 1,
                message: format!(
                    "crate `{}` has no unsafe code but does not declare #![forbid(unsafe_code)]",
                    c.name
                ),
                hint: hint.to_string(),
                waived: false,
            });
        }
        crate_audits.push(CrateAudit {
            name: c.name.clone(),
            forbids_unsafe: forbids,
            unsafe_count: crate_unsafe,
        });
    }

    for rel in &manifests {
        let src = read(&root, rel)?;
        findings.append(&mut rules::check_manifest(rel, &src));
    }

    let mut report = Report {
        findings,
        waivers: waiver_entries,
        unsafe_inventory,
        crates: crate_audits,
        files_scanned,
        manifests_scanned: manifests.len(),
    };
    report.canonicalize();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_quoted_value() {
        let toml = "[package]\nname = \"eqimpact-core\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(toml), Some("eqimpact-core".to_string()));
    }

    #[test]
    fn package_name_ignores_other_tables() {
        let toml = "[lib]\nname = \"libname\"\n[package]\nname = \"pkg\"\n";
        assert_eq!(package_name(toml), Some("pkg".to_string()));
    }

    #[test]
    fn analyze_rejects_non_workspace_dir() {
        let err = analyze(Path::new("/definitely/not/a/workspace")).unwrap_err();
        assert!(err.contains("Cargo.toml"));
    }
}
